"""Migrating component databases into the integrated schema.

``migrate_store`` pushes one component database through its
:class:`~repro.integration.mappings.SchemaMapping`: every instance lands in
its class's integrated counterpart; two appearances of the same real-world
entity (equal key values in one integrated class) merge into one instance
with their attribute values combined — this is what the ``equals``
assertion *means* at the instance level.  Links follow, re-pointed at the
integrated relationship sets, with legs resolved upward when integration
coalesced a leg onto a more general class.

``federated_answer`` goes the other way: a global request is routed to the
component stores via ``rewrite_to_components`` and the answers are unioned
— the global-schema-design context in operation.  It is deliberately
sequential and simple: it serves as the **reference oracle** the
federated query engine (:mod:`repro.federation`) is checked against.
"""

from __future__ import annotations

from repro.data.instances import InstanceStore
from repro.ecr.schema import Schema
from repro.ecr.walk import superclass_closure
from repro.errors import MappingError
from repro.integration.mappings import SchemaMapping
from repro.query.ast import Request
from repro.query.rewrite import rewrite_to_components


def migrate_store(
    component: InstanceStore,
    mapping: SchemaMapping,
    integrated: InstanceStore,
) -> dict[int, int]:
    """Copy a component database into an integrated store.

    Returns the id map (component instance id → integrated instance id).
    Call once per component store against the same integrated store; the
    key-based merge runs across calls, so shared entities collapse.
    """
    if integrated.schema.name != mapping.integrated_schema:
        raise MappingError(
            f"store holds {integrated.schema.name!r}, mapping targets "
            f"{mapping.integrated_schema!r}"
        )
    id_map: dict[int, int] = {}
    for class_name in _home_classes(component):
        target_class = mapping.map_object(class_name)
        for instance in component.members(class_name):
            if instance.home_class != class_name:
                continue  # handled at its most specific class
            values = {
                mapping.map_attribute(class_name, name)[1]: value
                for name, value in instance.values.items()
            }
            values = _restrict_to_class(integrated.schema, target_class, values)
            duplicate = integrated.find_duplicate(target_class, values)
            if duplicate is None:
                # the entity may already exist higher up the lattice
                duplicate = _duplicate_in_ancestors(
                    integrated, target_class, values
                )
                if duplicate is not None:
                    integrated.reclassify_down(
                        duplicate.instance_id, target_class
                    )
            if duplicate is not None:
                integrated.fill_values(duplicate.instance_id, values)
                id_map[instance.instance_id] = duplicate.instance_id
            else:
                id_map[instance.instance_id] = integrated.insert(
                    target_class, values, partial=True
                )
    _migrate_links(component, mapping, integrated, id_map)
    return id_map


def _home_classes(component: InstanceStore) -> list[str]:
    return [
        structure.name for structure in component.schema.object_classes()
    ]


def _restrict_to_class(
    schema: Schema, class_name: str, values: dict[str, object]
) -> dict[str, object]:
    """Drop mapped values that landed outside the class's attribute set.

    A component attribute can be absorbed into an integrated class that is
    *not* an ancestor of this instance's target class (sibling under a
    derived parent, with pull-up enabled); such values have nowhere to go
    on this instance and are dropped.
    """
    from repro.ecr.walk import inherited_attributes

    allowed = {
        attribute.name
        for attribute in inherited_attributes(schema, class_name)
    }
    return {name: value for name, value in values.items() if name in allowed}


def _duplicate_in_ancestors(
    integrated: InstanceStore, class_name: str, values: dict[str, object]
):
    for ancestor in superclass_closure(integrated.schema, class_name):
        duplicate = integrated.find_duplicate(ancestor, values)
        if duplicate is not None:
            return duplicate
    return None


def _migrate_links(
    component: InstanceStore,
    mapping: SchemaMapping,
    integrated: InstanceStore,
    id_map: dict[int, int],
) -> None:
    for relationship in component.schema.relationship_sets():
        target_name = mapping.map_object(relationship.name)
        target = integrated.schema.relationship_set(target_name)
        for link in component.links(relationship.name):
            legs: dict[str, int] = {}
            for label, instance_id in link.legs.items():
                leg = relationship.participation_for(label)
                mapped_node = mapping.map_object(leg.object_name)
                target_label = _matching_leg(
                    integrated.schema, target, mapped_node, leg.role
                )
                legs[target_label] = id_map[instance_id]
            values = {
                mapping.map_attribute(relationship.name, name)[1]: value
                for name, value in link.values.items()
            }
            if not _link_exists(integrated, target_name, legs):
                integrated.connect(target_name, legs, values)


def _matching_leg(schema, target, mapped_node: str, role: str) -> str:
    """The integrated leg a component leg folds onto.

    Prefer the leg on the mapped node itself; else the leg on an ancestor
    (integration coalesces IS-A-related legs onto the general class).
    """
    candidates = [leg for leg in target.participations if leg.role == role]
    for leg in candidates:
        if leg.object_name == mapped_node:
            return leg.label
    ancestors = set(superclass_closure(schema, mapped_node))
    for leg in candidates:
        if leg.object_name in ancestors:
            return leg.label
    raise MappingError(
        f"relationship {target.name!r} has no leg covering {mapped_node!r}"
    )


def _link_exists(
    integrated: InstanceStore, relationship_name: str, legs: dict[str, int]
) -> bool:
    return any(
        link.legs == legs for link in integrated.links(relationship_name)
    )


def merge_stores(
    components: list[tuple[InstanceStore, SchemaMapping]],
    integrated_schema: Schema,
) -> tuple[InstanceStore, list[dict[int, int]]]:
    """Build the integrated database from all component databases."""
    integrated = InstanceStore(integrated_schema)
    id_maps = [
        migrate_store(store, mapping, integrated)
        for store, mapping in components
    ]
    return integrated, id_maps


def federated_answer(
    request: Request,
    mappings: dict[str, SchemaMapping],
    stores: dict[str, InstanceStore],
    integrated_schema: Schema | None = None,
) -> list[tuple[object, ...]]:
    """Answer a global request by routing it to the component stores.

    Each component answers its rewritten leg; attributes the component
    lacks come back as ``None``; the union of all legs is deduplicated and
    sorted like :meth:`InstanceStore.select` output.  Pass the integrated
    schema so that components covering *subclasses* of the requested class
    contribute their instances too (IS-A membership).

    Deduplication works on projected values, so a request must project at
    least one identifying attribute for cross-component duplicates to
    collapse correctly; an empty projection collapses to a single row.
    """
    legs = rewrite_to_components(request, mappings, integrated_schema)
    answers: set[tuple[object, ...]] = set()
    for leg in legs:
        store = stores[leg.schema]
        rows = store.select(leg.request)
        positions = _global_positions(request, leg)
        for row in rows:
            padded: list[object] = [None] * len(request.attributes)
            for local_index, global_index in enumerate(positions):
                padded[global_index] = row[local_index]
            answers.add(tuple(padded))
    from repro.data.instances import _sort_key

    return sorted(_eliminate_subsumed(answers), key=_sort_key)


def _eliminate_subsumed(
    answers: set[tuple[object, ...]]
) -> set[tuple[object, ...]]:
    """Outer-union subsumption: drop rows dominated by a fuller row.

    A component that lacks an attribute answers with ``None`` there; when
    another component (or the entity-merge) supplies the full row, the
    padded one carries no extra information and is removed — e.g.
    ``('cs', None)`` is subsumed by ``('cs', 'west')``.
    """
    kept: set[tuple[object, ...]] = set()
    for row in answers:
        dominated = any(
            other != row
            and all(
                value is None or value == other[index]
                for index, value in enumerate(row)
            )
            for other in answers
        )
        if not dominated:
            kept.add(row)
    return kept


def _global_positions(request: Request, leg) -> list[int]:
    """For each leg attribute, its position in the global projection."""
    missing = set(leg.missing_attributes)
    positions = [
        index
        for index, name in enumerate(request.attributes)
        if name not in missing
    ]
    if len(positions) != len(leg.request.attributes):
        raise MappingError("leg projection does not align with the request")
    return positions
