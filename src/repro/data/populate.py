"""Seeded random population of an ECR schema.

Used by the semantic-verification tests and the EXP-MAP benchmark: the
generated values are deterministic per seed, keys are unique per object
class, and categories receive a subset of their parents' population (the
ECR subset semantics).
"""

from __future__ import annotations

import random

from repro.data.instances import InstanceStore
from repro.ecr.domains import DomainKind
from repro.ecr.objects import Category
from repro.ecr.schema import Schema
from repro.ecr.walk import inherited_attributes, topological_order

_WORDS = [
    "amber", "birch", "cedar", "dune", "elm", "fern", "grove", "heath",
    "iris", "juniper", "kelp", "laurel", "moss", "nettle", "oak", "pine",
]


def _value_for(kind: DomainKind, rng: random.Random, counter: int) -> object:
    if kind is DomainKind.CHAR:
        return f"{rng.choice(_WORDS)}_{counter}"
    if kind is DomainKind.INTEGER:
        return rng.randint(0, 1000)
    if kind is DomainKind.REAL:
        return round(rng.uniform(0.0, 100.0), 2)
    if kind is DomainKind.DATE:
        return f"19{rng.randint(70, 88):02d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    return rng.choice([True, False])


def populate_store(
    schema: Schema,
    seed: int = 0,
    entities_per_class: int = 6,
    links_per_relationship: int = 8,
    category_fraction: float = 0.5,
) -> InstanceStore:
    """Populate a schema with deterministic random instances and links.

    Entity sets get ``entities_per_class`` fresh instances.  Categories
    get ``category_fraction`` of their size as instances inserted *at the
    category* (and therefore into the ancestors), modelling the subset
    semantics.  Relationship sets get up to ``links_per_relationship``
    links over random member pairs.
    """
    rng = random.Random(seed)
    store = InstanceStore(schema)
    counter = 0
    for class_name in topological_order(schema):
        structure = schema.object_class(class_name)
        if isinstance(structure, Category):
            count = max(1, int(entities_per_class * category_fraction))
        else:
            count = entities_per_class
        for _ in range(count):
            counter += 1
            values = {}
            for attribute in inherited_attributes(schema, class_name):
                value = _value_for(attribute.domain.kind, rng, counter)
                if attribute.domain.is_enumerated:
                    value = rng.choice(attribute.domain.values)
                values[attribute.name] = value
            store.insert(class_name, values)
    for relationship in schema.relationship_sets():
        member_pools = {
            leg.label: store.members(leg.object_name)
            for leg in relationship.participations
        }
        if any(not pool for pool in member_pools.values()):
            continue
        seen: set[tuple[int, ...]] = set()
        for _ in range(links_per_relationship):
            legs = {
                label: rng.choice(pool).instance_id
                for label, pool in member_pools.items()
            }
            key = tuple(sorted(legs.values()))
            if key in seen:
                continue
            seen.add(key)
            values = {}
            counter += 1
            for attribute in relationship.attributes:
                values[attribute.name] = _value_for(
                    attribute.domain.kind, rng, counter
                )
            store.connect(relationship.name, legs, values)
    return store
