"""The paper's running example: university schemas sc1-sc4.

Figures 3 and 4 give the two input schemas the paper integrates; Screens
3, 5, 7 and 8 pin down their contents:

* **sc1** — entity sets ``Student`` (Name key, GPA) and ``Department``
  (one attribute, Name), and the relationship set ``Majors`` with one
  attribute connecting them (Screen 3 lists Student/2, Department/1,
  Majors/1 attributes).
* **sc2** — entity sets ``Grad_student`` (Name, GPA, Support_type — Screen
  7), ``Faculty`` (Name plus one more attribute, so that the Screen 8
  attribute ratio for sc1.Student/sc2.Faculty is 1/(1+2) = 0.3333) and
  ``Department``; relationship sets ``Majors`` (Grad_student-Department)
  and ``Works`` (Faculty-Department, Figure 5 keeps it).

The attribute equivalences reproduce Screen 7 (one class holding
sc1.Student.Name, sc2.Faculty.Name and sc2.Grad_student.Name, one holding
the GPAs, one holding the Department names) and the assertion codes
reproduce Screen 8 (1, 3, 4).  Integrating with those assertions yields
Figure 5: entities ``E_Department`` and ``D_Stud_Facu``; categories
``Student``, ``Grad_student`` and ``Faculty``; relationships
``E_Stud_Majo`` and ``Works``.

Schemas sc3/sc4 are the Screen 9 conflict scenario: sc3 has an
``Instructor``; sc4 has ``Student`` with a ``Grad_student`` category.
Asserting Instructor ⊆ Grad_student derives Instructor ⊆ Student, which
conflicts with a later "disjoint non-integrable" between Instructor and
Student.
"""

from __future__ import annotations

from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.ordering import CandidatePair, ordered_object_pairs
from repro.equivalence.registry import EquivalenceRegistry


def build_sc1() -> Schema:
    """Input schema sc1 of Figure 3."""
    return (
        SchemaBuilder("sc1", "student registration view")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .entity("Department", attrs=[("Name", "char", True)])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date")],
        )
        .build()
    )


def build_sc2() -> Schema:
    """Input schema sc2 of Figure 4."""
    return (
        SchemaBuilder("sc2", "graduate school and personnel view")
        .entity(
            "Grad_student",
            attrs=[("Name", "char", True), ("GPA", "real"), ("Support_type", "char")],
        )
        .entity("Faculty", attrs=[("Name", "char", True), ("Rank", "char")])
        .entity("Department", attrs=[("Name", "char", True), ("Location", "char")])
        .relationship(
            "Majors",
            connects=[("Grad_student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date")],
        )
        .relationship(
            "Works",
            connects=[("Faculty", "(1,1)"), ("Department", "(1,n)")],
            attrs=[("Percent_time", "real")],
        )
        .build()
    )


def build_sc3() -> Schema:
    """Screen 9's sc3: a teaching view with an Instructor entity set."""
    return (
        SchemaBuilder("sc3", "teaching assignments view")
        .entity("Instructor", attrs=[("Name", "char", True), ("Office", "char")])
        .entity("Course", attrs=[("Course_no", "char", True), ("Title", "char")])
        .relationship(
            "Teaches",
            connects=[("Instructor", "(0,n)"), ("Course", "(1,1)")],
        )
        .build()
    )


def build_sc4() -> Schema:
    """Screen 9's sc4: students with a Grad_student category.

    The category supplies the implicit ``sc4.Grad_student`` ⊆
    ``sc4.Student`` assertion Screen 9 lists on its fourth line.
    """
    return (
        SchemaBuilder("sc4", "student records view")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .category(
            "Grad_student", of="Student", attrs=[("Thesis_title", "char")]
        )
        .build()
    )


def paper_registry() -> EquivalenceRegistry:
    """sc1 and sc2 registered with the Screen 7 attribute equivalences.

    Produces the equivalence classes the paper describes: the Names of
    Student, Grad_student and Faculty in one class; the two GPAs in one;
    the two Department Names in one; and (for the relationship subphase)
    the two Majors Since attributes in one.
    """
    registry = EquivalenceRegistry([build_sc1(), build_sc2()])
    registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    return registry


#: The assertion codes the DDA enters on Screen 8, in screen order.
PAPER_ASSERTION_CODES: list[tuple[str, str, int]] = [
    ("sc1.Department", "sc2.Department", AssertionKind.EQUALS.code),
    ("sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS.code),
    ("sc1.Student", "sc2.Faculty", AssertionKind.DISJOINT_INTEGRABLE.code),
]

#: The relationship-set assertion (subphase two): the two Majors are equal.
PAPER_RELATIONSHIP_CODES: list[tuple[str, str, int]] = [
    ("sc1.Majors", "sc2.Majors", AssertionKind.EQUALS.code),
]


def paper_candidate_pairs(
    registry: EquivalenceRegistry | None = None,
) -> list[CandidatePair]:
    """The ranked object pairs of Screen 8 (ratios 0.5000, 0.5000, 0.3333)."""
    if registry is None:
        registry = paper_registry()
    return ordered_object_pairs(registry, "sc1", "sc2")


def paper_assertions(
    registry: EquivalenceRegistry | None = None,
) -> AssertionNetwork:
    """An assertion network loaded with the paper's Screen 8 assertions."""
    if registry is None:
        registry = paper_registry()
    network = AssertionNetwork()
    for schema in registry.schemas():
        network.seed_schema(schema)
    for first, second, code in PAPER_ASSERTION_CODES:
        network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    return network


def build_expected_figure5() -> Schema:
    """The integrated schema of Figure 5, built by hand for comparison.

    Entities ``E_Department`` and ``D_Stud_Facu``; categories ``Student``
    (under D_Stud_Facu, with the derived ``D_Name``/``D_GPA``),
    ``Grad_student`` (under Student, keeping ``Support_type``) and
    ``Faculty`` (under D_Stud_Facu, keeping its own attributes);
    relationship sets ``E_Stud_Majo`` (Student/E_Department) and ``Works``
    (Faculty/E_Department).
    """
    return (
        SchemaBuilder("integrated", "expected Figure 5")
        .entity(
            "E_Department",
            attrs=[("D_Name", "char", True), ("Location", "char")],
        )
        .entity("D_Stud_Facu")
        .category(
            "Student",
            of="D_Stud_Facu",
            attrs=[("D_Name", "char", True), ("D_GPA", "real")],
        )
        .category("Grad_student", of="Student", attrs=[("Support_type", "char")])
        .category(
            "Faculty",
            of="D_Stud_Facu",
            attrs=[("Name", "char", True), ("Rank", "char")],
        )
        .relationship(
            "E_Stud_Majo",
            connects=[("Student", "(1,1)"), ("E_Department", "(0,n)")],
            attrs=[("D_Since", "date")],
        )
        .relationship(
            "Works",
            connects=[("Faculty", "(1,1)"), ("E_Department", "(1,n)")],
            attrs=[("Percent_time", "real")],
        )
        .build()
    )
