"""Seeded service traffic with a tunable read/write mix.

The replication benchmarks and smoke drives need realistic ``/v1``
request streams where the *read fraction* is a first-class knob: a
read-heavy mix exercises replica routing and lag guards, a write-heavy
mix exercises WAL shipping throughput.  :func:`service_traffic` yields a
deterministic sequence of :class:`ServiceCall` descriptions against the
standard seeded session (both paper schemas adopted): exactly
``round(operations * read_fraction)`` of them are reads, seeded-shuffled
among the writes so the interleaving is realistic but reproducible.

Writes alternate declare-equivalence and undo so the stream stays valid
indefinitely — every declared pair is later released, and no request in
the stream depends on a request the service could have rejected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SchemaError

#: attribute pairs of the paper's sc1/sc2 schemas that are genuinely
#: equivalence-compatible — the write cycle declares and releases these
_EQUIVALENCE_POOL = (
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Department.Name", "sc2.Department.Name"),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Parameters of a seeded service-traffic stream.

    ``read_fraction`` is exact, not probabilistic: a stream of
    ``operations`` calls contains ``round(operations * read_fraction)``
    reads, so benchmark runs with the same config measure the same mix.
    """

    seed: int = 0
    operations: int = 100
    read_fraction: float = 0.8
    session_id: str = "s1"

    def __post_init__(self) -> None:
        if self.operations < 0:
            raise SchemaError(
                f"operations must be >= 0, got {self.operations}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise SchemaError(
                "read_fraction must be within [0, 1], got "
                f"{self.read_fraction}"
            )

    @property
    def reads(self) -> int:
        """How many calls of the stream are reads."""
        return round(self.operations * self.read_fraction)

    @property
    def writes(self) -> int:
        return self.operations - self.reads


@dataclass(frozen=True)
class ServiceCall:
    """One ``/v1`` request of a traffic stream."""

    method: str
    path: str
    kind: str  # "read" | "write"
    body: dict | None = None
    query: dict = field(default_factory=dict)

    @property
    def is_read(self) -> bool:
        return self.kind == "read"


def _read_calls(sid: str) -> tuple[ServiceCall, ...]:
    return (
        ServiceCall("GET", f"/v1/sessions/{sid}", "read"),
        ServiceCall("GET", f"/v1/sessions/{sid}/schemas", "read"),
        ServiceCall("GET", f"/v1/sessions/{sid}/schemas/sc1", "read"),
        ServiceCall(
            "GET",
            f"/v1/sessions/{sid}/suggestions",
            "read",
            query={"first": "sc1", "second": "sc2"},
        ),
        ServiceCall("GET", f"/v1/sessions/{sid}/recovery", "read"),
        ServiceCall("GET", "/v1/stats", "read"),
    )


def service_traffic(
    config: TrafficConfig = TrafficConfig(),
) -> Iterator[ServiceCall]:
    """Yield the seeded call stream described by ``config``.

    The stream targets the standard seeded session (``sc1``/``sc2``
    adopted, no pre-declared equivalences): every write is valid when
    the calls are applied in order, whatever reads interleave them.
    """
    rng = random.Random(config.seed)
    kinds = ["read"] * config.reads + ["write"] * config.writes
    rng.shuffle(kinds)
    reads = _read_calls(config.session_id)
    declared = None
    for kind in kinds:
        if kind == "read":
            yield rng.choice(reads)
        elif declared is None:
            declared = _EQUIVALENCE_POOL[
                rng.randrange(len(_EQUIVALENCE_POOL))
            ]
            first, second = declared
            yield ServiceCall(
                "POST",
                f"/v1/sessions/{config.session_id}/equivalences",
                "write",
                body={"first": first, "second": second},
            )
        else:
            declared = None
            yield ServiceCall(
                "POST",
                f"/v1/sessions/{config.session_id}/undo",
                "write",
            )


__all__ = [
    "ServiceCall",
    "TrafficConfig",
    "service_traffic",
]
