"""Ground truth and the oracle DDA.

The paper's tool needs a human DDA because assertions encode subjective
application semantics.  For experiments we replace the human with an
**oracle DDA**: a driver holding the ground-truth correspondences of a
workload (known by construction for synthetic schema pairs, written by hand
for the bundled domain workloads).  The oracle answers exactly the
questions the tool asks a human — "are these attributes equivalent?",
"what is the assertion for this pair?" — which keeps the code paths
identical to interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.kinds import AssertionKind
from repro.ecr.attributes import AttributeRef
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry


def _unordered(first, second):
    return (second, first) if second < first else (first, second)


@dataclass
class GroundTruth:
    """True correspondences between two (or more) component schemas."""

    #: truly equivalent attribute pairs (unordered)
    attribute_pairs: set[tuple[AttributeRef, AttributeRef]] = field(
        default_factory=set
    )
    #: true assertion code per unordered object pair; pairs absent here are
    #: disjoint and non-integrable (code 0)
    object_assertions: dict[tuple[ObjectRef, ObjectRef], AssertionKind] = field(
        default_factory=dict
    )
    #: true assertion code per unordered relationship pair
    relationship_assertions: dict[
        tuple[ObjectRef, ObjectRef], AssertionKind
    ] = field(default_factory=dict)

    def add_attribute_pair(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> None:
        if isinstance(first, str):
            first = AttributeRef.parse(first)
        if isinstance(second, str):
            second = AttributeRef.parse(second)
        self.attribute_pairs.add(_unordered(first, second))

    def add_object_assertion(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        relationship: bool = False,
    ) -> None:
        if isinstance(first, str):
            first = ObjectRef.parse(first)
        if isinstance(second, str):
            second = ObjectRef.parse(second)
        if isinstance(kind, int):
            kind = AssertionKind.from_code(kind)
        table = (
            self.relationship_assertions if relationship else self.object_assertions
        )
        key = _unordered(first, second)
        if key != (first, second):
            kind = kind.converse  # store oriented along the canonical key
        table[key] = kind

    def attributes_equivalent(
        self, first: AttributeRef, second: AttributeRef
    ) -> bool:
        return _unordered(first, second) in self.attribute_pairs

    def assertion_between(
        self, first: ObjectRef, second: ObjectRef, relationship: bool = False
    ) -> AssertionKind:
        """The true assertion, oriented ``first``→``second``.

        Pairs not listed are disjoint & non-integrable, mirroring a DDA who
        answers 0 for unrelated object classes.
        """
        table = (
            self.relationship_assertions if relationship else self.object_assertions
        )
        key = _unordered(first, second)
        kind = table.get(key, AssertionKind.DISJOINT_NONINTEGRABLE)
        if key != (first, second):
            kind = kind.converse
        return kind

    def integrable_pairs(self, relationship: bool = False) -> list[
        tuple[ObjectRef, ObjectRef]
    ]:
        """Unordered pairs whose true assertion participates in integration."""
        table = (
            self.relationship_assertions if relationship else self.object_assertions
        )
        return sorted(pair for pair, kind in table.items() if kind.integrable)


@dataclass
class OracleDda:
    """A DDA stand-in that answers from a :class:`GroundTruth`."""

    truth: GroundTruth

    def declare_all_equivalences(self, registry: EquivalenceRegistry) -> int:
        """Declare every true attribute equivalence in the registry.

        Returns the number of declarations made.  This is the idealised
        Phase 2: a DDA with perfect knowledge and patience.
        """
        declared = 0
        for first, second in sorted(self.truth.attribute_pairs):
            registry.declare_equivalent(first, second)
            declared += 1
        return declared

    def review_attribute_pair(
        self, first: AttributeRef, second: AttributeRef
    ) -> bool:
        """Answer Screen 7's implicit question for one attribute pair."""
        return self.truth.attributes_equivalent(first, second)

    def review_object_pair(
        self, first: ObjectRef, second: ObjectRef, relationship: bool = False
    ) -> AssertionKind:
        """Answer Screen 8's question for one object pair."""
        return self.truth.assertion_between(first, second, relationship)

    def is_true_correspondence(
        self, first: ObjectRef, second: ObjectRef, relationship: bool = False
    ) -> bool:
        """Whether the pair is genuinely related (any integrable assertion
        other than an uninformative default)."""
        table = (
            self.truth.relationship_assertions
            if relationship
            else self.truth.object_assertions
        )
        return _unordered(first, second) in table
