"""Deterministic seeded schema-evolution scripts.

The evolution benchmarks and property tests need *edit traffic*: a
reproducible sequence of typed :class:`~repro.evolution.SchemaEdit`\\ s
against a live analysis session, with a controllable fraction of edits
guaranteed to be *invalidating* — cascade drops of object classes that
carry specified assertions, so the repair pipeline has to retract facts,
re-propagate the solver and rebuild clusters rather than just touch the
registry.

Scripts are generated lazily against the session's current state (each
step sees the names the previous steps created or destroyed), so the
caller must apply each scripted edit before drawing the next.  Equal
``(session state, config)`` inputs produce identical sequences:
randomness comes only from ``random.Random(config.seed)`` and every
candidate list is drawn in sorted order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.ecr.attributes import Attribute
from repro.ecr.domains import Domain, DomainKind
from repro.ecr.relationships import RelationshipSet
from repro.errors import SchemaError
from repro.evolution import (
    AddAttribute,
    AddClass,
    DropClass,
    RenameAttribute,
    SchemaEdit,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession


@dataclass(frozen=True)
class EvolutionConfig:
    """Parameters of a seeded evolution script.

    ``invalidating_fraction`` is the fraction of the script's edits that
    must be invalidating (cascade drops of assertion-carrying classes);
    the script front-loads ordinary edits and plants the invalidating
    ones evenly.  When the session runs out of droppable
    assertion-carrying classes the script raises
    :class:`~repro.errors.SchemaError` rather than silently under-deliver.
    """

    seed: int = 0
    edits: int = 6
    invalidating_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.edits < 0:
            raise SchemaError(f"edits must be >= 0, got {self.edits}")
        if not 0.0 <= self.invalidating_fraction <= 1.0:
            raise SchemaError(
                "invalidating_fraction must be within [0, 1], got "
                f"{self.invalidating_fraction}"
            )

    @property
    def invalidating_edits(self) -> int:
        """How many edits of the script must invalidate assertions."""
        return round(self.edits * self.invalidating_fraction)


@dataclass(frozen=True)
class ScriptedEdit:
    """One step of an evolution script: which schema, which edit."""

    schema: str
    edit: SchemaEdit
    #: whether this step was planted to invalidate assertions
    invalidating: bool = False


def _asserted_objects(session: "AnalysisSession") -> set[tuple[str, str]]:
    """(schema, object) owners of at least one specified assertion."""
    owners: set[tuple[str, str]] = set()
    for assertion in session.object_network.specified_assertions():
        owners.add((assertion.first.schema, assertion.first.object_name))
        owners.add((assertion.second.schema, assertion.second.object_name))
    return owners


def _droppable(schema, name: str) -> bool:
    """Whether dropping ``name`` leaves no dangling references."""
    for structure in schema:
        if structure.is_category and name in structure.parents:
            return False
        if isinstance(structure, RelationshipSet) and any(
            leg.object_name == name for leg in structure.participations
        ):
            return False
    return True


def _attribute_sites(session: "AnalysisSession") -> list[tuple[str, str, str]]:
    """Every (schema, object, attribute) triple, sorted."""
    sites = []
    for schema in session.schemas():
        for structure in schema:
            for attribute in structure.attributes:
                sites.append((schema.name, structure.name, attribute.name))
    return sorted(sites)


def _invalidating_edit(
    session: "AnalysisSession", rng: random.Random
) -> ScriptedEdit | None:
    candidates = sorted(
        (schema, name)
        for schema, name in _asserted_objects(session)
        if schema in {s.name for s in session.schemas()}
        and name in session.registry.schema(schema)
        and _droppable(session.registry.schema(schema), name)
    )
    if not candidates:
        return None
    schema, name = rng.choice(candidates)
    return ScriptedEdit(
        schema, DropClass(name, cascade=True), invalidating=True
    )


def _ordinary_edit(
    session: "AnalysisSession", rng: random.Random, serial: int
) -> ScriptedEdit:
    sites = _attribute_sites(session)
    choices = ["add_class", "add_attribute"]
    if sites:
        choices.append("rename_attribute")
    kind = rng.choice(choices)
    schemas = sorted(schema.name for schema in session.schemas())
    if kind == "add_class":
        schema = rng.choice(schemas)
        return ScriptedEdit(
            schema,
            AddClass(
                {
                    "kind": "e",
                    "name": f"Evo_class_{serial}",
                    "attributes": [
                        {
                            "name": "evo_key",
                            "domain": {"kind": "integer"},
                            "is_key": True,
                        }
                    ],
                }
            ),
        )
    if kind == "add_attribute":
        targets = sorted(
            (schema.name, structure.name)
            for schema in session.schemas()
            for structure in schema
        )
        schema, structure = rng.choice(targets)
        return ScriptedEdit(
            schema,
            AddAttribute(
                structure,
                Attribute(f"evo_attr_{serial}", Domain(DomainKind.INTEGER)),
            ),
        )
    schema, structure, attribute = rng.choice(sites)
    return ScriptedEdit(
        schema,
        RenameAttribute(structure, attribute, f"{attribute}_v{serial}"),
    )


def evolution_script(
    session: "AnalysisSession",
    config: EvolutionConfig = EvolutionConfig(),
) -> Iterator[ScriptedEdit]:
    """Yield a seeded edit sequence against a live session, lazily.

    The caller must apply each yielded edit (via
    :meth:`AnalysisSession.apply_edit
    <repro.equivalence.session.AnalysisSession.apply_edit>`) before
    drawing the next one — later steps are generated against the state
    the earlier steps produced.  At least
    :attr:`EvolutionConfig.invalidating_edits` of the yielded steps are
    cascade drops of assertion-carrying classes.
    """
    rng = random.Random(config.seed)
    owed = config.invalidating_edits
    for index in range(config.edits):
        remaining = config.edits - index
        scripted = None
        if owed >= remaining or (
            owed > 0 and rng.random() < config.invalidating_fraction
        ):
            scripted = _invalidating_edit(session, rng)
            if scripted is None and owed >= remaining:
                raise SchemaError(
                    "evolution script cannot deliver its invalidating "
                    f"quota: {owed} drops still owed but no droppable "
                    "assertion-carrying class remains"
                )
        if scripted is None:
            scripted = _ordinary_edit(session, rng, index)
        else:
            owed -= 1
        yield scripted


def run_evolution_script(
    session: "AnalysisSession",
    config: EvolutionConfig = EvolutionConfig(),
) -> list[tuple[ScriptedEdit, "object"]]:
    """Generate *and apply* a script; returns (step, EditOutcome) pairs."""
    applied = []
    for scripted in evolution_script(session, config):
        outcome = session.apply_edit(scripted.schema, scripted.edit)
        applied.append((scripted, outcome))
    return applied


__all__ = [
    "EvolutionConfig",
    "ScriptedEdit",
    "evolution_script",
    "run_evolution_script",
]
