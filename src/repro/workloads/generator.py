"""Seeded synthetic schema-pair generator with known ground truth.

The paper evaluates on small hand-built schemas; the quantitative
experiments (EXP-ORD, EXP-CLO, EXP-CON, EXP-SCALE in DESIGN.md) need larger
families of schema pairs whose true correspondences are known.  The
generator builds a *world* of concepts, each with a pool of attribute
concepts, then projects two overlapping subsets of that world into two
component schemas.  Because both projections come from the same world,
every true attribute equivalence and every true object assertion is known
by construction and returned as a :class:`~repro.workloads.oracle.GroundTruth`.

Attribute names of equivalent attributes agree with probability
``name_hint_rate`` and otherwise diverge (a synonym or an unrelated word),
so the name-matching heuristics are exercised realistically — they must
not be able to find everything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.assertions.kinds import AssertionKind
from repro.ecr.attributes import Attribute, AttributeRef
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import ObjectRef, Schema
from repro.errors import SchemaError
from repro.workloads.oracle import GroundTruth

_WORDS = [
    "alpha", "bravo", "carbon", "delta", "ember", "falcon", "garnet",
    "harbor", "indigo", "jasper", "keystone", "lumen", "meadow", "nickel",
    "onyx", "prairie", "quartz", "raven", "saffron", "timber", "umber",
    "violet", "walnut", "xenon", "yarrow", "zephyr",
]

_DOMAINS = ["char", "integer", "real", "date", "boolean"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of a synthetic schema pair.

    Attributes
    ----------
    seed:
        RNG seed; equal configs generate identical pairs.
    concepts:
        Number of entity concepts in the shared world.
    overlap:
        Fraction of concepts present in *both* schemas (0..1).  Overlapping
        concepts carry a true assertion; the rest appear in only one schema.
    attributes_per_concept:
        Inclusive (min, max) range of attribute-concept pool sizes.
    relationships_per_schema:
        Binary relationship sets generated per schema (unshared noise).
    shared_relationship_rate:
        Probability that a pair of shared *equals* concepts carries a
        shared relationship concept, projected into both schemas with a
        true ``equals`` relationship assertion and equivalent attributes.
    category_rate:
        Probability that a concept contributes an extra category beneath
        its entity set.
    name_hint_rate:
        Probability that two projections of the same attribute concept keep
        the same name (otherwise one side is renamed).
    equal_rate, contain_rate, overlap_rate:
        Mix of true assertions among shared concepts; the remainder are
        disjoint-but-integrable.  Must sum to at most 1.
    contradictions:
        Number of planted contradictions (see
        :class:`PlantedContradiction`).  Each consumes one shared
        *equals* concept and one unshared concept; generation raises
        :class:`~repro.errors.SchemaError` when the world is too small
        to plant them independently.
    """

    seed: int = 0
    concepts: int = 8
    overlap: float = 0.5
    attributes_per_concept: tuple[int, int] = (3, 6)
    relationships_per_schema: int = 3
    shared_relationship_rate: float = 0.0
    category_rate: float = 0.25
    name_hint_rate: float = 0.7
    equal_rate: float = 0.4
    contain_rate: float = 0.3
    overlap_rate: float = 0.15
    contradictions: int = 0

    def __post_init__(self) -> None:
        if self.concepts < 2:
            raise SchemaError("need at least two concepts")
        if self.contradictions < 0:
            raise SchemaError(
                f"contradictions must be >= 0, got {self.contradictions}"
            )
        if not 0.0 <= self.overlap <= 1.0:
            raise SchemaError(f"overlap must be in [0,1], got {self.overlap}")
        low, high = self.attributes_per_concept
        if low < 1 or high < low:
            raise SchemaError(
                f"bad attributes_per_concept range {self.attributes_per_concept}"
            )
        mix = self.equal_rate + self.contain_rate + self.overlap_rate
        if mix > 1.0 + 1e-9:
            raise SchemaError(f"assertion mix sums to {mix}, must be <= 1")


#: A (first, second, kind) triple ready to assert on a network.
AssertionTriple = tuple[ObjectRef, ObjectRef, AssertionKind]


@dataclass(frozen=True)
class PlantedContradiction:
    """One deliberately inconsistent assertion triangle.

    ``base`` is a *true* equals assertion between two projections of one
    shared concept (part of the ground truth).  ``extras`` are two facts
    about an otherwise-unconstrained spoiler object ``T``::

        base:   A equals B          (true)
        extras: B disjoint T,  A equals T

    Together the three are inconsistent (A≡B, B∥T forces A∥T) and the
    triangle is **provably minimal**: drop any one member and the rest is
    satisfiable.  Because each contradiction gets its own spoiler, the
    planted sets are independent — a solver/oracle comparison can verify
    each one in isolation (true facts + one contradiction's extras).
    """

    base: AssertionTriple
    extras: tuple[AssertionTriple, ...]

    @property
    def all_facts(self) -> tuple[AssertionTriple, ...]:
        """Every member of the minimal set, base first."""
        return (self.base, *self.extras)


@dataclass
class GeneratedPair:
    """The generator's output: two schemas plus their ground truth."""

    first: Schema
    second: Schema
    truth: GroundTruth
    config: GeneratorConfig = field(repr=False, default=GeneratorConfig())
    contradictions: list[PlantedContradiction] = field(default_factory=list)


@dataclass
class _AttributeConcept:
    index: int
    base_name: str
    domain: str
    is_key: bool


@dataclass
class _Concept:
    index: int
    name: str
    attributes: list[_AttributeConcept]
    kind: AssertionKind | None  # true assertion when shared, else None
    in_first: bool
    in_second: bool


def generate_schema_pair(config: GeneratorConfig) -> GeneratedPair:
    """Generate a deterministic schema pair with known correspondences."""
    rng = random.Random(config.seed)
    concepts = _build_world(config, rng)
    first = Schema(f"gen{config.seed}a", "synthetic component schema A")
    second = Schema(f"gen{config.seed}b", "synthetic component schema B")
    truth = GroundTruth()
    for concept in concepts:
        _project(concept, first, second, truth, config, rng)
    _add_relationships(first, config, rng, salt=1)
    _add_relationships(second, config, rng, salt=2)
    _add_shared_relationships(concepts, first, second, truth, config, rng)
    planted = _plant_contradictions(concepts, first, second, config)
    return GeneratedPair(first, second, truth, config, planted)


def conflict_seeded_config(
    seed: int = 0,
    *,
    contradictions: int = 2,
    concepts: int = 14,
    overlap: float = 0.5,
) -> GeneratorConfig:
    """A config tuned for solver tests: dense equivalences + contradictions.

    The high ``equal_rate`` makes shared concepts overwhelmingly *equals*
    (a dense equivalence set, lots of derivation), ``name_hint_rate=1``
    keeps equivalent attribute names aligned so the suggestion ranking
    has real signal, and ``contradictions`` plants that many independent
    minimal conflict triangles.
    """
    return GeneratorConfig(
        seed=seed,
        concepts=concepts,
        overlap=overlap,
        equal_rate=0.9,
        contain_rate=0.05,
        overlap_rate=0.0,
        name_hint_rate=1.0,
        contradictions=contradictions,
    )


def _plant_contradictions(
    concepts: list[_Concept],
    first: Schema,
    second: Schema,
    config: GeneratorConfig,
) -> list[PlantedContradiction]:
    """Build ``config.contradictions`` independent conflict triangles.

    Deterministic given the world: the i-th contradiction pairs the i-th
    shared *equals* concept with the i-th unshared concept (the spoiler).
    Spoilers are unshared and never reused, so no two planted triangles
    interact through derivation.
    """
    if config.contradictions == 0:
        return []
    equal_concepts = [
        concept
        for concept in concepts
        if concept.kind is AssertionKind.EQUALS
        and concept.in_first
        and concept.in_second
    ]
    spoilers = [concept for concept in concepts if concept.kind is None]
    if len(equal_concepts) < config.contradictions:
        raise SchemaError(
            f"cannot plant {config.contradictions} contradictions: only "
            f"{len(equal_concepts)} shared equals concepts (raise "
            f"concepts/overlap/equal_rate or change the seed)"
        )
    if len(spoilers) < config.contradictions:
        raise SchemaError(
            f"cannot plant {config.contradictions} contradictions: only "
            f"{len(spoilers)} unshared spoiler concepts (lower overlap "
            f"or raise concepts)"
        )
    planted: list[PlantedContradiction] = []
    for target, spoiler in zip(
        equal_concepts[: config.contradictions],
        spoilers[: config.contradictions],
    ):
        ref_a = ObjectRef(first.name, target.name)
        ref_b = ObjectRef(second.name, target.name)
        spoiler_schema = first if spoiler.in_first else second
        ref_t = ObjectRef(spoiler_schema.name, spoiler.name)
        planted.append(
            PlantedContradiction(
                base=(ref_a, ref_b, AssertionKind.EQUALS),
                extras=(
                    (ref_b, ref_t, AssertionKind.DISJOINT_INTEGRABLE),
                    (ref_a, ref_t, AssertionKind.EQUALS),
                ),
            )
        )
    return planted


def _build_world(config: GeneratorConfig, rng: random.Random) -> list[_Concept]:
    concepts: list[_Concept] = []
    shared_count = round(config.concepts * config.overlap)
    for index in range(config.concepts):
        word = _WORDS[index % len(_WORDS)]
        name = f"{word.capitalize()}{index}"
        low, high = config.attributes_per_concept
        pool_size = rng.randint(low, high)
        attributes = [
            _AttributeConcept(
                attr_index,
                f"{rng.choice(_WORDS)}_{index}_{attr_index}",
                rng.choice(_DOMAINS),
                attr_index == 0,
            )
            for attr_index in range(pool_size)
        ]
        shared = index < shared_count
        kind = _pick_kind(config, rng) if shared else None
        concepts.append(
            _Concept(
                index,
                name,
                attributes,
                kind,
                in_first=shared or index % 2 == 0,
                in_second=shared or index % 2 == 1,
            )
        )
    return concepts


def _pick_kind(config: GeneratorConfig, rng: random.Random) -> AssertionKind:
    roll = rng.random()
    if roll < config.equal_rate:
        return AssertionKind.EQUALS
    if roll < config.equal_rate + config.contain_rate:
        return AssertionKind.CONTAINS
    if roll < config.equal_rate + config.contain_rate + config.overlap_rate:
        return AssertionKind.MAY_BE
    return AssertionKind.DISJOINT_INTEGRABLE


def _project(
    concept: _Concept,
    first: Schema,
    second: Schema,
    truth: GroundTruth,
    config: GeneratorConfig,
    rng: random.Random,
) -> None:
    """Materialise a concept in the schemas it belongs to."""
    shared = concept.kind is not None
    if concept.in_first:
        attrs_a = _select_attributes(concept, config, rng, full=True)
        first.add(EntitySet(concept.name, [a for _, a in attrs_a]))
        _maybe_category(first, concept, config, rng)
    if concept.in_second:
        # The second projection may see fewer attributes (a narrower view)
        # and different spellings.
        name_b = concept.name if shared else concept.name
        full = concept.kind is not AssertionKind.CONTAINS
        attrs_b = _select_attributes(
            concept, config, rng, full=full, rename_with=config.name_hint_rate
        )
        second.add(EntitySet(name_b, [a for _, a in attrs_b]))
        _maybe_category(second, concept, config, rng)
    if shared and concept.in_first and concept.in_second:
        ref_a = ObjectRef(first.name, concept.name)
        ref_b = ObjectRef(second.name, concept.name)
        truth.add_object_assertion(ref_a, ref_b, concept.kind)
        indices_a = {idx for idx, _ in attrs_a}
        for idx, attribute in attrs_b:
            if idx in indices_a:
                original = next(a for i, a in attrs_a if i == idx)
                truth.add_attribute_pair(
                    AttributeRef(first.name, concept.name, original.name),
                    AttributeRef(second.name, concept.name, attribute.name),
                )


def _select_attributes(
    concept: _Concept,
    config: GeneratorConfig,
    rng: random.Random,
    full: bool,
    rename_with: float | None = None,
) -> list[tuple[int, Attribute]]:
    pool = concept.attributes if full else concept.attributes[:-1] or concept.attributes
    chosen: list[tuple[int, Attribute]] = []
    used_names: set[str] = set()
    for attr_concept in pool:
        name = attr_concept.base_name
        if rename_with is not None and rng.random() > rename_with:
            name = f"{rng.choice(_WORDS)}_{attr_concept.index}x{concept.index}"
        if name in used_names:
            name = f"{name}_{attr_concept.index}"
        used_names.add(name)
        chosen.append(
            (
                attr_concept.index,
                Attribute(name, attr_concept.domain, attr_concept.is_key),
            )
        )
    return chosen


def _maybe_category(
    schema: Schema,
    concept: _Concept,
    config: GeneratorConfig,
    rng: random.Random,
) -> None:
    if rng.random() >= config.category_rate:
        return
    name = f"Sub_{concept.name}"
    if name in schema:
        return
    schema.add(
        Category(
            name,
            [Attribute(f"extra_{concept.index}", "char")],
            parents=[concept.name],
        )
    )


def _add_relationships(
    schema: Schema, config: GeneratorConfig, rng: random.Random, salt: int
) -> None:
    entities = [entity.name for entity in schema.entity_sets()]
    if len(entities) < 2:
        return
    for index in range(config.relationships_per_schema):
        first_leg, second_leg = rng.sample(entities, 2)
        name = f"Rel_{salt}_{index}"
        schema.add(
            RelationshipSet(
                name,
                [Attribute(f"rattr_{salt}_{index}", "date")],
                participations=[
                    Participation(first_leg, CardinalityConstraint(0, -1)),
                    Participation(second_leg, CardinalityConstraint(1, 1)),
                ],
            )
        )


def _add_shared_relationships(
    concepts: list[_Concept],
    first: Schema,
    second: Schema,
    truth: GroundTruth,
    config: GeneratorConfig,
    rng: random.Random,
) -> None:
    """Project shared relationship concepts into both schemas.

    Only pairs of *equals* concepts carry shared relationships: their
    projections connect the same entity names in both schemas, so the two
    relationship sets genuinely model one association and get a true
    ``equals`` relationship assertion plus one equivalent attribute.
    """
    if config.shared_relationship_rate <= 0:
        return
    equal_concepts = [
        concept
        for concept in concepts
        if concept.kind is AssertionKind.EQUALS
        and concept.in_first
        and concept.in_second
    ]
    for index in range(len(equal_concepts) - 1):
        if rng.random() >= config.shared_relationship_rate:
            continue
        left = equal_concepts[index]
        right = equal_concepts[index + 1]
        name = f"Shared_{left.index}_{right.index}"
        attr_name = f"srattr_{left.index}_{right.index}"
        for schema in (first, second):
            if name in schema:
                continue
            schema.add(
                RelationshipSet(
                    name,
                    [Attribute(attr_name, "date")],
                    participations=[
                        Participation(left.name, CardinalityConstraint(0, -1)),
                        Participation(right.name, CardinalityConstraint(0, -1)),
                    ],
                )
            )
        truth.add_object_assertion(
            ObjectRef(first.name, name),
            ObjectRef(second.name, name),
            AssertionKind.EQUALS,
            relationship=True,
        )
        truth.add_attribute_pair(
            AttributeRef(first.name, name, attr_name),
            AttributeRef(second.name, name, attr_name),
        )
