"""Workloads: the paper's example schemas plus synthetic generators.

* :mod:`repro.workloads.university` — the paper's own schemas sc1/sc2
  (Figures 3-4), the Screen 9 schemas sc3/sc4, the equivalences and
  assertions of Screens 7-8, and the expected integrated schema of
  Figure 5.
* :mod:`repro.workloads.domains` — two richer domain workloads (a hospital
  federation and airline user views) exercising the same pipeline.
* :mod:`repro.workloads.generator` — a seeded synthetic ECR schema-pair
  generator with controllable size and overlap, plus the ground-truth
  correspondence oracle the experiments score against.
* :mod:`repro.workloads.oracle` — a scriptable "oracle DDA" that answers
  equivalence and assertion questions from a ground truth.
* :mod:`repro.workloads.evolution` — deterministic seeded schema-edit
  scripts with a guaranteed fraction of assertion-invalidating edits, the
  traffic generator behind the evolution benchmarks and properties.
* :mod:`repro.workloads.traffic` — seeded ``/v1`` service-call streams
  with an exact, tunable ``read_fraction``, driving the replication
  benchmarks' read-routing and lag measurements.
"""

from repro.workloads.university import (
    build_sc1,
    build_sc2,
    build_sc3,
    build_sc4,
    paper_registry,
    paper_assertions,
    paper_candidate_pairs,
    build_expected_figure5,
    PAPER_ASSERTION_CODES,
)
from repro.workloads.generator import (
    GeneratorConfig,
    GeneratedPair,
    PlantedContradiction,
    conflict_seeded_config,
    generate_schema_pair,
)
from repro.workloads.evolution import (
    EvolutionConfig,
    ScriptedEdit,
    evolution_script,
    run_evolution_script,
)
from repro.workloads.oracle import GroundTruth, OracleDda
from repro.workloads.traffic import (
    ServiceCall,
    TrafficConfig,
    service_traffic,
)
from repro.workloads.domains import (
    build_hospital_admissions,
    build_hospital_clinic,
    hospital_ground_truth,
    build_airline_reservations,
    build_airline_operations,
    airline_ground_truth,
)

__all__ = [
    "build_sc1",
    "build_sc2",
    "build_sc3",
    "build_sc4",
    "paper_registry",
    "paper_assertions",
    "paper_candidate_pairs",
    "build_expected_figure5",
    "PAPER_ASSERTION_CODES",
    "GeneratorConfig",
    "GeneratedPair",
    "PlantedContradiction",
    "conflict_seeded_config",
    "generate_schema_pair",
    "EvolutionConfig",
    "ScriptedEdit",
    "evolution_script",
    "run_evolution_script",
    "GroundTruth",
    "OracleDda",
    "ServiceCall",
    "TrafficConfig",
    "service_traffic",
    "build_hospital_admissions",
    "build_hospital_clinic",
    "hospital_ground_truth",
    "build_airline_reservations",
    "build_airline_operations",
    "airline_ground_truth",
]
