"""Two richer domain workloads: a hospital federation and airline views.

The paper motivates its tool with the two integration contexts of its
introduction: merging user views during logical database design, and
building a global schema over existing databases.  These workloads give
each context a realistic, hand-written scenario with a ground truth:

* **hospital** — two departmental databases (admissions and outpatient
  clinic) to be federated under a global schema; and
* **airline** — two user views (reservations and flight operations) to be
  merged into one logical schema.
"""

from __future__ import annotations

from repro.assertions.kinds import AssertionKind
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import Schema
from repro.workloads.oracle import GroundTruth


def build_hospital_admissions() -> Schema:
    """The admissions department's database schema."""
    return (
        SchemaBuilder("adm", "hospital admissions database")
        .entity(
            "Patient",
            attrs=[
                ("Patient_id", "char", True),
                ("Name", "char"),
                ("Birth_date", "date"),
                ("Insurance", "char"),
            ],
        )
        .entity(
            "Ward",
            attrs=[("Ward_no", "integer", True), ("Floor", "integer")],
        )
        .entity(
            "Physician",
            attrs=[
                ("Staff_id", "char", True),
                ("Name", "char"),
                ("Specialty", "char"),
            ],
        )
        .category("Inpatient", of="Patient", attrs=[("Bed_no", "integer")])
        .relationship(
            "Admitted_to",
            connects=[("Inpatient", "(1,1)"), ("Ward", "(0,n)")],
            attrs=[("Admission_date", "date")],
        )
        .relationship(
            "Attends",
            connects=[("Physician", "(0,n)"), ("Patient", "(1,n)")],
        )
        .build()
    )


def build_hospital_clinic() -> Schema:
    """The outpatient clinic's database schema."""
    return (
        SchemaBuilder("cli", "outpatient clinic database")
        .entity(
            "Person",
            attrs=[
                ("Ssn", "char", True),
                ("Name", "char"),
                ("Birth_date", "date"),
            ],
        )
        .entity(
            "Doctor",
            attrs=[
                ("Staff_id", "char", True),
                ("Name", "char"),
                ("Clinic_days", "char"),
            ],
        )
        .entity(
            "Appointment_slot",
            attrs=[("Slot_id", "char", True), ("Time", "date")],
        )
        .category(
            "Outpatient", of="Person", attrs=[("Referral_no", "char")]
        )
        .relationship(
            "Books",
            connects=[("Outpatient", "(0,n)"), ("Appointment_slot", "(1,1)")],
        )
        .relationship(
            "Sees",
            connects=[("Doctor", "(0,n)"), ("Outpatient", "(0,n)")],
            attrs=[("Visit_date", "date")],
        )
        .build()
    )


def hospital_ground_truth() -> GroundTruth:
    """True correspondences between the two hospital databases.

    Every admissions patient and every clinic person is a person; the two
    patient populations overlap (some people are both in- and outpatients),
    and the physician/doctor staff are the same set.
    """
    truth = GroundTruth()
    truth.add_attribute_pair("adm.Patient.Name", "cli.Person.Name")
    truth.add_attribute_pair("adm.Patient.Birth_date", "cli.Person.Birth_date")
    truth.add_attribute_pair("adm.Physician.Staff_id", "cli.Doctor.Staff_id")
    truth.add_attribute_pair("adm.Physician.Name", "cli.Doctor.Name")
    truth.add_object_assertion(
        "adm.Patient", "cli.Person", AssertionKind.CONTAINED_IN
    )
    truth.add_object_assertion(
        "adm.Physician", "cli.Doctor", AssertionKind.EQUALS
    )
    truth.add_object_assertion(
        "adm.Inpatient", "cli.Outpatient", AssertionKind.MAY_BE
    )
    truth.add_object_assertion(
        "adm.Attends", "cli.Sees", AssertionKind.MAY_BE, relationship=True
    )
    return truth


def build_airline_reservations() -> Schema:
    """The reservations user view of the airline database."""
    return (
        SchemaBuilder("res", "reservations user view")
        .entity(
            "Passenger",
            attrs=[
                ("Ticket_no", "char", True),
                ("Name", "char"),
                ("Frequent_flyer", "boolean"),
            ],
        )
        .entity(
            "Flight",
            attrs=[
                ("Flight_no", "char", True),
                ("Departure", "date"),
                ("Origin", "char"),
                ("Destination", "char"),
            ],
        )
        .relationship(
            "Booked_on",
            connects=[("Passenger", "(1,n)"), ("Flight", "(0,n)")],
            attrs=[("Seat", "char"), ("Fare_class", "char")],
        )
        .build()
    )


def build_airline_operations() -> Schema:
    """The flight-operations user view of the airline database."""
    return (
        SchemaBuilder("ops", "flight operations user view")
        .entity(
            "Flight",
            attrs=[
                ("Flight_no", "char", True),
                ("Departure", "date"),
                ("Aircraft_type", "char"),
            ],
        )
        .entity(
            "Crew_member",
            attrs=[
                ("Employee_id", "char", True),
                ("Name", "char"),
                ("Role", "char"),
            ],
        )
        .category(
            "International_flight",
            of="Flight",
            attrs=[("Customs_code", "char")],
        )
        .relationship(
            "Assigned_to",
            connects=[("Crew_member", "(1,n)"), ("Flight", "(2,n)")],
        )
        .build()
    )


def airline_ground_truth() -> GroundTruth:
    """True correspondences between the two airline user views."""
    truth = GroundTruth()
    truth.add_attribute_pair("res.Flight.Flight_no", "ops.Flight.Flight_no")
    truth.add_attribute_pair("res.Flight.Departure", "ops.Flight.Departure")
    truth.add_object_assertion("res.Flight", "ops.Flight", AssertionKind.EQUALS)
    truth.add_object_assertion(
        "res.Passenger", "ops.Crew_member", AssertionKind.DISJOINT_INTEGRABLE
    )
    return truth
