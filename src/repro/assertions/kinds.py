"""Assertion kinds and the underlying domain relations.

Screen 8/9 of the paper number the assertions a DDA can give:

====  =======================================  ==================
code  meaning                                  domain relation
====  =======================================  ==================
0     disjoint and non-integrable              DR (disjoint)
1     equals                                   EQ (identical)
2     contained in                             PP (proper subset)
3     contains                                 PPi (proper superset)
4     disjoint but integrable                  DR (disjoint)
5     may be integrable (overlapping)          PO (partial overlap)
====  =======================================  ==================

Codes 0 and 4 share the DR relation and differ only in the DDA's
integrability decision; code 5 is the "may be" assertion of Figure 2c.
The domain relations are the RCC-5 base relations, which is what makes the
paper's transitive composition and consistency checking a qualitative
constraint problem.  Object domains are assumed non-empty (an entity set
models at least one real-world instance), which the composition table
relies on.
"""

from __future__ import annotations

import enum

from repro.errors import AssertionSpecError


class Relation(enum.Enum):
    """The five RCC-5 base relations between two object-class domains."""

    EQ = "equals"            #: identical domains
    PP = "contained-in"      #: proper subset (first inside second)
    PPI = "contains"         #: proper superset (second inside first)
    PO = "overlaps"          #: overlapping, neither contains the other
    DR = "disjoint"          #: no common instances

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Source(enum.Enum):
    """Where an assertion came from."""

    DDA = "dda"            #: specified interactively by the DDA
    IMPLICIT = "implicit"  #: read off a schema's own IS-A structure
    DERIVED = "derived"    #: obtained by transitive composition

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AssertionKind(enum.Enum):
    """The six assertion codes of Screens 8 and 9."""

    DISJOINT_NONINTEGRABLE = 0
    EQUALS = 1
    CONTAINED_IN = 2
    CONTAINS = 3
    DISJOINT_INTEGRABLE = 4
    MAY_BE = 5

    @property
    def code(self) -> int:
        """The menu number the DDA types (0-5)."""
        return self.value

    @property
    def relation(self) -> Relation:
        """The underlying domain relation."""
        return _KIND_RELATION[self]

    @property
    def integrable(self) -> bool:
        """Whether the pair takes part in integration.

        Everything except ``DISJOINT_NONINTEGRABLE`` is integrable — a
        cluster is "a group of related objects that are connected by any
        assertion except disjoint nonintegrable".
        """
        return self is not AssertionKind.DISJOINT_NONINTEGRABLE

    def describe(self, first: str = "A", second: str = "B") -> str:
        """Render the assertion in the menu phrasing of Screen 9."""
        return _KIND_PHRASES[self].format(first=first, second=second)

    @property
    def converse(self) -> "AssertionKind":
        """The same assertion read with the objects swapped."""
        if self is AssertionKind.CONTAINED_IN:
            return AssertionKind.CONTAINS
        if self is AssertionKind.CONTAINS:
            return AssertionKind.CONTAINED_IN
        return self

    @classmethod
    def from_code(cls, code: int) -> "AssertionKind":
        """Look up a Screen 8/9 menu number.

        Raises
        ------
        AssertionSpecError
            If ``code`` is not one of 0-5.
        """
        try:
            return cls(code)
        except ValueError:
            raise AssertionSpecError(
                f"assertion code must be 0-5, got {code!r}"
            ) from None

    @classmethod
    def from_relation(
        cls, relation: Relation, integrable: bool | None = None
    ) -> "AssertionKind":
        """Map a domain relation (plus integrability for DR) to a kind.

        ``integrable`` is required only for :data:`Relation.DR`; a derived
        disjointness whose integrability the DDA has not yet decided maps to
        ``DISJOINT_NONINTEGRABLE`` only when explicitly passed ``False``.
        """
        if relation is Relation.DR:
            if integrable is None:
                raise AssertionSpecError(
                    "disjoint relation needs an integrability decision"
                )
            if integrable:
                return cls.DISJOINT_INTEGRABLE
            return cls.DISJOINT_NONINTEGRABLE
        return _RELATION_KIND[relation]


_KIND_RELATION = {
    AssertionKind.DISJOINT_NONINTEGRABLE: Relation.DR,
    AssertionKind.EQUALS: Relation.EQ,
    AssertionKind.CONTAINED_IN: Relation.PP,
    AssertionKind.CONTAINS: Relation.PPI,
    AssertionKind.DISJOINT_INTEGRABLE: Relation.DR,
    AssertionKind.MAY_BE: Relation.PO,
}

_RELATION_KIND = {
    Relation.EQ: AssertionKind.EQUALS,
    Relation.PP: AssertionKind.CONTAINED_IN,
    Relation.PPI: AssertionKind.CONTAINS,
    Relation.PO: AssertionKind.MAY_BE,
}

_KIND_PHRASES = {
    AssertionKind.EQUALS: "{first} 'equals' {second}",
    AssertionKind.CONTAINED_IN: "{first} 'contained in' {second}",
    AssertionKind.CONTAINS: "{first} 'contains' {second}",
    AssertionKind.DISJOINT_INTEGRABLE: (
        "{first} and {second} are disjoint but integrable"
    ),
    AssertionKind.MAY_BE: "{first} and {second} may be integratable",
    AssertionKind.DISJOINT_NONINTEGRABLE: (
        "{first} and {second} are disjoint & non-integratable"
    ),
}
