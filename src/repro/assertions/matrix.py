"""The Entity Assertion matrix view.

The paper stores assertions "in an Entity Assertion matrix, where element
(i,j) in the matrix represents the assertion between object classes i and
j".  The network is the live structure; this module renders the classic
matrix view of it for inspection, screens and the experiment record.
"""

from __future__ import annotations

from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef, Schema


def assertion_code_matrix(
    network: AssertionNetwork,
    first_schema: Schema,
    second_schema: Schema,
) -> list[list[int | None]]:
    """Matrix of assertion codes between two schemas' object classes.

    Rows are the first schema's object classes, columns the second's, both
    in declaration order.  A cell holds the Screen 8 code of the specified
    or derived assertion, or ``None`` when the pair is still undetermined.
    """
    rows = [
        ObjectRef(first_schema.name, structure.name)
        for structure in first_schema.object_classes()
    ]
    columns = [
        ObjectRef(second_schema.name, structure.name)
        for structure in second_schema.object_classes()
    ]
    matrix: list[list[int | None]] = []
    for row in rows:
        cells: list[int | None] = []
        for column in columns:
            assertion = network.assertion_for(row, column)
            cells.append(None if assertion is None else assertion.kind.code)
        matrix.append(cells)
    return matrix


def render_assertion_matrix(
    network: AssertionNetwork,
    first_schema: Schema,
    second_schema: Schema,
) -> str:
    """Human-readable Entity Assertion matrix (``.`` = undetermined)."""
    columns = [structure.name for structure in second_schema.object_classes()]
    rows = [structure.name for structure in first_schema.object_classes()]
    matrix = assertion_code_matrix(network, first_schema, second_schema)
    name_width = max([len(name) for name in rows] + [12])
    header = " " * (name_width + 2) + " ".join(
        f"{name:>14.14}" for name in columns
    )
    lines = [
        f"Entity Assertion matrix: {first_schema.name} x {second_schema.name}",
        header,
    ]
    for name, cells in zip(rows, matrix):
        rendered = " ".join(
            f"{'.' if cell is None else cell:>14}" for cell in cells
        )
        lines.append(f"{name:<{name_width}}  {rendered}")
    return "\n".join(lines) + "\n"
