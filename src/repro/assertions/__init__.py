"""Assertion specification, derivation and consistency (Phase 3).

An *assertion* specifies the relationship between the real-world domains of
two object classes in different schemas (Section 2 of the paper).  The five
domain relationships — equals, contained-in, contains, overlap ("may be")
and disjoint — are exactly the RCC-5 base relations, so we implement the
paper's "rules of transitive composition of assertions" as the RCC-5
composition table and its consistency checking as path consistency over a
qualitative constraint network.  Whether a disjoint/overlapping pair is
*integrable* is the DDA's subjective choice and rides along as metadata.

Public surface:

* :class:`AssertionKind` — the six Screen 8/9 codes (0-5);
* :class:`Assertion` — a specified, implicit or derived assertion with
  provenance;
* :class:`AssertionNetwork` — the Entity Assertion matrix generalised to a
  constraint network with derivation and conflict detection;
* :class:`ConflictReport` — the Screen 9 conflict explanation.
"""

from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.assertions.composition import (
    ALL_RELATIONS,
    compose,
    compose_sets,
    converse,
    converse_set,
)
from repro.assertions.assertion import Assertion
from repro.assertions.network import AssertionNetwork
from repro.assertions.conflicts import ConflictReport, render_screen9
from repro.assertions.matrix import assertion_code_matrix, render_assertion_matrix

__all__ = [
    "AssertionKind",
    "Relation",
    "Source",
    "ALL_RELATIONS",
    "compose",
    "compose_sets",
    "converse",
    "converse_set",
    "Assertion",
    "AssertionNetwork",
    "ConflictReport",
    "render_screen9",
    "assertion_code_matrix",
    "render_assertion_matrix",
]
