"""The RCC-5 composition table: transitive composition of assertions.

Given the relation between domains A and B and the relation between B and
C, the composition table lists every relation that can hold between A and
C.  The paper derives assertions "using rules of transitive composition of
assertions (such as if a ⊆ b and b ⊆ c then a ⊆ c)"; the table below is
the complete set of such rules for the five domain relations, assuming
non-empty domains.  A singleton result is a definite derivation; a larger
set merely constrains what the DDA may consistently assert.
"""

from __future__ import annotations

from repro.assertions.kinds import Relation

EQ, PP, PPI, PO, DR = (
    Relation.EQ,
    Relation.PP,
    Relation.PPI,
    Relation.PO,
    Relation.DR,
)

#: The universal (unconstrained) relation set.
ALL_RELATIONS: frozenset[Relation] = frozenset(Relation)

_CONVERSE = {EQ: EQ, PP: PPI, PPI: PP, PO: PO, DR: DR}

#: compose(R1, R2) — feasible relations between A and C given A R1 B, B R2 C.
_TABLE: dict[tuple[Relation, Relation], frozenset[Relation]] = {
    (EQ, EQ): frozenset({EQ}),
    (EQ, PP): frozenset({PP}),
    (EQ, PPI): frozenset({PPI}),
    (EQ, PO): frozenset({PO}),
    (EQ, DR): frozenset({DR}),
    (PP, EQ): frozenset({PP}),
    (PP, PP): frozenset({PP}),
    (PP, PPI): ALL_RELATIONS,
    (PP, PO): frozenset({DR, PO, PP}),
    (PP, DR): frozenset({DR}),
    (PPI, EQ): frozenset({PPI}),
    (PPI, PP): frozenset({EQ, PO, PP, PPI}),
    (PPI, PPI): frozenset({PPI}),
    (PPI, PO): frozenset({PO, PPI}),
    (PPI, DR): frozenset({DR, PO, PPI}),
    (PO, EQ): frozenset({PO}),
    (PO, PP): frozenset({PO, PP}),
    (PO, PPI): frozenset({DR, PO, PPI}),
    (PO, PO): ALL_RELATIONS,
    (PO, DR): frozenset({DR, PO, PPI}),
    (DR, EQ): frozenset({DR}),
    (DR, PP): frozenset({DR, PO, PP}),
    (DR, PPI): frozenset({DR}),
    (DR, PO): frozenset({DR, PO, PP}),
    (DR, DR): ALL_RELATIONS,
}


def converse(relation: Relation) -> Relation:
    """The relation read with the two objects swapped."""
    return _CONVERSE[relation]


def converse_set(relations: frozenset[Relation]) -> frozenset[Relation]:
    """Element-wise converse of a relation set."""
    return frozenset(_CONVERSE[relation] for relation in relations)


def compose(first: Relation, second: Relation) -> frozenset[Relation]:
    """Feasible relations between A and C given A ``first`` B, B ``second`` C."""
    return _TABLE[(first, second)]


def compose_sets(
    first: frozenset[Relation], second: frozenset[Relation]
) -> frozenset[Relation]:
    """Composition lifted to relation sets (union over all base pairs).

    Short-circuits to :data:`ALL_RELATIONS` when either side is universal,
    which keeps path consistency cheap on sparse networks.
    """
    if first == ALL_RELATIONS or second == ALL_RELATIONS:
        return ALL_RELATIONS
    result: set[Relation] = set()
    for rel_a in first:
        for rel_b in second:
            result |= _TABLE[(rel_a, rel_b)]
            if len(result) == len(ALL_RELATIONS):
                return ALL_RELATIONS
    return frozenset(result)
