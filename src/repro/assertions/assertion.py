"""The assertion record: a relation between two object-class domains.

Assertions come from three sources — the DDA (Screen 8), the IS-A structure
of a component schema itself (a category is contained in its parents), and
transitive derivation.  Derived assertions carry the pairs that supported
the derivation so that Screen 9 can display the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.ecr.schema import ObjectRef

#: An unordered object pair used as a network key.
Pair = tuple[ObjectRef, ObjectRef]


def ordered_pair(first: ObjectRef, second: ObjectRef) -> Pair:
    """Canonical (sorted) form of an object pair for use as a dict key."""
    if second < first:
        return (second, first)
    return (first, second)


@dataclass(frozen=True)
class Assertion:
    """One assertion between two object classes.

    ``kind`` is the Screen 8/9 code.  For derived disjoint/overlap
    assertions the integrability half of the code is not yet the DDA's
    decision; ``integrability_decided`` is False for those, and the kind
    defaults to the integrable variant (a cluster boundary is only created
    by an explicit DDA code 0).

    ``supports`` lists the unordered pairs whose assertions were composed
    to derive this one (empty for DDA and implicit assertions).
    """

    first: ObjectRef
    second: ObjectRef
    kind: AssertionKind
    source: Source = Source.DDA
    supports: tuple[Pair, ...] = field(default=())
    integrability_decided: bool = True
    note: str = ""

    @property
    def relation(self) -> Relation:
        """The underlying domain relation."""
        return self.kind.relation

    @property
    def pair(self) -> Pair:
        """The canonical unordered pair this assertion concerns."""
        return ordered_pair(self.first, self.second)

    def oriented(self, first: ObjectRef, second: ObjectRef) -> "Assertion":
        """This assertion re-read in the given object order.

        ``network.assertion_for(a, b)`` may store the pair in canonical
        order; orienting flips contained-in/contains as needed.
        """
        if (first, second) == (self.first, self.second):
            return self
        if (first, second) != (self.second, self.first):
            raise ValueError(
                f"assertion is about {self.first}/{self.second}, "
                f"not {first}/{second}"
            )
        return Assertion(
            first,
            second,
            self.kind.converse,
            self.source,
            self.supports,
            self.integrability_decided,
            self.note,
        )

    def describe(self) -> str:
        """Menu-style phrasing, e.g. ``sc1.Student 'contains' sc2.Grad_student``."""
        return self.kind.describe(str(self.first), str(self.second))

    def to_wire(self) -> dict:
        """JSON-friendly form, shared by conflict reports and the service."""
        return {
            "first": str(self.first),
            "second": str(self.second),
            "kind": self.kind.name,
            "kind_code": self.kind.code,
            "source": self.source.name,
            "note": self.note,
        }

    def __str__(self) -> str:
        tag = "" if self.source is Source.DDA else f" <{self.source}>"
        return f"{self.describe()}{tag}"
