"""Conflict reports and the Screen 9 rendering.

When a newly specified assertion contradicts the previously specified or
derived assertions, the tool shows the Assertion Conflict Resolution Screen:
the conflicting pair with its current (possibly derived) assertion, the new
assertion, and — for a derived current assertion — "all the relevant
assertions used in the derivation".  :class:`ConflictReport` carries exactly
that information and :func:`render_screen9` lays it out like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import Relation, Source
from repro.ecr.schema import ObjectRef

_MENU = """\
Assertions:
  1 - OB_CL_name_1 'equals' OB_CL_name_2
  2 - OB_CL_name_1 'contained in' OB_CL_name_2
  3 - OB_CL_name_1 'contains' OB_CL_name_2
  4 - OB_CL_name_1 and OB_CL_name_2 are disjoint but integrable
  5 - OB_CL_name_1 and OB_CL_name_2 may be integratable
  0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable"""


@dataclass(frozen=True)
class ConflictReport:
    """Explanation of why a new assertion was rejected.

    Attributes
    ----------
    new:
        The assertion the DDA just tried to specify.
    subject_first, subject_second:
        The pair on which the contradiction materialised.  Usually the new
        assertion's own pair; when propagation emptied a *different* pair,
        that pair instead.
    current:
        The existing (specified or derived) assertion on the subject pair,
        if the pair had been narrowed to a single relation.
    feasible:
        The feasible relation set the new assertion violated (empty when
        propagation produced the contradiction).
    chain:
        The specified/implicit assertions underlying the subject pair's
        current state — the derivation lines of Screen 9.
    facts:
        Every specified/implicit assertion committed when the conflict
        arose, in specification order.  The chain only walks the subject
        pair's supports, which can miss facts a propagation conflict
        consumed; minimal-conflict computation needs the full log.
    """

    new: Assertion
    subject_first: ObjectRef
    subject_second: ObjectRef
    current: Assertion | None
    feasible: frozenset[Relation]
    chain: list[Assertion] = field(default_factory=list)
    facts: tuple[Assertion, ...] = field(default=())

    @property
    def is_propagation_conflict(self) -> bool:
        """Whether the clash surfaced on a pair other than the new one's."""
        return self.new.pair != (
            self.subject_first,
            self.subject_second,
        ) and self.new.pair != (self.subject_second, self.subject_first)

    def suggested_repairs(self) -> list[str]:
        """Human-readable repair options, Screen 9 style.

        The paper: "the DDA may change earlier assertion in line 3
        (possibly to a '0' or '5')".  We suggest withdrawing the new
        assertion or retracting/changing each DDA assertion in the chain
        (implicit assertions come from the schema itself and cannot be
        changed without editing the schema).
        """
        repairs = [f"withdraw the new assertion {self.new.describe()}"]
        for assertion in self.chain:
            if assertion.source is Source.DDA:
                repairs.append(
                    f"retract or change {assertion.describe()} "
                    f"(currently code {assertion.kind.code})"
                )
            else:
                repairs.append(
                    f"revise the schema structure behind {assertion.describe()}"
                )
        return repairs

    def minimal_conflict(self) -> tuple[Assertion, ...]:
        """The minimal set of existing facts clashing with the new assertion.

        Runs QuickXplain (:mod:`repro.solver.explain`) over the committed
        fact log with the rejected assertion as unretractable background:
        asserting the returned facts plus the new one reproduces the
        contradiction, and retracting any single one of them would let
        the new assertion through.  Computed lazily and cached; returns
        ``()`` when no fact log was captured (legacy reports).
        """
        cached = getattr(self, "_minimal_conflict", None)
        if cached is not None:
            return cached
        if not self.facts:
            result: tuple[Assertion, ...] = ()
        else:
            from repro.solver.explain import is_consistent, minimal_conflict

            universe = list(self.facts)
            if is_consistent([self.new] + universe):
                result = ()  # e.g. the feasibility check pre-empted propagation
            else:
                result = minimal_conflict(universe, background=[self.new])
        object.__setattr__(self, "_minimal_conflict", result)
        return result

    def to_wire(self) -> dict:
        """JSON-friendly report shape for the service's 409 payloads."""
        return {
            "new": self.new.to_wire(),
            "subject": {
                "first": str(self.subject_first),
                "second": str(self.subject_second),
            },
            "current": None if self.current is None else self.current.to_wire(),
            "feasible": sorted(rel.value for rel in self.feasible),
            "chain": [assertion.to_wire() for assertion in self.chain],
            "conflict_set": [
                assertion.to_wire() for assertion in self.minimal_conflict()
            ],
            "repairs": self.suggested_repairs(),
        }

    def __str__(self) -> str:
        subject = f"{self.subject_first} / {self.subject_second}"
        if self.current is not None:
            held = (
                f"current assertion {self.current.kind.code}"
                f" ({self.current.source})"
            )
        elif self.feasible:
            allowed = ", ".join(sorted(rel.value for rel in self.feasible))
            held = f"feasible relations {{{allowed}}}"
        else:
            held = "no relation remains feasible"
        return (
            f"new assertion {self.new.kind.code} on {self.new.first} / "
            f"{self.new.second} conflicts with {subject}: {held}"
        )


def render_screen9(report: ConflictReport) -> str:
    """Render a conflict in the layout of the paper's Screen 9."""
    width = 96
    lines = [
        "ASSERTION SPECIFICATION".center(width),
        "< Assertion Conflict Resolution Screen >".center(width),
        "",
        f"{'SCHEMA_NAME1.OBJ_CLASS1':<28}{'SCHEMA_NAME2.OBJ_CLASS2':<28}"
        f"{'CURRENT':>10}{'NEW':>22}",
        f"{'':<28}{'':<28}{'ASSERTION':>10}{'ASSERTION':>22}",
    ]
    current_code = "?" if report.current is None else str(report.current.kind.code)
    derived_tag = (
        "<derived>(CONFLICT)"
        if report.current is not None and report.current.source is Source.DERIVED
        else "(CONFLICT)"
    )
    lines.append(
        f"{str(report.subject_first):<28}{str(report.subject_second):<28}"
        f"{current_code:>10}{derived_tag:>22}"
    )
    lines.append(
        f"{str(report.new.first):<28}{str(report.new.second):<28}"
        f"{report.new.kind.code:>10}{'<new>(CONFLICT)':>22}"
    )
    for assertion in report.chain:
        lines.append(
            f"{str(assertion.first):<28}{str(assertion.second):<28}"
            f"{assertion.kind.code:>10}"
        )
    lines.append("")
    lines.append(_MENU)
    minimal = report.minimal_conflict()
    if minimal:
        lines.append("")
        lines.append("Minimal conflict set (retract any one to resolve):")
        for index, assertion in enumerate(minimal, start=1):
            lines.append(
                f"  {index} - {assertion.describe()} "
                f"(code {assertion.kind.code}, {assertion.source})"
            )
    lines.append("")
    lines.append("Suggested repairs:")
    for repair in report.suggested_repairs():
        lines.append(f"  - {repair}")
    return "\n".join(lines) + "\n"
