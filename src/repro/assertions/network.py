"""The assertion constraint network (the Entity Assertion matrix, generalised).

The paper stores assertions in an Entity Assertion matrix whose element
``(i, j)`` is the assertion between object classes i and j; some elements
are specified by the DDA, the rest "may be derived using rules of transitive
composition", and every new assertion is checked for consistency against the
previously specified or derived ones.

We implement that as a qualitative constraint network: every unordered pair
of object classes carries the *feasible set* of domain relations between
them.  A DDA assertion narrows a pair to a single relation; path consistency
(composition along every triangle) narrows other pairs; a pair narrowed to a
singleton becomes a **derived assertion** with a recorded support chain; a
pair narrowed to the empty set is a **conflict**, reported with the chain of
underlying assertions exactly as the Assertion Conflict Resolution Screen
(Screen 9) does.

The network maintains itself **incrementally**, matching the tool's
interactive loop where each DDA action touches one edge:

* :meth:`specify` propagates only from the changed edge's frontier, mutating
  the tables in place with an undo log (no whole-network copies); a conflict
  rolls the log back, leaving the network exactly as before.
* :meth:`retract` / :meth:`respecify` repair only the **affected
  neighborhood**: a per-edge support index records every triangle that ever
  narrowed a pair, the dependent closure of the retracted edge is reset, and
  path consistency is re-run from the constrained frontier of that region —
  the rest of the network is untouched.  (Construct the network with
  ``incremental=False`` to force the old full-rebuild behaviour; the
  benchmarks use it as the baseline.)

Work done either way is tallied in :attr:`counters`
(:class:`~repro.obs.metrics.AnalysisCounters`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable

from repro.assertions.assertion import Assertion, Pair, ordered_pair
from repro.assertions.composition import (
    ALL_RELATIONS,
    compose_sets,
    converse_set,
)
from repro.assertions.conflicts import ConflictReport
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.ecr.coerce import coerce_object_ref
from repro.ecr.schema import ObjectRef, Schema
from repro.errors import AssertionSpecError, ConflictError
from repro.kernel.events import NO_CHANGE
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.kernel.bus import EventEmitter

#: An oriented support: R(x, y) was narrowed by composing R(x, via), R(via, y).
_Support = tuple[ObjectRef, ObjectRef, ObjectRef]

#: Sentinel for "no entry existed before this mutation" in the undo log.
_ABSENT = object()


class _UndoLog:
    """Prior state of every pair touched by one propagation run.

    Propagation mutates the network tables in place; on conflict the log
    restores them, which is what makes trial-specification cheap (the old
    implementation copied the whole feasible table per :meth:`specify`).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        #: pair -> (old feasible, old last support, old support-index set)
        self._entries: dict[Pair, tuple[object, object, object]] = {}

    def remember(self, network: "AssertionNetwork", pair: Pair) -> None:
        if pair in self._entries:
            return
        index = network._support_index.get(pair)
        self._entries[pair] = (
            network._feasible.get(pair, _ABSENT),
            network._supports.get(pair, _ABSENT),
            set(index) if index is not None else _ABSENT,
        )

    def rollback(self, network: "AssertionNetwork") -> None:
        for pair, (feasible, support, index) in self._entries.items():
            if feasible is _ABSENT:
                network._feasible.pop(pair, None)
            else:
                network._feasible[pair] = feasible  # type: ignore[assignment]
            if support is _ABSENT:
                network._supports.pop(pair, None)
            else:
                network._supports[pair] = support  # type: ignore[assignment]
            if index is _ABSENT:
                network._support_index.pop(pair, None)
            else:
                network._support_index[pair] = index  # type: ignore[assignment]


class AssertionNetwork:
    """Assertions over a set of object classes, with derivation and checking."""

    def __init__(
        self,
        *,
        counters: AnalysisCounters | None = None,
        incremental: bool = True,
    ) -> None:
        self._objects: list[ObjectRef] = []
        self._object_set: set[ObjectRef] = set()
        #: canonical pair -> feasible relation set (missing means ALL)
        self._feasible: dict[Pair, frozenset[Relation]] = {}
        #: canonical pair -> the specified (DDA/implicit) assertion
        self._specified: dict[Pair, Assertion] = {}
        #: insertion-ordered log of specified assertions (for retraction rebuilds)
        self._log: list[Assertion] = []
        #: canonical pair -> oriented support triple for its last narrowing
        self._supports: dict[Pair, _Support] = {}
        #: canonical pair -> every support triple that narrowed it since it
        #: was last reset; the reverse reading of this index is the
        #: dependency graph incremental retraction walks
        self._support_index: dict[Pair, set[_Support]] = {}
        #: canonical pair -> derived assertion (singleton, not specified)
        self._derived: dict[Pair, Assertion] = {}
        #: shared work counters (an :class:`AnalysisSession` injects its own)
        self.counters = counters if counters is not None else AnalysisCounters()
        #: whether retract/respecify repair incrementally (False = rebuild)
        self.incremental = incremental
        #: kernel-bus emitter (an :class:`AnalysisSession` binds one);
        #: commits every specify/retract, plus conflicts and rejections,
        #: as ``<scope>.*`` events for the audit tap and undo/redo.
        self.events: "EventEmitter | None" = None

    # -- membership ------------------------------------------------------------

    def add_object(self, ref: ObjectRef | str) -> None:
        """Register an object class as a network node (idempotent)."""
        ref = coerce_object_ref(ref)
        if ref not in self._object_set:
            self._object_set.add(ref)
            self._objects.append(ref)

    def objects(self) -> list[ObjectRef]:
        """All registered object classes, in registration order."""
        return list(self._objects)

    def remove_object(self, ref: ObjectRef | str) -> list[Assertion]:
        """Drop a node from the network, repairing only its neighborhood.

        Every specified assertion involving the node (DDA and implicit) is
        retracted — each retraction resets and re-revises just the
        dependent closure of that edge via :meth:`retract`'s incremental
        repair.  Because composition with a universal edge is universal,
        every non-universal pair at the node descends from one of those
        specified assertions, so after the retractions the node carries no
        constraints and can be detached without touching the rest of the
        network.  Returns the specified assertions that were retracted (in
        specification order) so callers can report repair scope or rebuild
        an inverse.

        Event emission is suspended: removal is internal repair driven by a
        schema edit, which is itself the recorded event.
        """
        ref = coerce_object_ref(ref)
        if ref not in self._object_set:
            return []
        retracted = [
            assertion for assertion in self._log if ref in assertion.pair
        ]
        from contextlib import nullcontext

        suspended = self.events.muted() if self.events is not None else nullcontext()
        with suspended:
            with span("evolution.repair.assertions", counters=self.counters):
                for assertion in retracted:
                    self.retract(assertion.first, assertion.second)
        # Belt and braces: the retraction closures above already reset every
        # entry that involved (or was supported through) the node, but purge
        # any residue so a stale reference can never survive the node.
        for pair in [p for p in self._feasible if ref in p]:
            del self._feasible[pair]
        for pair in [p for p in self._supports if ref in p]:
            del self._supports[pair]
        for pair in [p for p in self._derived if ref in p]:
            del self._derived[pair]
        for pair, supports in list(self._support_index.items()):
            if ref in pair:
                del self._support_index[pair]
                continue
            pruned = {s for s in supports if ref not in s}
            if not pruned:
                del self._support_index[pair]
            elif pruned != supports:
                self._support_index[pair] = pruned
        self._object_set.discard(ref)
        self._objects = [obj for obj in self._objects if obj != ref]
        return retracted

    def seed_schema(
        self, schema: Schema, entity_disjointness: bool = False
    ) -> list[Assertion]:
        """Register a schema's object classes and its implicit assertions.

        Every *single-parent* category is *contained in* its parent — the
        schema says so itself, no DDA input needed (this is how Screen 9's
        ``sc4.Grad_student`` ⊆ ``sc4.Student`` line arises).  A category
        over several parents is a subset of their *union*, which the
        relation algebra cannot state about any one parent, so union
        categories contribute no implicit assertion.  With
        ``entity_disjointness`` set, the model's rule that entity sets of
        one schema are disjoint is also seeded; the paper's tool does not
        assume it, so it is off by default.

        Returns the implicit assertions added.
        """
        for structure in schema.object_classes():
            self.add_object(ObjectRef(schema.name, structure.name))
        added: list[Assertion] = []
        for category in schema.categories():
            if len(category.parents) != 1:
                continue  # union category: subset of the union only
            child = ObjectRef(schema.name, category.name)
            added.append(
                self.specify(
                    child,
                    ObjectRef(schema.name, category.parents[0]),
                    AssertionKind.CONTAINED_IN,
                    source=Source.IMPLICIT,
                    note="category structure",
                )
            )
        if entity_disjointness:
            entities = [
                ObjectRef(schema.name, entity.name)
                for entity in schema.entity_sets()
            ]
            for index, first in enumerate(entities):
                for second in entities[index + 1 :]:
                    added.append(
                        self.specify(
                            first,
                            second,
                            AssertionKind.DISJOINT_NONINTEGRABLE,
                            source=Source.IMPLICIT,
                            note="entity sets are disjoint",
                        )
                    )
        return added

    # -- feasible-set access ---------------------------------------------------

    def feasible(
        self, first: ObjectRef | str, second: ObjectRef | str
    ) -> frozenset[Relation]:
        """Feasible relations between two objects, oriented first→second."""
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        self._require(first)
        self._require(second)
        if first == second:
            return frozenset({Relation.EQ})
        return self._get(self._feasible, first, second)

    def _require(self, ref: ObjectRef) -> None:
        if ref not in self._object_set:
            raise AssertionSpecError(f"object {ref} is not in the network")

    @staticmethod
    def _get(
        table: dict[Pair, frozenset[Relation]],
        first: ObjectRef,
        second: ObjectRef,
    ) -> frozenset[Relation]:
        pair = ordered_pair(first, second)
        stored = table.get(pair, ALL_RELATIONS)
        if pair != (first, second):
            return converse_set(stored)
        return stored

    @staticmethod
    def _set(
        table: dict[Pair, frozenset[Relation]],
        first: ObjectRef,
        second: ObjectRef,
        relations: frozenset[Relation],
    ) -> None:
        pair = ordered_pair(first, second)
        if pair != (first, second):
            relations = converse_set(relations)
        table[pair] = relations

    # -- specification ------------------------------------------------------------

    def specify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Record an assertion between two objects, deriving and checking.

        Raises
        ------
        ConflictError
            If the assertion contradicts previously specified or derived
            assertions; the attached :class:`ConflictReport` carries the
            derivation chain for Screen 9.
        AssertionSpecError
            If the pair already carries a *different* specified assertion
            (use :meth:`respecify` for the review-and-modify flow), or the
            objects are unknown/identical.
        """
        if isinstance(kind, int):
            kind = AssertionKind.from_code(kind)
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        prior = self._specified.get(ordered_pair(first, second))
        try:
            with span("phase3.closure.specify", counters=self.counters):
                result = self._specify_checked(first, second, kind, source, note)
        except ConflictError:
            self._emit_assertion(
                "conflict", first, second, kind, source, note,
                inverse=NO_CHANGE,
            )
            raise
        except AssertionSpecError:
            self._emit_assertion(
                "rejected", first, second, kind, source, note,
                inverse=NO_CHANGE,
            )
            raise
        if result is prior:
            # re-stating the existing assertion: history records the
            # attempt, but there is nothing to undo
            inverse: object = NO_CHANGE
        else:
            inverse = self._retract_inverse(first, second)
        self._emit_assertion(
            "specify", first, second, kind, source, note, inverse=inverse
        )
        return result

    def _retract_inverse(
        self, first: ObjectRef, second: ObjectRef
    ) -> object:
        if self.events is None:
            return None
        return (
            self.events.scope,
            "retract",
            {"first": str(first), "second": str(second)},
        )

    def _emit_assertion(
        self,
        action: str,
        first: ObjectRef,
        second: ObjectRef,
        kind: AssertionKind,
        source: Source,
        note: str,
        *,
        inverse: object = None,
    ) -> None:
        if self.events is None:
            return
        self.events.emit(
            action,
            {
                "first": str(first),
                "second": str(second),
                "kind": kind.code,
                "source": source.name,
                "note": note,
            },
            inverse=inverse,
        )

    def _specify_checked(
        self,
        first: ObjectRef,
        second: ObjectRef,
        kind: AssertionKind,
        source: Source,
        note: str,
    ) -> Assertion:
        self._require(first)
        self._require(second)
        if first == second:
            raise AssertionSpecError(f"cannot assert {first} against itself")
        pair = ordered_pair(first, second)
        existing = self._specified.get(pair)
        new = Assertion(first, second, kind, source, note=note)
        if existing is not None:
            oriented = existing.oriented(first, second)
            if oriented.kind is kind:
                return existing  # re-stating the same assertion is a no-op
            raise AssertionSpecError(
                f"pair {first}/{second} already carries "
                f"assertion {oriented.kind.code}; retract or respecify it"
            )
        current = self.feasible(first, second)
        if kind.relation not in current:
            raise ConflictError(self._report_for(new, current))
        undo = _UndoLog()
        undo.remember(self, pair)
        self._set(self._feasible, first, second, frozenset({kind.relation}))
        failure = self._propagate(undo, [(first, second)])
        if failure is not None:
            # Restore the pre-trial network first so the Screen 9 report is
            # assembled from the committed state, as before.
            undo.rollback(self)
            raise ConflictError(
                self._report_for(new, frozenset(), failed_pair=failure)
            )
        self._specified[pair] = new
        self._log.append(new)
        self._derived.pop(pair, None)
        self._refresh_derived()
        return new

    def respecify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Replace the specified assertion on a pair (review-and-modify)."""
        self.retract(first, second)
        return self.specify(first, second, kind, source, note)

    def retract(self, first: ObjectRef | str, second: ObjectRef | str) -> None:
        """Withdraw the specified assertion on a pair and repair the network.

        Derived assertions are recomputed from the remaining specified
        assertions; anything that depended on the retracted one disappears.
        Only the affected neighborhood — pairs whose narrowing chain passes
        through the retracted edge — is recomputed (unless the network was
        built with ``incremental=False``, in which case everything is
        re-propagated from scratch).
        """
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        pair = ordered_pair(first, second)
        retracted = self._specified.get(pair)
        if retracted is None:
            raise AssertionSpecError(
                f"no specified assertion between {first} and {second}"
            )
        with span("phase3.closure.retract", counters=self.counters):
            del self._specified[pair]
            self._log = [a for a in self._log if a.pair != pair]
            if self.incremental:
                with span("phase3.closure.repair", counters=self.counters):
                    self._repair_after_retract(pair)
            else:
                self._rebuild()
        if self.events is not None:
            self.events.emit(
                "retract",
                {"first": str(first), "second": str(second)},
                inverse=(
                    self.events.scope,
                    "specify",
                    {
                        "first": str(retracted.first),
                        "second": str(retracted.second),
                        "kind": retracted.kind.code,
                        "source": retracted.source.name,
                        "note": retracted.note,
                    },
                ),
            )

    def _repair_after_retract(self, root: Pair) -> None:
        """Reset and re-derive only the pairs that depended on ``root``.

        The support index records, per pair, every triangle that narrowed
        it; reading it backwards gives the dependents of each pair.  The
        dependent closure of the retracted edge is a (conservative)
        superset of everything its constraint could have influenced — those
        pairs are reset to ALL and surviving specified assertions among
        them re-applied.

        Every pair *outside* the closure is already at the post-retract
        fixpoint: its value was derivable without the retracted edge (else
        it would be in the closure), and retraction only loosens, so it
        cannot tighten either.  Repair therefore only needs to re-revise
        the affected pairs against the rest of the network — a work-list
        of affected pairs, each intersected through every third object,
        re-enqueueing affected neighbours of whatever narrows — rather
        than re-running path consistency over the whole touched frontier.
        Removing a constraint cannot introduce a conflict, so this never
        fails.
        """
        self.counters.closure_incremental_retracts += 1
        dependents: dict[Pair, set[Pair]] = {}
        for narrowed, supports in self._support_index.items():
            for x, via, y in supports:
                dependents.setdefault(ordered_pair(x, via), set()).add(narrowed)
                dependents.setdefault(ordered_pair(via, y), set()).add(narrowed)
        affected = {root}
        stack = [root]
        while stack:
            pair = stack.pop()
            for dependent in dependents.get(pair, ()):
                if dependent not in affected:
                    affected.add(dependent)
                    stack.append(dependent)
        for pair in affected:
            self._feasible.pop(pair, None)
            self._supports.pop(pair, None)
            self._support_index.pop(pair, None)
            self._derived.pop(pair, None)
        self.counters.closure_pairs_recomputed += len(affected)
        for pair in affected:
            survivor = self._specified.get(pair)
            if survivor is not None:
                self._set(
                    self._feasible,
                    survivor.first,
                    survivor.second,
                    frozenset({survivor.relation}),
                )
        undo = _UndoLog()
        neighbours: dict[ObjectRef, set[Pair]] = {}
        for pair in affected:
            neighbours.setdefault(pair[0], set()).add(pair)
            neighbours.setdefault(pair[1], set()).add(pair)
        queue: deque[Pair] = deque(affected)
        queued = set(affected)
        while queue:
            pair = queue.popleft()
            queued.discard(pair)
            first, second = pair
            changed = False
            for via in self._objects:
                if via == first or via == second:
                    continue
                narrowed = self._narrow(
                    undo,
                    first,
                    second,
                    via,
                    self._get(self._feasible, first, via),
                    self._get(self._feasible, via, second),
                )
                if narrowed is False:  # pragma: no cover - only relaxes
                    undo.rollback(self)
                    self._rebuild()
                    return
                if narrowed:
                    changed = True
            if changed:
                for other in neighbours[first] | neighbours[second]:
                    if other != pair and other not in queued:
                        queue.append(other)
                        queued.add(other)
        self._refresh_derived()

    def _rebuild(self) -> None:
        """Full re-propagation from the specified log (the baseline path)."""
        self.counters.closure_full_rebuilds += 1
        remaining = list(self._log)
        self._feasible = {}
        self._supports = {}
        self._support_index = {}
        self._derived = {}
        self._specified = {}
        self._log = []
        # Suspend event emission: re-specifying the surviving log is
        # internal repair, not new DDA input, and must not be recorded twice.
        from contextlib import nullcontext

        suspended = self.events.muted() if self.events is not None else nullcontext()
        with suspended:
            with span("phase3.closure.rebuild", counters=self.counters):
                for assertion in remaining:
                    self.specify(
                        assertion.first,
                        assertion.second,
                        assertion.kind,
                        assertion.source,
                        assertion.note,
                    )

    # -- propagation -------------------------------------------------------------

    def _propagate(
        self,
        undo: _UndoLog,
        seeds: Iterable[tuple[ObjectRef, ObjectRef]],
    ) -> Pair | None:
        """Queue-based path consistency over the live tables.

        Narrows feasible sets along every triangle reachable from the seed
        pairs, mutating ``self._feasible``/``self._supports`` in place and
        recording prior values in ``undo``.  Returns the canonical pair
        that became empty on failure (callers roll back), or ``None``.
        """
        queue: deque[tuple[ObjectRef, ObjectRef]] = deque(seeds)
        while queue:
            i, j = queue.popleft()
            rel_ij = self._get(self._feasible, i, j)
            for k in self._objects:
                if k == i or k == j:
                    continue
                # Narrow (i, k) through j: R(i,k) ∩= R(i,j) ∘ R(j,k).
                rel_jk = self._get(self._feasible, j, k)
                narrowed = self._narrow(undo, i, k, j, rel_ij, rel_jk)
                if narrowed is False:
                    return ordered_pair(i, k)
                if narrowed:
                    queue.append((i, k))
                # Narrow (k, j) through i: R(k,j) ∩= R(k,i) ∘ R(i,j).
                rel_ki = self._get(self._feasible, k, i)
                narrowed = self._narrow(undo, k, j, i, rel_ki, rel_ij)
                if narrowed is False:
                    return ordered_pair(k, j)
                if narrowed:
                    queue.append((k, j))
        return None

    def _narrow(
        self,
        undo: _UndoLog,
        x: ObjectRef,
        y: ObjectRef,
        via: ObjectRef,
        rel_x_via: frozenset[Relation],
        rel_via_y: frozenset[Relation],
    ) -> bool | None:
        """Intersect R(x,y) with R(x,via) ∘ R(via,y); record the support.

        Returns ``None`` if the set did not change, ``True`` if it shrank
        but stayed non-empty, and ``False`` if it became empty (conflict).
        """
        if rel_x_via == ALL_RELATIONS and rel_via_y == ALL_RELATIONS:
            return None
        old = self._get(self._feasible, x, y)
        self.counters.propagation_steps += 1
        composed = compose_sets(rel_x_via, rel_via_y)
        new = old & composed
        if new == old:
            return None
        pair = ordered_pair(x, y)
        undo.remember(self, pair)
        self._set(self._feasible, x, y, new)
        self._supports[pair] = (x, via, y)
        self._support_index.setdefault(pair, set()).add((x, via, y))
        if not new:
            return False
        return True

    # -- assertions and derivations ---------------------------------------------

    def _refresh_derived(self) -> None:
        """Materialise derived assertions for newly singleton pairs."""
        for pair, relations in self._feasible.items():
            if len(relations) != 1 or pair in self._specified:
                continue
            if pair in self._derived:
                continue
            relation = next(iter(relations))
            first, second = pair
            kind = (
                AssertionKind.DISJOINT_INTEGRABLE
                if relation is Relation.DR
                else AssertionKind.from_relation(relation)
            )
            decided = relation not in (Relation.DR, Relation.PO)
            support = self._supports.get(pair)
            support_pairs: tuple[Pair, ...] = ()
            if support is not None:
                x, via, y = support
                support_pairs = (ordered_pair(x, via), ordered_pair(via, y))
            self._derived[pair] = Assertion(
                first,
                second,
                kind,
                Source.DERIVED,
                supports=support_pairs,
                integrability_decided=decided,
            )

    def assertion_for(
        self, first: ObjectRef | str, second: ObjectRef | str
    ) -> Assertion | None:
        """The specified or derived assertion on a pair, oriented, if any."""
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        pair = ordered_pair(first, second)
        assertion = self._specified.get(pair) or self._derived.get(pair)
        if assertion is None:
            return None
        return assertion.oriented(first, second)

    def specified_assertions(self) -> list[Assertion]:
        """All DDA/implicit assertions, in specification order."""
        return list(self._log)

    def derived_assertions(self) -> list[Assertion]:
        """All derived (singleton, unspecified) assertions."""
        return [self._derived[pair] for pair in sorted(self._derived)]

    def all_assertions(self) -> list[Assertion]:
        """Specified assertions followed by derived ones."""
        return self.specified_assertions() + self.derived_assertions()

    def is_undetermined(
        self, first: ObjectRef | str, second: ObjectRef | str
    ) -> bool:
        """Whether the pair still admits more than one relation."""
        return len(self.feasible(first, second)) > 1

    def feasible_table(self) -> dict[Pair, frozenset[Relation]]:
        """Every non-universal feasible set, keyed by canonical pair.

        Pairs absent from the table still admit all five relations.  The
        batch solver (:mod:`repro.solver`) produces the same shape, which
        is how the equivalence tests compare the two engines.
        """
        return {
            pair: relations
            for pair, relations in self._feasible.items()
            if relations != ALL_RELATIONS
        }

    # -- explanation ---------------------------------------------------------------

    def explain(
        self, first: ObjectRef | str, second: ObjectRef | str
    ) -> list[Assertion]:
        """The specified assertions underlying the pair's current state.

        For a specified pair this is the assertion itself; for a derived or
        narrowed pair it is the chain found by following support triples
        down to specified assertions — the lines Screen 9 lists under a
        derived conflict.
        """
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        chain: list[Assertion] = []
        seen_pairs: set[Pair] = set()

        def walk(x: ObjectRef, y: ObjectRef) -> None:
            pair = ordered_pair(x, y)
            if pair in seen_pairs:
                return
            seen_pairs.add(pair)
            specified = self._specified.get(pair)
            if specified is not None:
                chain.append(specified)
                return
            support = self._supports.get(pair)
            if support is None:
                return
            sx, via, sy = support
            walk(sx, via)
            walk(via, sy)

        walk(first, second)
        return chain

    def _report_for(
        self,
        new: Assertion,
        feasible: frozenset[Relation],
        failed_pair: Pair | None = None,
    ) -> ConflictReport:
        """Assemble the Screen 9 conflict report for a rejected assertion."""
        if failed_pair is None:
            subject_first, subject_second = new.first, new.second
        else:
            subject_first, subject_second = failed_pair
        current = self.assertion_for(subject_first, subject_second)
        chain = self.explain(subject_first, subject_second)
        return ConflictReport(
            new=new,
            subject_first=subject_first,
            subject_second=subject_second,
            current=current,
            feasible=feasible,
            facts=tuple(self._log),
            chain=chain,
        )
