"""Markdown report of one integration run.

A DDA (or a reviewer) wants a durable record of what an integration did:
the component schemas, the DDA's inputs, the derivations, the resulting
schema and its provenance.  :func:`integration_report` assembles that as
Markdown from the live objects — examples write it next to their output,
and it doubles as the per-run artifact a design team would archive in the
data dictionary.
"""

from __future__ import annotations

from repro.assertions.kinds import Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.diagram import ascii_diagram
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.result import IntegrationResult


def integration_report(
    registry: EquivalenceRegistry,
    network: AssertionNetwork,
    result: IntegrationResult,
    title: str = "Integration report",
) -> str:
    """Render a Markdown report of one integration run."""
    lines: list[str] = [f"# {title}", ""]
    lines.append("## Component schemas")
    lines.append("")
    for schema in registry.schemas():
        lines.append(f"### {schema.name}")
        if schema.description:
            lines.append(f"*{schema.description}*")
        lines.append("")
        lines.append("```")
        lines.append(ascii_diagram(schema).rstrip())
        lines.append("```")
        lines.append("")
    lines.append("## Attribute equivalence classes")
    lines.append("")
    nontrivial = registry.nontrivial_classes()
    if nontrivial:
        for members in nontrivial:
            lines.append(
                "- " + " ~ ".join(str(member) for member in members)
            )
    else:
        lines.append("(none declared)")
    lines.append("")
    lines.append("## Assertions")
    lines.append("")
    lines.append("| first | second | code | source |")
    lines.append("|---|---|---|---|")
    for assertion in network.all_assertions():
        lines.append(
            f"| {assertion.first} | {assertion.second} | "
            f"{assertion.kind.code} | {assertion.source} |"
        )
    lines.append("")
    lines.append("## Integrated schema")
    lines.append("")
    lines.append("```")
    lines.append(ascii_diagram(result.schema).rstrip())
    lines.append("```")
    lines.append("")
    lines.append("## Provenance")
    lines.append("")
    for node in result.nodes.values():
        if node.origin == "copy":
            continue
        lines.append(f"- {node}")
    for origin in result.derived_attributes():
        lines.append(f"- {origin}")
    lines.append("")
    lines.append("## Integration log")
    lines.append("")
    for entry in result.log:
        lines.append(f"- {entry}")
    lines.append("")
    return "\n".join(lines)
