"""Plain-text tables for the benchmark harness and EXPERIMENTS.md.

Every experiment prints its rows/series through :class:`Table` so the
output format is uniform and diffable against the recorded results.
"""

from __future__ import annotations

from typing import Sequence


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; floats are shown with 4 decimals."""
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4f}")
            else:
                rendered.append(str(cell))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row has {len(rendered)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(
                column.ljust(widths[index])
                for index, column in enumerate(self.columns)
            )
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.ljust(widths[index]) for index, cell in enumerate(row)
                )
            )
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
