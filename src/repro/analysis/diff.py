"""Structural diff of two ECR schemas.

Used by the experiment record to compare a produced integrated schema
against the expected one (Figure 5) and by users to inspect how two
integration runs differ.  The diff is a list of human-readable differences;
an empty list means the schemas are structurally identical (names, kinds,
attributes with domains/keys, category parents, relationship legs with
cardinalities) regardless of declaration order.
"""

from __future__ import annotations

from repro.ecr.objects import Category, ObjectClass
from repro.ecr.relationships import RelationshipSet
from repro.ecr.schema import Schema


def diff_schemas(expected: Schema, actual: Schema) -> list[str]:
    """All structural differences, phrased as ``expected ... actual ...``."""
    differences: list[str] = []
    expected_names = set(expected.structure_names())
    actual_names = set(actual.structure_names())
    for name in sorted(expected_names - actual_names):
        differences.append(f"missing structure {name!r}")
    for name in sorted(actual_names - expected_names):
        differences.append(f"unexpected structure {name!r}")
    for name in sorted(expected_names & actual_names):
        differences.extend(
            _diff_structure(name, expected.get(name), actual.get(name))
        )
    return differences


def _diff_structure(
    name: str, expected: ObjectClass, actual: ObjectClass
) -> list[str]:
    differences: list[str] = []
    if expected.kind is not actual.kind:
        differences.append(
            f"{name}: kind {expected.kind.value!r} != {actual.kind.value!r}"
        )
        return differences  # kind mismatch makes deeper diffs noisy
    differences.extend(_diff_attributes(name, expected, actual))
    if isinstance(expected, Category) and isinstance(actual, Category):
        if sorted(expected.parents) != sorted(actual.parents):
            differences.append(
                f"{name}: parents {sorted(expected.parents)} != "
                f"{sorted(actual.parents)}"
            )
    if isinstance(expected, RelationshipSet) and isinstance(
        actual, RelationshipSet
    ):
        differences.extend(_diff_legs(name, expected, actual))
    return differences


def _diff_attributes(
    name: str, expected: ObjectClass, actual: ObjectClass
) -> list[str]:
    differences: list[str] = []
    expected_attrs = {a.name: a for a in expected.attributes}
    actual_attrs = {a.name: a for a in actual.attributes}
    for missing in sorted(set(expected_attrs) - set(actual_attrs)):
        differences.append(f"{name}: missing attribute {missing!r}")
    for extra in sorted(set(actual_attrs) - set(expected_attrs)):
        differences.append(f"{name}: unexpected attribute {extra!r}")
    for shared in sorted(set(expected_attrs) & set(actual_attrs)):
        left, right = expected_attrs[shared], actual_attrs[shared]
        if left.domain.kind is not right.domain.kind:
            differences.append(
                f"{name}.{shared}: domain {left.domain} != {right.domain}"
            )
        if left.is_key != right.is_key:
            differences.append(
                f"{name}.{shared}: key {left.is_key} != {right.is_key}"
            )
    return differences


def _diff_legs(
    name: str, expected: RelationshipSet, actual: RelationshipSet
) -> list[str]:
    differences: list[str] = []
    expected_legs = {leg.label: leg for leg in expected.participations}
    actual_legs = {leg.label: leg for leg in actual.participations}
    for missing in sorted(set(expected_legs) - set(actual_legs)):
        differences.append(f"{name}: missing leg {missing!r}")
    for extra in sorted(set(actual_legs) - set(expected_legs)):
        differences.append(f"{name}: unexpected leg {extra!r}")
    for shared in sorted(set(expected_legs) & set(actual_legs)):
        left, right = expected_legs[shared], actual_legs[shared]
        if left.cardinality != right.cardinality:
            differences.append(
                f"{name}({shared}): cardinality {left.cardinality} != "
                f"{right.cardinality}"
            )
    return differences
