"""Metrics, instrumentation counters and report tables for experiments."""

from repro.obs.metrics import AnalysisCounters
from repro.analysis.metrics import (
    schema_size,
    SchemaSize,
    integration_effort,
    EffortReport,
)
from repro.analysis.diff import diff_schemas
from repro.analysis.report import Table
from repro.analysis.trace import integration_report

__all__ = [
    "AnalysisCounters",
    "schema_size",
    "SchemaSize",
    "integration_effort",
    "EffortReport",
    "diff_schemas",
    "Table",
    "integration_report",
]
