"""Size and effort metrics used across the experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.assertions.kinds import Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import Schema
from repro.integration.result import IntegrationResult


@dataclass(frozen=True)
class SchemaSize:
    """Structure counts of one schema."""

    entities: int
    categories: int
    relationships: int
    attributes: int

    @property
    def structures(self) -> int:
        return self.entities + self.categories + self.relationships

    def as_row(self) -> list[object]:
        return [self.entities, self.categories, self.relationships, self.attributes]


def schema_size(schema: Schema) -> SchemaSize:
    """Count a schema's structures and attributes."""
    return SchemaSize(
        len(schema.entity_sets()),
        len(schema.categories()),
        len(schema.relationship_sets()),
        schema.attribute_count(),
    )


@dataclass(frozen=True)
class EffortReport:
    """How much DDA input an integration needed and what it produced."""

    dda_assertions: int
    implicit_assertions: int
    derived_assertions: int
    equivalent_merges: int
    derived_parents: int
    derived_attributes: int

    @property
    def automation_ratio(self) -> float:
        """Assertions obtained for free per assertion the DDA typed."""
        if self.dda_assertions == 0:
            return 0.0
        return self.derived_assertions / self.dda_assertions


def integration_effort(
    network: AssertionNetwork, result: IntegrationResult
) -> EffortReport:
    """Summarise the DDA effort behind one integration result."""
    specified = network.specified_assertions()
    return EffortReport(
        dda_assertions=sum(
            1 for assertion in specified if assertion.source is Source.DDA
        ),
        implicit_assertions=sum(
            1 for assertion in specified if assertion.source is Source.IMPLICIT
        ),
        derived_assertions=len(network.derived_assertions()),
        equivalent_merges=len(result.equivalent_nodes()),
        derived_parents=len(result.derived_parent_nodes()),
        derived_attributes=len(result.derived_attributes()),
    )
