"""The event bus: one thread-safe, append-only log with typed subscriptions.

The bus is deliberately small: :meth:`EventBus.publish` appends an
:class:`~repro.kernel.events.Event` to the log and notifies matching
subscribers, all under one re-entrant lock.  Everything else the kernel
offers — transactions, snapshots, undo/redo — is built on three bus
facilities:

* **Replay mode** (:meth:`EventBus.replaying`): while active, publishes
  notify the non-live subscribers (so materialised views invalidate
  correctly as state is re-driven) but append nothing to the log.  This
  is how a checkout can re-run history without duplicating it.
* **Grouping** (:meth:`EventBus.grouped`): all events published inside
  share one transaction id and are contiguous in the log — the lock is
  held for the duration, which is the single-writer discipline that
  makes interleaved sessions serializable.
* **Inverses**: a live publish may record an inverse descriptor
  (``(scope, action, payload)`` or :data:`~repro.kernel.events.NO_CHANGE`)
  that the kernel applies to undo the event without a checkout.

Subscriptions filter by scope and action; ``live_only`` subscribers
(the audit tap) skip replayed events, so a checkout never re-records
history into an attached audit log.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.kernel.events import NO_CHANGE, Event


class Subscription:
    """One subscriber's handle: filters, delivery flags and cancellation."""

    __slots__ = ("callback", "scopes", "actions", "live_only", "_bus")

    def __init__(
        self,
        bus: "EventBus",
        callback: Callable[[Event], None],
        scopes: frozenset | None,
        actions: frozenset | None,
        live_only: bool,
    ) -> None:
        self._bus = bus
        self.callback = callback
        self.scopes = scopes
        self.actions = actions
        self.live_only = live_only

    def matches(self, event: Event) -> bool:
        if self.scopes is not None and event.scope not in self.scopes:
            return False
        if self.actions is not None and event.action not in self.actions:
            return False
        return True

    def cancel(self) -> None:
        """Stop receiving events (idempotent)."""
        self._bus._remove(self)


class EventBus:
    """Append-only event log + subscriber registry, behind one lock."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._subscriptions: list[Subscription] = []
        #: offset -> inverse descriptor for cheaply invertible events
        self._inverses: dict[int, object] = {}
        self._lock = threading.RLock()
        self._txn_counter = 0
        self._active_txn: int | None = None
        self._replay_depth = 0
        #: kernel hook: called before a live append (drops the redo tail)
        self.before_publish: Callable[[], None] | None = None
        #: kernel hook: called after a live append (advances the head)
        self.after_publish: Callable[[Event], None] | None = None

    # -- log access -----------------------------------------------------------

    @property
    def lock(self) -> threading.RLock:
        """The bus lock; the kernel's write operations share it."""
        return self._lock

    @property
    def offset(self) -> int:
        """Number of committed events (the offset of the log's end)."""
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, start: int = 0, end: int | None = None) -> list[Event]:
        """Committed events with offsets in ``(start, end]``."""
        with self._lock:
            stop = len(self._events) if end is None else end
            return self._events[start:stop]

    def event_at(self, offset: int) -> Event:
        """The committed event at a 1-based offset."""
        return self._events[offset - 1]

    @property
    def active_txn(self) -> int | None:
        """The transaction id open on this bus, if any."""
        return self._active_txn

    # -- subscriptions --------------------------------------------------------

    def subscribe(
        self,
        callback: Callable[[Event], None],
        *,
        scopes: Iterable[str] | None = None,
        actions: Iterable[str] | None = None,
        live_only: bool = False,
    ) -> Subscription:
        """Register a callback for matching events; returns its handle.

        ``scopes``/``actions`` restrict delivery (``None`` matches all).
        ``live_only`` subscribers are skipped while the bus replays
        history — use it for taps that must see each event exactly once
        (the audit log); leave it off for invalidation listeners, which
        must track state however it moves.
        """
        subscription = Subscription(
            self,
            callback,
            frozenset(scopes) if scopes is not None else None,
            frozenset(actions) if actions is not None else None,
            live_only,
        )
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def _remove(self, subscription: Subscription) -> None:
        with self._lock:
            self._subscriptions = [
                existing
                for existing in self._subscriptions
                if existing is not subscription
            ]

    # -- replay mode ----------------------------------------------------------

    @contextmanager
    def replaying(self) -> Iterator[None]:
        """While active, publishes notify views but append nothing.

        Acquires the bus lock for the duration, so no live writer can
        interleave with a replay in progress.
        """
        with self._lock:
            self._replay_depth += 1
            try:
                yield
            finally:
                self._replay_depth -= 1

    @property
    def replaying_now(self) -> bool:
        return self._replay_depth > 0

    # -- grouping -------------------------------------------------------------

    @contextmanager
    def grouped(self) -> Iterator[int | None]:
        """Stamp all events published inside with one transaction id.

        Holds the bus lock for the duration — the single-writer
        discipline that keeps a group's events contiguous in the log.
        Nested groups join the outermost transaction.
        """
        with self._lock:
            if self._replay_depth:
                yield None
                return
            outermost = self._active_txn is None
            if outermost:
                self._txn_counter += 1
                self._active_txn = self._txn_counter
            try:
                yield self._active_txn
            finally:
                if outermost:
                    self._active_txn = None

    # -- publishing -----------------------------------------------------------

    def publish(
        self,
        scope: str,
        action: str,
        payload: dict[str, Any] | None = None,
        *,
        objects: frozenset = frozenset(),
        schemas: frozenset = frozenset(),
        inverse: object = None,
    ) -> Event:
        """Commit one event (or, in replay mode, notify views only).

        ``inverse`` is the event's undo descriptor: a
        ``(scope, action, payload)`` tuple the kernel can re-apply,
        :data:`~repro.kernel.events.NO_CHANGE` for no-op events, or
        ``None`` when the mutation is not cheaply invertible (undo then
        falls back to a snapshot checkout).
        """
        if payload is None:
            payload = {}
        with self._lock:
            if self._replay_depth:
                event = Event(0, scope, action, payload, 0, objects, schemas)
                matching = [
                    subscription
                    for subscription in self._subscriptions
                    if not subscription.live_only
                    and subscription.matches(event)
                ]
            else:
                if self.before_publish is not None:
                    self.before_publish()
                txn = self._active_txn
                if txn is None:
                    self._txn_counter += 1
                    txn = self._txn_counter
                event = Event(
                    len(self._events) + 1,
                    scope,
                    action,
                    payload,
                    txn,
                    objects,
                    schemas,
                )
                self._events.append(event)
                if inverse is not None:
                    self._inverses[event.offset] = inverse
                if self.after_publish is not None:
                    self.after_publish(event)
                matching = [
                    subscription
                    for subscription in self._subscriptions
                    if subscription.matches(event)
                ]
            for subscription in matching:
                subscription.callback(event)
        return event

    def inverse_for(self, offset: int) -> object:
        """The recorded inverse of a committed event (None = checkout)."""
        return self._inverses.get(offset)

    # -- truncation and serialisation ----------------------------------------

    def truncate(self, offset: int) -> list[Event]:
        """Drop every event past ``offset``; returns the dropped tail."""
        with self._lock:
            dropped = self._events[offset:]
            del self._events[offset:]
            for event in dropped:
                self._inverses.pop(event.offset, None)
            return dropped

    def to_dicts(self) -> list[dict[str, Any]]:
        with self._lock:
            return [event.to_dict() for event in self._events]

    def load_dicts(self, entries: Iterable[dict[str, Any]]) -> None:
        """Replace the log with serialised events (no notifications).

        Inverses are not serialised, so undo over a restored log goes
        through snapshot checkouts until new live events are committed.
        """
        with self._lock:
            self._events = [Event.from_dict(entry) for entry in entries]
            self._inverses.clear()
            self._txn_counter = max(
                (event.txn for event in self._events), default=0
            )


class EventEmitter:
    """A component's handle on the bus: binds its scope name.

    Mirrors the old ``AuditSink`` shape so engines keep one cheap
    ``self.events is None`` check per mutation; :meth:`muted` suspends
    emission during internal repair (a network rebuild re-specifies its
    own log, which is not new DDA input).
    """

    __slots__ = ("bus", "scope", "_mute_depth")

    def __init__(self, bus: EventBus, scope: str) -> None:
        self.bus = bus
        self.scope = scope
        self._mute_depth = 0

    def emit(
        self,
        action: str,
        payload: dict[str, Any] | None = None,
        *,
        objects: frozenset = frozenset(),
        schemas: frozenset = frozenset(),
        inverse: object = None,
    ) -> Event | None:
        if self._mute_depth:
            return None
        return self.bus.publish(
            self.scope,
            action,
            payload,
            objects=objects,
            schemas=schemas,
            inverse=inverse,
        )

    @contextmanager
    def muted(self) -> Iterator[None]:
        """Suspend emission (internal repair, not new input)."""
        self._mute_depth += 1
        try:
            yield
        finally:
            self._mute_depth -= 1


__all__ = ["EventBus", "EventEmitter", "Subscription", "NO_CHANGE"]
