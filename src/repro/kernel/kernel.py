"""The kernel: transactions, time travel and persistence over one bus.

A :class:`Kernel` owns an :class:`~repro.kernel.bus.EventBus` plus the
book-keeping that turns a flat event log into a session's history:

* a **head** cursor — the offset the bound session's state corresponds
  to.  Live publishes advance it; undo/checkout move it back without
  touching the log, so redo can walk forward again.  A live publish
  while the head is behind the log end truncates the redo tail first
  (branching history is linear, like an editor's undo stack).
* **transactions** — :meth:`transaction` makes a multi-mutation block
  all-or-nothing: on an exception the events committed inside are
  rolled back (by inverse application when every event recorded one,
  else by state rebuild) and dropped from the log.
* **snapshots** — periodic :class:`~repro.kernel.snapshots.Snapshot`
  records of the session state, so :meth:`checkout` restores any offset
  by *nearest snapshot + tail replay* instead of full replay.
* **undo/redo** — group-wise time travel: :meth:`undo` reverts the most
  recent effectful transaction (skipping no-op groups such as recorded
  conflicts), :meth:`redo` re-applies forward.
* **persistence** — :meth:`export_state` / :meth:`restore` round-trip
  the log + snapshots through the data dictionary; restoring a session
  is ``Kernel.restore(...)`` followed by :meth:`checkout` of the saved
  head.

All write operations run under the bus lock, so two sessions sharing a
kernel interleave at transaction granularity — the single-writer
discipline the concurrency stress test exercises.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import KernelError, ReplayError
from repro.kernel.apply import apply_event, event_label
from repro.kernel.bus import EventBus
from repro.kernel.events import NO_CHANGE, Command, Event
from repro.kernel.snapshots import Snapshot, apply_state

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession
    from repro.integration.result import IntegrationResult
    from repro.kernel.wal import WriteAheadLog


class _CommandView:
    """Adapts a :class:`Command` to the event shape ``apply_event`` reads."""

    __slots__ = ("scope", "action", "payload")

    def __init__(self, command: Command) -> None:
        self.scope = command.scope
        self.action = command.action
        self.payload = command.args


class Kernel:
    """Event log + head cursor + snapshots for one analysis session."""

    def __init__(
        self, *, bus: EventBus | None = None, snapshot_every: int = 64
    ) -> None:
        self.bus = bus if bus is not None else EventBus()
        #: the bound session (:meth:`bind`); time travel rebuilds it in place
        self.session: "AnalysisSession | None" = None
        #: events per automatic snapshot (taken at group commit)
        self.snapshot_every = snapshot_every
        self._head = self.bus.offset
        self._baseline = self.bus.offset
        self._snapshots: list[Snapshot] = []
        self._events_since_snapshot = 0
        #: integration results by the offset of their ``session.integrate``
        #: event — lets the tool resync its displayed result after time travel
        self._results_by_offset: "dict[int, IntegrationResult]" = {}
        #: the attached write-ahead log (see :meth:`attach_wal`), plus the
        #: group-commit buffer: events published since the open group began
        self.wal: "WriteAheadLog | None" = None
        self._wal_events: list[Event] = []
        self._wal_truncate: int | None = None
        #: monotonic count of live publishes — lets a transaction tell
        #: whether anything actually reached the log before it failed
        self._live_publishes = 0
        self.bus.before_publish = self._before_live_publish
        self.bus.after_publish = self._after_live_publish

    # -- binding and cursors ----------------------------------------------------

    def bind(self, session: "AnalysisSession") -> None:
        """Attach the session whose state this kernel's log describes."""
        self.session = session

    @property
    def head(self) -> int:
        """The offset the bound session's state corresponds to."""
        return self._head

    @property
    def baseline(self) -> int:
        """The earliest offset time travel may reach (see :meth:`set_baseline`)."""
        return self._baseline

    def set_baseline(self) -> None:
        """Make the current state the floor for undo/checkout.

        Records a snapshot at the head so checkouts never need events
        older than it — used after restoring from a persisted dictionary
        whose log was not saved (legacy format), where pre-restore
        history simply does not exist.
        """
        with self.bus.lock:
            self._baseline = self._head
            self._snapshots.append(
                Snapshot(self._head, self._require_session().state_payload())
            )

    def _require_session(self) -> "AnalysisSession":
        if self.session is None:
            raise KernelError("kernel has no bound session")
        return self.session

    # -- live-publish hooks ------------------------------------------------------

    def _before_live_publish(self) -> None:
        if self._head < self.bus.offset:
            self.bus.truncate(self._head)
            self._snapshots = [
                snapshot
                for snapshot in self._snapshots
                if snapshot.offset <= self._head
            ]
            self._results_by_offset = {
                offset: result
                for offset, result in self._results_by_offset.items()
                if offset <= self._head
            }
            if self.wal is not None and self._wal_truncate is None:
                self._wal_truncate = self._head

    def _after_live_publish(self, event: Event) -> None:
        self._live_publishes += 1
        self._head = event.offset
        self._events_since_snapshot += 1
        if self.wal is not None:
            self._wal_events.append(event)
            if self.bus.active_txn is None:
                # a bare publish outside any group is its own transaction
                self._wal_commit()

    # -- write-ahead log ---------------------------------------------------------

    def attach_wal(self, wal: "WriteAheadLog") -> None:
        """Journal every committed transaction to ``wal`` before returning.

        A fresh WAL generation (no records yet) is opened with a
        ``base`` record anchoring it to the current log length and head.
        When the kernel already holds events, the full exported state
        rides along so the generation stays self-anchoring (replayable
        without the backing save); a restored legacy session at offset 0
        embeds its baseline snapshot for the same reason.
        """
        with self.bus.lock:
            self.wal = wal
            self._wal_events = []
            self._wal_truncate = None
            if not wal.open_report.records:
                base: dict[str, Any] = {
                    "t": "base",
                    "offset": self.bus.offset,
                    "head": self._head,
                    "baseline": self._baseline,
                }
                if self.bus.offset > 0:
                    base["state"] = self.export_state()
                else:
                    anchor = self._best_snapshot(self._baseline)
                    if anchor.state:
                        base["snapshot"] = anchor.to_dict()
                wal.append(base)

    def _wal_commit(self) -> None:
        """Flush the group buffer as one atomic WAL commit record."""
        if self.wal is None or self.bus.active_txn is not None:
            return
        if not self._wal_events and self._wal_truncate is None:
            return
        events = [event.to_dict() for event in self._wal_events]
        truncate = self._wal_truncate
        self._wal_events = []
        self._wal_truncate = None
        self.wal.commit(events, truncate=truncate)

    def _wal_discard(self) -> None:
        """Drop the group buffer (the transaction rolled back).

        The rolled-back *events* vanish without trace, but a staged
        redo-tail truncation must still be journaled:
        ``_before_live_publish`` already destroyed the tail in memory
        (events, snapshots and cached results past the head are gone,
        and rollback does not resurrect them), so without a durable
        record a crash-recovered kernel — or a replica replaying the
        shipped WAL — would resurrect a redo tail the live kernel no
        longer has, and their log offsets would diverge.
        """
        self._wal_events = []
        truncate = self._wal_truncate
        self._wal_truncate = None
        if truncate is not None and self.wal is not None:
            self.wal.commit([], truncate=truncate)

    def _wal_record_head(self) -> None:
        """Journal a cursor move so recovery lands where the user was."""
        if self.wal is not None and not self.bus.replaying_now:
            self.wal.record_head(self._head)

    # -- grouping and transactions ----------------------------------------------

    @contextmanager
    def group(self) -> Iterator[int | None]:
        """Commit the mutations inside as one undo/redo unit.

        Thin wrapper over :meth:`EventBus.grouped` that also takes the
        periodic snapshot at commit.  No rollback on exception — a
        recorded conflict legitimately stays in the log; use
        :meth:`transaction` for all-or-nothing semantics.
        """
        with self.bus.lock:
            try:
                with self.bus.grouped() as txn:
                    yield txn
            finally:
                # no rollback on exception — whatever committed stays in
                # the log, so it must reach the WAL too
                self._wal_commit()
            if not self.bus.replaying_now:
                self._maybe_snapshot()

    @contextmanager
    def transaction(self) -> Iterator[int | None]:
        """All-or-nothing multi-mutation block.

        On an exception, every event committed inside is rolled back —
        by applying recorded inverses in reverse when all events have
        one, else by rebuilding the session from the entry state — and
        dropped from the log, then the exception propagates.  Nested
        transactions join the outermost one (a rollback is total).
        """
        with self.bus.lock:
            if self.bus.replaying_now or self.bus.active_txn is not None:
                with self.bus.grouped() as txn:
                    yield txn
                return
            start = self._head
            entry_state = self._require_session().state_payload()
            entry_publishes = self._live_publishes
            try:
                with self.bus.grouped() as txn:
                    yield txn
            except BaseException:
                self._wal_discard()
                self._rollback(
                    start,
                    entry_state,
                    published=self._live_publishes > entry_publishes,
                )
                raise
            else:
                self._wal_commit()
                self._maybe_snapshot()

    def _rollback(
        self,
        start: int,
        entry_state: dict[str, Any],
        *,
        published: bool = True,
    ) -> None:
        if not published:
            # nothing reached the log: events past ``start`` are a
            # pre-existing redo tail, not ours to drop or invert — only
            # repair the session if the failed operation mutated state
            # before raising
            if self._require_session().state_payload() != entry_state:
                self._rebuild_state(entry_state)
                self._resnapshot_audit()
            self._head = start
            return
        committed = self.bus.events(start)
        inverses = [
            self.bus.inverse_for(event.offset) for event in committed
        ]
        self.bus.truncate(start)
        self._results_by_offset = {
            offset: result
            for offset, result in self._results_by_offset.items()
            if offset <= start
        }
        if all(inverse is not None for inverse in inverses):
            with self.bus.replaying():
                for inverse in reversed(inverses):
                    if inverse is NO_CHANGE:
                        continue
                    self._apply_inverse(inverse)
        else:
            self._rebuild_state(entry_state)
        self._head = start
        self._resnapshot_audit()

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, command: Command) -> "IntegrationResult | None":
        """Run a :class:`Command` as the matching live session mutation.

        The mutation emits its event(s) on success, exactly as calling
        the session method directly would.  Returns the integration
        result for ``session.integrate`` commands, else ``None``.
        """
        def diverge(event: Any, message: str) -> None:
            raise KernelError(f"command {command}: {message}")

        results: "list[IntegrationResult]" = []
        with self.group():
            apply_event(
                self._require_session(),
                _CommandView(command),
                diverge,
                results=results,
            )
        return results[-1] if results else None

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Record the session's current state at the head offset."""
        with self.bus.lock:
            record = Snapshot(
                self._head, self._require_session().state_payload()
            )
            self._snapshots.append(record)
            self._events_since_snapshot = 0
            if self.wal is not None and not self.bus.replaying_now:
                self.wal.rotate()
            return record

    def snapshots(self) -> list[Snapshot]:
        return list(self._snapshots)

    def _maybe_snapshot(self) -> None:
        if self._events_since_snapshot >= self.snapshot_every:
            self.snapshot()

    def _best_snapshot(self, offset: int) -> Snapshot:
        """The latest usable snapshot at or before ``offset``."""
        best: Snapshot | None = None
        for snapshot in self._snapshots:
            if snapshot.offset <= offset and (
                best is None or snapshot.offset >= best.offset
            ):
                best = snapshot
        if best is None:
            if self._baseline > 0:
                raise KernelError(
                    f"no snapshot covers offset {offset} "
                    f"(baseline {self._baseline})"
                )
            best = Snapshot(0, {})
        return best

    # -- time travel -------------------------------------------------------------

    def checkout(self, offset: int) -> None:
        """Restore the session to its state after ``offset`` events.

        Rebuilds from the nearest snapshot at or before ``offset`` and
        replays the tail.  The log is untouched — events past ``offset``
        remain available to :meth:`redo` until a new live mutation
        truncates them.
        """
        with self.bus.lock:
            if offset < self._baseline or offset > self.bus.offset:
                raise KernelError(
                    f"offset {offset} outside "
                    f"[{self._baseline}, {self.bus.offset}]"
                )
            snapshot = self._best_snapshot(offset)
            self._rebuild_state(snapshot.state)
            for event in self.bus.events(snapshot.offset, offset):
                self._replay_one(event)
            self._head = offset
            self._resnapshot_audit()
            self._wal_record_head()

    def undo(self) -> bool:
        """Revert the most recent effectful group; False if none remains.

        Groups whose every event recorded :data:`NO_CHANGE` (conflicts,
        rejections, re-statements) are skipped — they never changed
        state, so undoing them would be a surprise no-op for the user.
        """
        with self.bus.lock:
            target = self._head
            while target > self._baseline:
                group = self._group_ending_at(target)
                start = group[0].offset - 1
                inverses = [
                    self.bus.inverse_for(event.offset) for event in group
                ]
                if all(inverse is NO_CHANGE for inverse in inverses):
                    target = start
                    continue
                if all(inverse is not None for inverse in inverses):
                    with self.bus.replaying():
                        for inverse in reversed(inverses):
                            if inverse is NO_CHANGE:
                                continue
                            self._apply_inverse(inverse)
                    self._head = start
                    self._resnapshot_audit()
                    self._wal_record_head()
                else:
                    self.checkout(start)  # records the head move itself
                return True
            return False

    def redo(self) -> bool:
        """Re-apply the next effectful undone group; False if none remains."""
        with self.bus.lock:
            applied_effectful = False
            while self._head < self.bus.offset and not applied_effectful:
                group = self._group_starting_after(self._head)
                applied_effectful = any(
                    self.bus.inverse_for(event.offset) is not NO_CHANGE
                    for event in group
                )
                with self.bus.replaying():
                    for event in group:
                        self._replay_one(event)
                self._head = group[-1].offset
            if applied_effectful:
                self._resnapshot_audit()
                self._wal_record_head()
            return applied_effectful

    def can_undo(self) -> bool:
        with self.bus.lock:
            target = self._head
            while target > self._baseline:
                group = self._group_ending_at(target)
                if any(
                    self.bus.inverse_for(event.offset) is not NO_CHANGE
                    for event in group
                ):
                    return True
                target = group[0].offset - 1
            return False

    def can_redo(self) -> bool:
        with self.bus.lock:
            offset = self._head
            while offset < self.bus.offset:
                group = self._group_starting_after(offset)
                if any(
                    self.bus.inverse_for(event.offset) is not NO_CHANGE
                    for event in group
                ):
                    return True
                offset = group[-1].offset
            return False

    def _group_ending_at(self, offset: int) -> list[Event]:
        """The contiguous run of same-transaction events ending at ``offset``."""
        event = self.bus.event_at(offset)
        start = offset
        while (
            start - 1 > self._baseline
            and self.bus.event_at(start - 1).txn == event.txn
        ):
            start -= 1
        return self.bus.events(start - 1, offset)

    def _group_starting_after(self, offset: int) -> list[Event]:
        """The contiguous run of same-transaction events starting at ``offset + 1``."""
        event = self.bus.event_at(offset + 1)
        end = offset + 1
        while (
            end + 1 <= self.bus.offset
            and self.bus.event_at(end + 1).txn == event.txn
        ):
            end += 1
        return self.bus.events(offset, end)

    # -- replay helpers ----------------------------------------------------------

    def _strict_diverge(self, event: Any, message: str) -> None:
        raise ReplayError(f"{event_label(event)}: {message}")

    def _replay_one(self, event: Event) -> None:
        session = self._require_session()
        results: "list[IntegrationResult]" = []
        with self.bus.replaying():
            apply_event(session, event, self._strict_diverge, results=results)
        if results:
            self._results_by_offset[event.offset] = results[-1]

    def _apply_inverse(self, inverse: object) -> None:
        scope, action, payload = inverse  # type: ignore[misc]
        view = _CommandView(Command(scope, action, dict(payload)))
        apply_event(self._require_session(), view, self._strict_diverge)

    def _rebuild_state(self, state: dict[str, Any]) -> None:
        session = self._require_session()
        with self.bus.replaying():
            session.reset_to([])
            if state:
                apply_state(
                    session,
                    state,
                    on_error=lambda message: self._strict_diverge(
                        _CommandView(Command("session", "snapshot", {})),
                        message,
                    ),
                )

    def _resnapshot_audit(self) -> None:
        """Re-anchor an attached audit log after time travel.

        The audit tap is live-only, so replayed events never reach it;
        appending a fresh ``session.snapshot`` keeps the log an accurate,
        replayable statement of where the session now stands.
        """
        session = self.session
        if session is not None:
            session.resnapshot_audit()

    def result_at_head(self) -> "IntegrationResult | None":
        """The result of the latest integrate event at or before the head.

        An ``evolution.apply_edit`` event with a patched result recorded
        against it (the tool's localized re-integration) shadows the
        original integrate result; one without falls through to the
        integrate event it patched.
        """
        with self.bus.lock:
            for event in reversed(self.bus.events(self._baseline, self._head)):
                if event.scope == "session" and event.action == "integrate":
                    return self._results_by_offset.get(event.offset)
                if event.scope == "evolution" and event.action == "apply_edit":
                    patched = self._results_by_offset.get(event.offset)
                    if patched is not None:
                        return patched
            return None

    def record_result(self, offset: int, result: "IntegrationResult") -> None:
        """Remember the result a live integrate event produced."""
        self._results_by_offset[offset] = result

    # -- persistence -------------------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """The log, snapshots and cursors in JSON-friendly form."""
        with self.bus.lock:
            return {
                "head": self._head,
                "baseline": self._baseline,
                "events": self.bus.to_dicts(),
                "snapshots": [
                    snapshot.to_dict() for snapshot in self._snapshots
                ],
            }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "Kernel":
        """Rebuild a kernel from :meth:`export_state` output.

        The caller binds a fresh session and then checks out the saved
        head: ``kernel.checkout(state["head"])`` — restore *is*
        replay-from-snapshot.
        """
        kernel = cls()
        kernel.bus.load_dicts(state.get("events", ()))
        kernel._snapshots = [
            Snapshot.from_dict(entry) for entry in state.get("snapshots", ())
        ]
        kernel._baseline = int(state.get("baseline", 0))
        kernel._head = 0
        return kernel


__all__ = ["Kernel"]
