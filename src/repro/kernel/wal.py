"""The write-ahead event log: crash-safe durability for kernel history.

The kernel's event log is the source of truth for a DDA sitting, but
until this module it only touched disk at explicit saves.  A
:class:`WriteAheadLog` makes every *committed* transaction durable the
moment it commits: the kernel hands it the group's events and the WAL
appends one checksummed record — before the mutation's result is
considered durable — so a killed process loses at most the transaction
that was in flight.

Format (see ``docs/DURABILITY.md``):

* A WAL is a **directory** of segment files ``wal-<10 digits>.seg``,
  replayed in name order.  Segments rotate at snapshot boundaries
  (:meth:`rotate`) and the whole generation resets at a checkpoint —
  a successful dictionary save (:meth:`reset`).
* Each record is **length-prefixed and CRC-checksummed**: an 8-byte
  header ``struct.pack("<II", length, crc32(payload))`` followed by the
  payload — one JSON object encoded as a single UTF-8 line (the JSONL
  body, recoverable with ``strings``/``jq`` even without the headers).
* Record kinds: ``commit`` (one per transaction — its events become
  durable atomically, with an optional ``truncate`` that drops a redo
  tail first), ``head`` (undo/redo/checkout moved the cursor),
  ``base`` (first record of a generation: the log length and head the
  backing save already holds).

Damage tolerance on open:

* a **torn tail** — a final record whose header, payload or checksum is
  incomplete — is truncated away (its transaction never finished
  committing, so dropping it *is* the consistent reading);
* a **corrupt segment** — a checksum or framing failure anywhere before
  the tail — is quarantined (renamed ``*.corrupt``) along with every
  later segment, preserving the longest trustworthy prefix rather than
  failing the session.

Both outcomes are reported in the :class:`WalOpenReport`, surfaced by
recovery in the tool's status line and the obs metrics.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import faults
from repro.errors import WalError

_HEADER = struct.Struct("<II")

#: Segment filenames: ``wal-0000000001.seg``, sortable lexicographically.
_SEGMENT_GLOB = "wal-*.seg"


def _segment_name(index: int) -> str:
    return f"wal-{index:010d}.seg"


def scan_records(data: bytes) -> tuple[list[dict[str, Any]], int, bool]:
    """Decode CRC-framed records from ``data``.

    Returns ``(records, bytes of intact prefix, damaged?)``.  This is
    the one framing decoder in the system: segment scans on open use it
    via :meth:`WriteAheadLog._scan_segment`, and the replication layer
    (:mod:`repro.replication`) re-verifies shipped segments and decodes
    wire frames through it — so a torn tail, a flipped bit or malformed
    JSON mean the same thing everywhere: trust the prefix, stop there.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return records, offset, True  # torn header
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            return records, offset, True  # torn payload
        if zlib.crc32(payload) != checksum:
            return records, offset, True  # flipped bits
        try:
            record = json.loads(payload)
        except ValueError:
            return records, offset, True
        if not isinstance(record, dict):
            return records, offset, True
        records.append(record)
        offset = start + length
    return records, offset, False


def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record exactly as :meth:`WriteAheadLog.append` does."""
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalOpenReport:
    """What scanning an existing WAL directory found and repaired."""

    records: list[dict[str, Any]] = field(default_factory=list)
    segments_scanned: int = 0
    bytes_truncated: int = 0
    segments_quarantined: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.bytes_truncated and not self.segments_quarantined


class WriteAheadLog:
    """Checksummed, segmented, append-only journal of kernel commits."""

    def __init__(self, directory: str | Path, *, sync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: fsync after every commit record (the durability guarantee);
        #: benchmarks may turn it off to measure the framing cost alone
        self.sync = sync
        self._file: "faults._TrackedFile | None" = None
        self._segment_index = 0
        self.open_report = self._scan()
        self._open_active_segment()

    # -- scanning and repair -------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(self.directory.glob(_SEGMENT_GLOB))

    def _scan(self) -> WalOpenReport:
        """Read every record; truncate a torn tail, quarantine corruption."""
        report = WalOpenReport()
        segments = self._segments()
        report.segments_scanned = len(segments)
        for position, segment in enumerate(segments):
            final_segment = position == len(segments) - 1
            records, good_bytes, damage = self._scan_segment(segment)
            if damage and not final_segment:
                # mid-generation damage: nothing after it can be trusted
                # to align with the log — quarantine this segment and
                # every later one, keep the prefix scanned so far
                for casualty in segments[position:]:
                    report.segments_quarantined.append(casualty.name)
                    casualty.rename(
                        casualty.with_suffix(".corrupt")
                    )
                break
            report.records.extend(records)
            if damage and final_segment:
                size = segment.stat().st_size
                report.bytes_truncated += size - good_bytes
                with open(segment, "rb+") as handle:
                    handle.truncate(good_bytes)
        return report

    @staticmethod
    def _scan_segment(
        segment: Path,
    ) -> tuple[list[dict[str, Any]], int, bool]:
        """(records, bytes of intact prefix, damaged?) for one segment."""
        return scan_records(segment.read_bytes())

    def _open_active_segment(self) -> None:
        segments = self._segments()
        if segments:
            last = segments[-1]
            self._segment_index = int(last.stem.split("-")[1])
            self._file = faults.open_tracked(last, "ab")
        else:
            self._segment_index = 1
            self._file = faults.open_tracked(
                self.directory / _segment_name(1), "ab"
            )
            faults.fsync_dir(self.directory)

    # -- appending -----------------------------------------------------------

    def append(self, record: dict[str, Any], *, sync: bool | None = None) -> None:
        """Frame, checksum and append one record; fsync unless told not to."""
        if self._file is None:
            raise WalError("write-ahead log is closed")
        self._file.write(encode_record(record), point="wal.append.write")
        faults.crashpoint("wal.append.after_write")
        if sync if sync is not None else self.sync:
            self._file.fsync()
        faults.crashpoint("wal.append.after_fsync")

    def commit(
        self,
        events: list[dict[str, Any]],
        *,
        truncate: int | None = None,
    ) -> None:
        """Make one transaction's events durable, atomically.

        The whole group travels in a single record — a single checksum
        unit — so recovery either sees the full transaction or none of
        it.  ``truncate`` records that the commit first dropped the redo
        tail past that offset (linear-history branching).
        """
        record: dict[str, Any] = {"t": "commit", "events": events}
        if truncate is not None:
            record["truncate"] = truncate
        self.append(record)

    def record_head(self, offset: int) -> None:
        """Record an undo/redo/checkout cursor move (no new events)."""
        self.append({"t": "head", "offset": offset})

    def record_base(
        self,
        offset: int,
        head: int,
        *,
        state: dict[str, Any] | None = None,
    ) -> None:
        """Open a generation: the backing save already holds this much.

        ``state`` (an ``export_state``-shaped dict) makes the generation
        **self-anchoring**: recovery can replay it without the backing
        save — the insurance that lets a corrupt checkpoint fall back to
        the WAL alone.
        """
        record: dict[str, Any] = {"t": "base", "offset": offset, "head": head}
        if state is not None:
            record["state"] = state
        self.append(record)

    # -- lifecycle -----------------------------------------------------------

    def rotate(self) -> None:
        """Close the active segment and start the next (snapshot boundary)."""
        if self._file is None:
            raise WalError("write-ahead log is closed")
        faults.crashpoint("wal.rotate.before_create")
        self._file.fsync()
        self._file.close()
        self._segment_index += 1
        self._file = faults.open_tracked(
            self.directory / _segment_name(self._segment_index), "ab"
        )
        faults.fsync_dir(self.directory)
        faults.crashpoint("wal.rotate.after_create")

    def reset(
        self,
        base_offset: int,
        head: int,
        *,
        state: dict[str, Any] | None = None,
    ) -> None:
        """Checkpoint: drop every segment, start a fresh generation.

        Called right after a successful dictionary save — the save now
        holds everything the old generation recorded.  The new
        generation opens with a ``base`` record naming the save's log
        length and head, which recovery uses to anchor replay; pass the
        saved kernel ``state`` to keep the generation self-anchoring
        (recoverable even if the save itself is later damaged).
        """
        if self._file is not None:
            self._file.close()
        for segment in self._segments():
            segment.unlink()
        for stale in self.directory.glob("wal-*.corrupt"):
            stale.unlink()
        self._segment_index = 1
        self._file = faults.open_tracked(
            self.directory / _segment_name(1), "ab"
        )
        faults.fsync_dir(self.directory)
        self.record_base(base_offset, head, state=state)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["WalOpenReport", "WriteAheadLog", "encode_record", "scan_records"]
