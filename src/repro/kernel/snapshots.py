"""Snapshots: cheap absolute statements of session state at a log offset.

A :class:`Snapshot` pairs an event-log offset with the session's
replayable state payload at that offset (the same ``schemas`` /
``equivalences`` / ``assertions`` shape the audit log's
``session.snapshot`` events carry).  Restoring any offset is then
*nearest snapshot + replay of the tail* — the kernel's ``checkout``,
persistence-restore and undo fallback all run through
:func:`apply_state`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession


@dataclass(frozen=True)
class Snapshot:
    """Session state at one event-log offset, in replayable form."""

    offset: int
    state: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {"offset": self.offset, "state": self.state}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Snapshot":
        return cls(offset=int(data["offset"]), state=dict(data["state"]))


def apply_state(
    session: "AnalysisSession",
    state: dict[str, Any],
    on_error: Callable[[str], None] | None = None,
) -> None:
    """Re-drive a session into a snapshotted state.

    The session is assumed empty (callers reset it first).  Equivalence
    *partitions* are reconstructed exactly; class numbers may be
    renumbered, which nothing downstream of Screen 7's display depends
    on.  ``on_error`` receives a message per assertion that no longer
    applies (strict callers raise from it).
    """
    from repro.assertions.kinds import Source
    from repro.ecr.json_io import schema_from_dict
    from repro.errors import AssertionSpecError, ConflictError

    for schema_data in state.get("schemas", ()):
        session.add_schema(schema_from_dict(schema_data))
    for members in state.get("equivalences", ()):
        anchor = members[0]
        for other in members[1:]:
            session.registry.declare_equivalent(anchor, other)
    for entry in state.get("assertions", ()):
        try:
            session.specify(
                entry["first"],
                entry["second"],
                int(entry["kind"]),
                relationships=bool(entry.get("relationships", False)),
                source=Source[entry.get("source", "DDA")],
                note=entry.get("note", ""),
            )
        except (ConflictError, AssertionSpecError) as exc:
            if on_error is not None:
                on_error(
                    f"snapshot assertion raised {type(exc).__name__}"
                )


__all__ = ["Snapshot", "apply_state"]
