"""`repro.kernel` — the event-sourced core every layer mutates through.

One :class:`EventBus` carries every mutation in the system as an
:class:`Event`; the :class:`Kernel` adds transactions, snapshots,
undo/redo and persistence on top.  Caches and matrices subscribe to the
bus, the audit log taps it, the data dictionary serialises it — the
event log is the source of truth (see ``docs/ARCHITECTURE.md``).
"""

from repro.kernel.apply import (
    apply_event,
    canonical_schema_json,
    event_label,
    schema_fingerprint,
)
from repro.kernel.bus import EventBus, EventEmitter, Subscription
from repro.kernel.events import NO_CHANGE, Command, Event
from repro.kernel.kernel import Kernel
from repro.kernel.recovery import (
    RecoveryManager,
    RecoveryReport,
    merge_wal_records,
)
from repro.kernel.snapshots import Snapshot, apply_state
from repro.kernel.wal import (
    WalOpenReport,
    WriteAheadLog,
    encode_record,
    scan_records,
)

__all__ = [
    "NO_CHANGE",
    "Command",
    "Event",
    "EventBus",
    "EventEmitter",
    "Kernel",
    "RecoveryManager",
    "RecoveryReport",
    "Snapshot",
    "Subscription",
    "WalOpenReport",
    "WriteAheadLog",
    "apply_event",
    "apply_state",
    "canonical_schema_json",
    "encode_record",
    "event_label",
    "merge_wal_records",
    "scan_records",
    "schema_fingerprint",
]
