"""Applying events to a session: the one re-drive engine.

:func:`apply_event` takes a committed event — a kernel
:class:`~repro.kernel.events.Event` or a recorded
:class:`~repro.obs.audit.AuditEvent`, duck-typed on
``scope``/``action``/``payload`` — and re-runs the mutation it records
against an :class:`~repro.equivalence.session.AnalysisSession`.  Audit
replay (:func:`repro.obs.replay.replay`), kernel ``checkout``, redo and
inverse application during undo/rollback are all loops over this one
function, so "replay" means the same thing everywhere.

The schema-fingerprint utilities live here too (they were born in
``repro.obs.replay``, which still re-exports them): integration events
carry a SHA-256 fingerprint of the produced schema, and replay verifies
bitwise-identical reproduction through them.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable

from repro.assertions.kinds import Source
from repro.ecr.json_io import schema_from_dict, schema_to_dict
from repro.ecr.schema import Schema
from repro.errors import AssertionSpecError, ConflictError, ReplayError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession
    from repro.integration.result import IntegrationResult


def canonical_schema_json(schema: Schema) -> str:
    """The canonical (sorted-key, compact) JSON form of a schema."""
    return json.dumps(
        schema_to_dict(schema), sort_keys=True, separators=(",", ":")
    )


def schema_fingerprint(schema: Schema) -> str:
    """SHA-256 hex digest of :func:`canonical_schema_json`.

    Two schemas share a fingerprint iff their canonical JSON is bitwise
    identical — the equality the replay round-trip asserts.
    """
    return hashlib.sha256(
        canonical_schema_json(schema).encode("utf-8")
    ).hexdigest()


def event_label(event: Any) -> str:
    """A human-readable label for a kernel or audit event."""
    position = getattr(event, "seq", None)
    if position is None:
        position = getattr(event, "offset", "?")
    return f"event {position} ({event.scope}.{event.action})"


def apply_event(
    session: "AnalysisSession",
    event: Any,
    diverge: Callable[[Any, str], None],
    *,
    results: "list[IntegrationResult] | None" = None,
    fingerprints: list[tuple[str, str]] | None = None,
) -> None:
    """Re-run one recorded mutation against ``session``.

    ``diverge(event, message)`` is called whenever the session no longer
    behaves as the event records (strict callers raise
    :class:`~repro.errors.ReplayError` from it; lenient callers collect).
    ``results``/``fingerprints`` accumulate integration outcomes when the
    caller wants them (audit replay does; undo/redo passes ``results``).
    """
    if event.scope == "registry":
        _apply_registry_event(session, event, diverge)
    elif event.scope in ("object_network", "relationship_network"):
        _apply_network_event(session, event, diverge)
    elif event.scope == "session":
        if event.action == "integrate":
            _apply_integrate_event(
                session, event, diverge, results=results,
                fingerprints=fingerprints,
            )
        elif event.action == "snapshot":
            _apply_snapshot_event(session, event, diverge)
        elif event.action == "delete_schema":
            _apply_delete_schema_event(session, event, diverge)
        else:
            diverge(event, f"unknown session action {event.action!r}")
    elif event.scope == "evolution":
        _apply_evolution_event(session, event, diverge)
    elif event.scope == "federation":
        # federated queries are informational: they read the analysis
        # state (mappings, assertions) but never mutate it, so replay
        # has nothing to apply and nothing to verify
        pass
    else:
        diverge(event, f"unknown scope {event.scope!r}")


# -- per-scope appliers ---------------------------------------------------------


def _apply_registry_event(session, event, diverge) -> None:
    payload = event.payload
    try:
        if event.action == "register_schema":
            session.add_schema(schema_from_dict(payload["schema"]))
        elif event.action == "declare_equivalent":
            session.registry.declare_equivalent(
                payload["first"], payload["second"]
            )
        elif event.action == "remove_from_class":
            session.registry.remove_from_class(payload["ref"])
        elif event.action == "refresh_schema":
            session.refresh_schema(
                payload["schema"]["name"],
                replacement=schema_from_dict(payload["schema"]),
            )
        elif event.action == "restore_classes":
            session.registry.restore_classes(payload["groups"])
        else:
            diverge(event, f"unknown registry action {event.action!r}")
    except ReplayError:
        raise
    except Exception as exc:  # pragma: no cover - divergence reporting
        diverge(event, f"replay raised {type(exc).__name__}: {exc}")


def _relationships(event) -> bool:
    return event.scope == "relationship_network"


def _apply_network_event(session, event, diverge) -> None:
    payload = event.payload
    relationships = _relationships(event)
    if event.action == "specify":
        try:
            session.specify(
                payload["first"],
                payload["second"],
                int(payload["kind"]),
                relationships=relationships,
                source=Source[payload.get("source", "DDA")],
                note=payload.get("note", ""),
            )
        except (ConflictError, AssertionSpecError) as exc:
            diverge(event, f"recorded success now raises {type(exc).__name__}")
    elif event.action == "retract":
        try:
            session.retract(
                payload["first"], payload["second"], relationships=relationships
            )
        except AssertionSpecError as exc:
            diverge(event, f"recorded retract now raises: {exc}")
    elif event.action in ("conflict", "rejected"):
        expected = (
            ConflictError if event.action == "conflict" else AssertionSpecError
        )
        try:
            session.specify(
                payload["first"],
                payload["second"],
                int(payload["kind"]),
                relationships=relationships,
                source=Source[payload.get("source", "DDA")],
                note=payload.get("note", ""),
            )
        except expected:
            return  # the recorded failure reproduced — the network rolled back
        except AssertionSpecError as exc:
            diverge(
                event,
                f"recorded {event.action} reproduced as {type(exc).__name__}",
            )
            return
        diverge(event, f"recorded {event.action} no longer raises")
    else:
        diverge(event, f"unknown network action {event.action!r}")


def _apply_evolution_event(session, event, diverge) -> None:
    """Re-drive one schema edit (or reproduce its recorded rejection).

    ``apply_edit`` runs its repairs under the bus's replaying guard, so
    re-driving it here never double-appends; the recorded component-schema
    fingerprint (when present — inverse commands carry none) verifies the
    edit landed on the same schema bytes as the original run.
    """
    from repro.errors import ConsistencyFailure
    from repro.evolution.edits import edit_from_payload

    payload = event.payload
    if event.action == "edit_rejected":
        try:
            session.apply_edit(
                payload["schema"], edit_from_payload(payload["edit"])
            )
        except ConsistencyFailure:
            return  # the recorded rejection reproduced
        diverge(event, "recorded edit_rejected no longer raises")
        return
    if event.action != "apply_edit":
        diverge(event, f"unknown evolution action {event.action!r}")
        return
    try:
        session.apply_edit(
            payload["schema"], edit_from_payload(payload["edit"])
        )
    except ReplayError:
        raise
    except Exception as exc:
        diverge(event, f"replay raised {type(exc).__name__}: {exc}")
        return
    recorded = payload.get("fingerprint")
    if recorded is not None:
        replayed = schema_fingerprint(
            session.registry.schema(payload["schema"])
        )
        if recorded != replayed:
            diverge(
                event,
                f"evolved schema diverged (recorded {recorded[:12]}…, "
                f"replayed {replayed[:12]}…)",
            )


def _apply_integrate_event(
    session, event, diverge, *, results, fingerprints
) -> None:
    from repro.integration.options import IntegrationOptions

    payload = event.payload
    options = IntegrationOptions(**payload.get("options", {}))
    result = session.integrate(
        payload["first"],
        payload["second"],
        result_name=payload.get("result_name", "integrated"),
        options=options,
    )
    if results is not None:
        results.append(result)
    replayed = schema_fingerprint(result.schema)
    recorded = payload.get("fingerprint", replayed)
    if fingerprints is not None:
        fingerprints.append((recorded, replayed))
    if recorded != replayed:
        diverge(
            event,
            f"integrated schema diverged (recorded {recorded[:12]}…, "
            f"replayed {replayed[:12]}…)",
        )


def _apply_snapshot_event(session, event, diverge) -> None:
    """Rebuild snapshotted state: schemas, equivalence classes, assertions.

    A snapshot is an absolute statement of the session's state (recorded
    when a log is attached to a non-empty session, or re-recorded after
    time travel / a rebuild such as the tool's Delete Schema).  Any state
    the session already has is discarded and rebuilt from the snapshot,
    in place.
    """
    from repro.kernel.snapshots import apply_state

    if (
        session.schemas()
        or session.object_network.specified_assertions()
        or session.relationship_network.specified_assertions()
    ):
        session.reset_to([])
    apply_state(
        session,
        event.payload,
        on_error=lambda message: diverge(event, message),
    )


def _apply_delete_schema_event(session, event, diverge) -> None:
    """Drop one schema and rebuild from the survivors (Screen 2 Delete).

    Matches the tool's behaviour: equivalences and assertions are
    re-collected after a schema leaves the federation, so the rebuilt
    session starts clean over the remaining schemas.
    """
    name = event.payload["name"]
    remaining = [
        schema for schema in session.schemas() if schema.name != name
    ]
    if len(remaining) == len(session.schemas()):
        diverge(event, f"schema {name!r} not present at delete")
    session.reset_to(remaining)


__all__ = [
    "apply_event",
    "canonical_schema_json",
    "event_label",
    "schema_fingerprint",
]
