"""Crash recovery: last good save + write-ahead-log tail replay.

A :class:`RecoveryManager` turns whatever a crash left on disk — a
checksummed dictionary save, a WAL directory, either, both or neither —
back into a consistent session state:

1. **Load the last good save.**  A missing save is fine (the sitting may
   have crashed before its first checkpoint); a corrupt save is fine
   *if* the WAL generation is self-anchoring — its ``base`` record
   starts from offset 0 (optionally carrying the baseline snapshot) or
   embeds the checkpoint's exported kernel ``state``, as every
   ``ToolSession.save`` reset does — otherwise the
   :class:`~repro.errors.CorruptDictionaryError` propagates.
2. **Scan the WAL.**  Opening the :class:`~repro.kernel.wal.WriteAheadLog`
   truncates a torn tail and quarantines corrupt segments; the scan
   report feeds the :class:`RecoveryReport`.
3. **Replay the records onto the save's kernel state.**  ``commit``
   records append events at the next offset — duplicates of events the
   save already holds are skipped, a ``truncate`` drops the redo tail it
   recorded — and ``head`` records move the cursor.  Replay is pure data
   manipulation on the serialised log; the expensive part (rebuilding
   the live session) happens once, through the ordinary
   ``Kernel.restore`` + ``checkout`` path.

The duplicate-skip + literal-truncate discipline makes replay converge
on the save state even in the crash window *between* a successful save
and the WAL reset that should have followed it: the stale generation
re-derives exactly the log the save already holds.

The resulting :class:`RecoveryReport` is surfaced in the tool's status
line after a Load and can be folded into a
:class:`~repro.obs.metrics.MetricsRegistry` via
:meth:`RecoveryReport.record_metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import CorruptDictionaryError, DictionaryNotFoundError
from repro.kernel.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.dictionary.store import DataDictionary
    from repro.obs.metrics import MetricsRegistry


def wal_directory_for(save_path: str | Path) -> Path:
    """The WAL directory conventionally paired with a save file."""
    save_path = Path(save_path)
    return save_path.with_name(save_path.name + ".wal")


@dataclass
class RecoveryReport:
    """How a session was rebuilt after an open (crash or clean exit)."""

    #: where the state came from: ``fresh`` (nothing on disk), ``save``
    #: (checkpoint only, WAL added nothing), ``save+wal`` (checkpoint
    #: plus replayed tail) or ``wal`` (no usable save, WAL alone)
    source: str = "fresh"
    #: WAL events applied on top of the save's log
    events_replayed: int = 0
    #: the head offset the recovered session stands at
    head: int = 0
    #: torn bytes dropped from the final WAL segment on open
    bytes_truncated: int = 0
    #: WAL segments renamed ``*.corrupt`` on open
    segments_quarantined: list[str] = field(default_factory=list)
    #: why the save was unusable, when recovery fell back to the WAL
    save_error: str | None = None
    #: why replay stopped early (a generation gap), if it did
    replay_stopped: str | None = None

    @property
    def used_wal(self) -> bool:
        """True when WAL records contributed to the recovered state."""
        return self.source in ("wal", "save+wal")

    @property
    def clean(self) -> bool:
        """True when no repair of any kind was needed."""
        return (
            not self.used_wal
            and not self.bytes_truncated
            and not self.segments_quarantined
            and self.save_error is None
        )

    def summary(self) -> str:
        """One status-line sentence, e.g. for the tool's Load command."""
        parts = [f"recovered {self.events_replayed} event(s) from the WAL"]
        if self.bytes_truncated:
            parts.append(f"dropped {self.bytes_truncated} torn byte(s)")
        if self.segments_quarantined:
            names = ", ".join(self.segments_quarantined)
            parts.append(
                f"quarantined {len(self.segments_quarantined)} segment(s)"
                f" ({names})"
            )
        if self.save_error is not None:
            parts.append("save unusable")
        return ", ".join(parts)

    def record_metrics(self, registry: "MetricsRegistry") -> None:
        """Fold the report into an observability metrics registry."""
        registry.counter("recovery.opens").inc()
        registry.counter("recovery.events_replayed").inc(
            self.events_replayed
        )
        registry.counter("recovery.bytes_truncated").inc(
            self.bytes_truncated
        )
        registry.counter("recovery.segments_quarantined").inc(
            len(self.segments_quarantined)
        )
        if self.used_wal:
            registry.counter("recovery.wal_recoveries").inc()
        if self.save_error is not None:
            registry.counter("recovery.save_fallbacks").inc()
        registry.gauge("recovery.head").set(self.head)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "events_replayed": self.events_replayed,
            "head": self.head,
            "bytes_truncated": self.bytes_truncated,
            "segments_quarantined": list(self.segments_quarantined),
            "save_error": self.save_error,
            "replay_stopped": self.replay_stopped,
        }


class RecoveryManager:
    """Rebuild the serialised kernel state a crash interrupted.

    After :meth:`recover`:

    * :attr:`dictionary` — the loaded :class:`DataDictionary`, or
      ``None`` when the save was missing/corrupt;
    * :attr:`kernel_state` — the merged ``export_state``-shaped dict to
      hand to ``Kernel.restore``, or ``None`` when nothing on disk
      described a kernel (fresh session, or a legacy save whose state
      lives in the dictionary body);
    * :attr:`wal` — the opened (repaired) :class:`WriteAheadLog`, ready
      to attach to the rebuilt kernel;
    * :attr:`report` — the :class:`RecoveryReport` (also returned).
    """

    def __init__(
        self, save_path: str | Path, wal_dir: str | Path | None = None
    ) -> None:
        self.save_path = Path(save_path)
        self.wal_dir = (
            Path(wal_dir) if wal_dir is not None
            else wal_directory_for(save_path)
        )
        self.dictionary: "DataDictionary | None" = None
        self.kernel_state: dict[str, Any] | None = None
        self.wal: WriteAheadLog | None = None
        self.report = RecoveryReport()

    def recover(self) -> RecoveryReport:
        from repro.dictionary.store import DataDictionary

        report = self.report
        wal_exists = any(self.wal_dir.glob("wal-*.seg"))
        save_error: Exception | None = None
        try:
            self.dictionary = DataDictionary.load(self.save_path)
        except DictionaryNotFoundError:
            pass
        except CorruptDictionaryError as exc:
            save_error = exc
            report.save_error = str(exc)

        if not wal_exists:
            # nothing to replay: the save (or its absence) is the answer
            if save_error is not None:
                raise save_error
            self.wal = WriteAheadLog(self.wal_dir)
            if self.dictionary is not None:
                report.source = "save"
                state = self.dictionary.kernel_state()
                self.kernel_state = state
                if state is not None:
                    report.head = int(state.get("head", 0))
            return report

        self.wal = WriteAheadLog(self.wal_dir)
        scan = self.wal.open_report
        report.bytes_truncated = scan.bytes_truncated
        report.segments_quarantined = list(scan.segments_quarantined)

        base_state = (
            self.dictionary.kernel_state()
            if self.dictionary is not None
            else None
        )
        if self.dictionary is None and not self._self_anchoring(scan.records):
            # the generation assumed a save we no longer have
            if save_error is not None:
                raise save_error
            raise DictionaryNotFoundError(self.save_path)

        self.kernel_state = self._replay(base_state, scan.records, report)
        if report.events_replayed or self.dictionary is None:
            report.source = "wal" if self.dictionary is None else "save+wal"
        elif self.dictionary is not None:
            report.source = "save"
        return report

    @staticmethod
    def _self_anchoring(records: list[dict[str, Any]]) -> bool:
        """Can this generation be replayed without its backing save?

        When its ``base`` record starts at offset 0 (a fresh session, or
        a legacy restore whose baseline snapshot rides in the record) or
        embeds the checkpoint's full kernel ``state`` (every checkpoint
        reset does).  A stateless base at a real offset refers to events
        the WAL never saw.
        """
        for record in records:
            if record.get("t") == "base":
                return (
                    int(record.get("offset", 0)) == 0
                    or record.get("state") is not None
                )
        # no base record at all: the generation began at an empty log
        return True

    def _replay(
        self,
        base_state: dict[str, Any] | None,
        records: list[dict[str, Any]],
        report: RecoveryReport,
    ) -> dict[str, Any]:
        return merge_wal_records(base_state, records, report)


def merge_wal_records(
    base_state: dict[str, Any] | None,
    records: list[dict[str, Any]],
    report: RecoveryReport,
) -> dict[str, Any]:
    """Merge WAL ``records`` onto ``base_state``; the convergent core.

    Pure data manipulation on ``export_state``-shaped dicts — no live
    kernel involved.  Duplicate events (offsets the base already holds)
    are skipped, ``truncate`` drops the recorded redo tail, and a record
    that does not *extend* the log stops replay with
    ``report.replay_stopped`` set rather than guessing.  Crash recovery
    (:class:`RecoveryManager`) and continuous replica apply
    (:class:`repro.replication.ReplicaApplier`) share this function, so
    a follower replaying shipped records converges on exactly the state
    a local recovery would have produced.
    """
    events: list[dict[str, Any]] = (
        list(base_state.get("events", ()))
        if base_state is not None
        else []
    )
    snapshots: list[dict[str, Any]] = (
        list(base_state.get("snapshots", ()))
        if base_state is not None
        else []
    )
    baseline = (
        int(base_state.get("baseline", 0))
        if base_state is not None
        else 0
    )
    head = (
        int(base_state.get("head", len(events)))
        if base_state is not None
        else 0
    )
    for record in records:
        kind = record.get("t")
        if kind == "base":
            if base_state is None:
                embedded = record.get("state")
                if embedded is not None:
                    # a self-anchoring checkpoint: adopt its state
                    events = [
                        dict(event)
                        for event in embedded.get("events", ())
                    ]
                    snapshots = [
                        dict(snapshot)
                        for snapshot in embedded.get("snapshots", ())
                    ]
                    baseline = int(embedded.get("baseline", 0))
                    head = int(embedded.get("head", len(events)))
                    continue
                baseline = int(record.get("baseline", 0))
                head = int(record.get("head", 0))
                snapshot = record.get("snapshot")
                if snapshot is not None:
                    snapshots.append(dict(snapshot))
        elif kind == "commit":
            truncate = record.get("truncate")
            if truncate is not None:
                truncate = int(truncate)
                del events[truncate:]
                snapshots = [
                    snapshot
                    for snapshot in snapshots
                    if int(snapshot.get("offset", 0)) <= truncate
                ]
                head = min(head, truncate)
            stopped = False
            for event in record.get("events", ()):
                offset = int(event.get("offset", 0))
                if offset <= len(events):
                    continue  # the save already holds this event
                if offset != len(events) + 1:
                    report.replay_stopped = (
                        f"event offset {offset} does not extend a log "
                        f"of {len(events)} (stale save?)"
                    )
                    stopped = True
                    break
                events.append(dict(event))
                report.events_replayed += 1
                head = offset
            if stopped:
                break
        elif kind == "head":
            head = int(record.get("offset", head))
    head = max(baseline, min(head, len(events)))
    report.head = head
    return {
        "head": head,
        "baseline": baseline,
        "events": events,
        "snapshots": snapshots,
    }


__all__ = [
    "RecoveryManager",
    "RecoveryReport",
    "merge_wal_records",
    "wal_directory_for",
]
