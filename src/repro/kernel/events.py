"""Commands and events: the kernel's shared vocabulary.

Every mutation anywhere in the system — a schema registered, an
equivalence declared, an assertion specified or retracted, an
integration performed — is committed as one :class:`Event` on the
session's :class:`~repro.kernel.bus.EventBus`.  The event log is the
source of truth: caches, matrices and federated plans are materialised
views subscribed to it, the audit log is a tap on it, persistence
serialises it, and undo/redo walks it.

An :class:`Event` carries two independent things:

* ``payload`` — the JSON-friendly arguments needed to *re-apply* the
  mutation on a fresh session (exactly the historical audit-event
  payloads, so serialised logs keep their format); and
* ``objects`` / ``schemas`` — invalidation hints for subscribed views:
  the ``(schema, object)`` owners whose equivalence structure changed,
  and the schemas whose *shape* changed.

A :class:`Command` is an *intent* — the same ``scope.action`` vocabulary
before it has been validated and committed.  Dispatching a command
through :meth:`~repro.kernel.kernel.Kernel.dispatch` runs the matching
session mutation, which emits the corresponding event(s) on success.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class _NoChange:
    """Sentinel inverse: the event records an attempt that changed nothing.

    Used for conflict/rejection events, re-statements of an existing
    assertion and equivalence declarations over an already-merged class:
    they are part of the history (the audit tap records them) but undo
    skips straight past them.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NO_CHANGE"


#: The inverse of an event that did not change state.
NO_CHANGE = _NoChange()

#: An applicable inverse: ``(scope, action, payload)`` re-dispatched
#: through :func:`repro.kernel.apply.apply_event`, or :data:`NO_CHANGE`.
#: ``None`` (no inverse recorded) means the event is not cheaply
#: invertible and undo falls back to a snapshot checkout.
Inverse = "tuple[str, str, dict[str, Any]] | _NoChange | None"


@dataclass(frozen=True)
class Command:
    """An intent addressed to the kernel, in event vocabulary."""

    scope: str
    action: str
    args: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.scope}.{self.action} {self.args}"


@dataclass(frozen=True)
class Event:
    """One committed mutation on the bus.

    ``offset`` is the 1-based position in the log (0 on events delivered
    during replay, which are never appended).  ``txn`` groups the events
    of one transaction/group; a transaction's events are contiguous in
    the log, which is what the concurrency stress test asserts.
    """

    offset: int
    scope: str
    action: str
    payload: dict[str, Any] = field(default_factory=dict)
    txn: int = 0
    #: ``(schema, object)`` owners whose equivalence structure changed
    objects: frozenset = frozenset()
    #: schemas whose shape changed (structures/attributes added/removed)
    schemas: frozenset = frozenset()

    @property
    def label(self) -> str:
        """The ``scope.action`` name, matching audit-log labels."""
        return f"{self.scope}.{self.action}"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "offset": self.offset,
            "txn": self.txn,
            "scope": self.scope,
            "action": self.action,
            "payload": self.payload,
        }
        if self.objects:
            data["objects"] = sorted(list(pair) for pair in self.objects)
        if self.schemas:
            data["schemas"] = sorted(self.schemas)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Event":
        return cls(
            offset=int(data["offset"]),
            scope=str(data["scope"]),
            action=str(data["action"]),
            payload=dict(data.get("payload", {})),
            txn=int(data.get("txn", 0)),
            objects=frozenset(
                (schema, name) for schema, name in data.get("objects", ())
            ),
            schemas=frozenset(data.get("schemas", ())),
        )

    def __str__(self) -> str:
        return f"@{self.offset} [txn {self.txn}] {self.label} {self.payload}"
