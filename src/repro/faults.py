"""Deterministic fault injection for the durability layer.

Crash-safety claims are only as good as the crashes they were tested
against.  This module gives the durability code (the write-ahead log in
:mod:`repro.kernel.wal` and the atomic dictionary save in
:mod:`repro.dictionary.store`) a set of **named crashpoints** — fixed
places in the write path where a simulated process death can be
scheduled — plus injectable I/O fault *policies*:

* **crash** — raise :class:`InjectedCrash` (a ``BaseException``, so no
  ``except Exception`` recovery path can accidentally tidy up) at the
  n-th hit of a named crashpoint;
* **torn write** — at the crashing write, persist only a seeded prefix
  of the buffer before dying, modelling a partial sector flush;
* **lost fsync** — ``fsync`` calls do nothing, and at the crash every
  byte written since the last *effective* fsync is dropped, modelling a
  disk that acknowledged writes it never made durable;
* **I/O error** — raise :class:`OSError` at the n-th hit of a named
  crashpoint without dying, for error-handling paths.

Activation is scoped by the :func:`inject` context manager with a
:class:`FaultPlan` — a *seeded schedule*: the same plan against the same
workload tears the same byte of the same write every time, which is what
lets Hypothesis shrink a failing crash scenario to a minimal one.

With no plan active every helper here is a thin pass-through over the
real ``open``/``write``/``os.fsync``/``os.replace``, so production code
pays one ``is None`` check per operation.

Crashpoint catalog (see ``docs/DURABILITY.md``):

==============================  =================================================
name                            fires
==============================  =================================================
``wal.append.write``            inside the WAL record write (torn-capable)
``wal.append.after_write``      record written, not yet fsynced
``wal.append.after_fsync``      record durable
``wal.rotate.before_create``    old segment closed, new one not yet created
``wal.rotate.after_create``     new segment created
``dict.save.write``             inside the temp-file write (torn-capable)
``dict.save.after_write``       temp file written, not yet fsynced
``dict.save.before_replace``    temp file durable, rename not yet issued
``dict.save.after_replace``     rename issued, directory not yet fsynced
``repl.ship.read``              shipper about to read WAL segments
``repl.ship.frame``             inside frame encoding on the wire (torn-capable)
``repl.apply.record``           follower about to apply a shipped record
``repl.promote.persist``        promotion decided, new epoch not yet persisted
==============================  =================================================
"""

from __future__ import annotations

import os
import random
import threading
import weakref
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

#: Every named crashpoint in the durability write paths, for schedule
#: generators (the Hypothesis crash-anywhere property samples from this).
CRASHPOINTS = (
    "wal.append.write",
    "wal.append.after_write",
    "wal.append.after_fsync",
    "wal.rotate.before_create",
    "wal.rotate.after_create",
    "dict.save.write",
    "dict.save.after_write",
    "dict.save.before_replace",
    "dict.save.after_replace",
    "repl.ship.read",
    "repl.ship.frame",
    "repl.apply.record",
    "repl.promote.persist",
)

#: Crashpoints that live *inside* a write call and may tear the buffer.
TORN_CAPABLE = ("wal.append.write", "dict.save.write", "repl.ship.frame")


class InjectedCrash(BaseException):
    """A simulated process death at a named crashpoint.

    Deliberately a ``BaseException``: recovery/cleanup code that catches
    ``Exception`` must not be able to intercept a crash — a real
    ``kill -9`` would not have run it either.
    """

    def __init__(self, point: str, partial: bytes | None = None) -> None:
        self.point = point
        #: for in-memory torn points (``repl.ship.frame``): the prefix of
        #: the buffer that "made it onto the wire" before the connection
        #: died.  ``None`` for on-disk crashes, where the torn prefix is
        #: already settled into the tracked file instead.
        self.partial = partial
        super().__init__(f"injected crash at {point!r}")


class InjectedIOError(OSError):
    """A simulated I/O failure at a named crashpoint (process survives)."""

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"injected I/O error at {point!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults for one :func:`inject` scope.

    ``crash_at``/``occurrence`` name the crashpoint and the hit count at
    which the process "dies".  ``torn`` only applies when ``crash_at``
    is a torn-capable write point; ``seed`` fixes the torn prefix
    length.  ``io_error_at``/``io_error_occurrence`` independently
    schedule a survivable :class:`InjectedIOError`.
    """

    crash_at: str | None = None
    occurrence: int = 1
    torn: bool = False
    lost_fsync: bool = False
    io_error_at: str | None = None
    io_error_occurrence: int = 1
    seed: int = 0

    #: live hit counters, reset each time the plan is activated
    hits: dict[str, int] = field(default_factory=dict, repr=False)

    def _hit(self, point: str) -> int:
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        return count


class _Runtime:
    """The active plan plus the files it is tracking, one per process.

    Files are tracked from :func:`open_tracked` until close — NOT per
    injection scope: a WAL segment is usually opened long before a test
    injects its plan, and a crash must still be able to un-fsync it.
    Weak references keep abandoned handles from pinning file objects.
    """

    def __init__(self) -> None:
        self.plan: FaultPlan | None = None
        self.tracked: list["weakref.ref[_TrackedFile]"] = []
        self.lock = threading.Lock()

    def live_tracked(self) -> list["_TrackedFile"]:
        """Open tracked files; prunes dead and closed entries."""
        live: list[_TrackedFile] = []
        refs: list[weakref.ref[_TrackedFile]] = []
        for ref in self.tracked:
            tracked = ref()
            if tracked is not None and not tracked.handle.closed:
                live.append(tracked)
                refs.append(ref)
        self.tracked = refs
        return live


_RUNTIME = _Runtime()


def active() -> FaultPlan | None:
    """The currently injected plan, or ``None`` outside :func:`inject`."""
    return _RUNTIME.plan


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block.

    Nesting is a programming error — one simulated disk per process.
    Hit counters reset on entry so a plan object can be reused.
    """
    with _RUNTIME.lock:
        if _RUNTIME.plan is not None:
            raise RuntimeError("a fault plan is already active")
        plan.hits = {}
        _RUNTIME.plan = plan
    try:
        yield plan
    finally:
        with _RUNTIME.lock:
            _RUNTIME.plan = None


def crashpoint(point: str) -> None:
    """Declare a named crashpoint; fires whatever the plan scheduled here."""
    plan = _RUNTIME.plan
    if plan is None:
        return
    count = plan._hit(point)
    if plan.io_error_at == point and count == plan.io_error_occurrence:
        raise InjectedIOError(point)
    if plan.crash_at == point and count == plan.occurrence:
        _crash(point)


def torn_buffer(data: bytes, point: str) -> bytes:
    """An in-memory torn-write point for buffers that never touch disk.

    Replication frames are "written" to a connection, not a file, so the
    torn-prefix logic of :meth:`_TrackedFile.write` cannot apply.  This
    helper gives such buffers the same deterministic schedule: outside a
    plan (or before the scheduled hit) it returns ``data`` unchanged; at
    the scheduled crash it raises :class:`InjectedCrash` whose
    ``partial`` attribute carries the seeded prefix that "made it onto
    the wire" (empty when the plan is not torn).
    """
    plan = _RUNTIME.plan
    if plan is None:
        return data
    count = plan._hit(point)
    if plan.io_error_at == point and count == plan.io_error_occurrence:
        raise InjectedIOError(point)
    if plan.crash_at == point and count == plan.occurrence:
        partial = b""
        if plan.torn and data:
            # same seeding as _TrackedFile.write: stable across processes
            tear_seed = zlib.crc32(
                f"{plan.seed}:{point}:{count}".encode("utf-8")
            )
            partial = data[: random.Random(tear_seed).randrange(len(data))]
        for tracked in _RUNTIME.live_tracked():
            tracked._settle_for_crash(
                lost_fsync=bool(plan and plan.lost_fsync)
            )
        raise InjectedCrash(point, partial=partial)
    return data


def _crash(point: str) -> None:
    """Simulate the process dying: settle tracked files, then raise.

    Under ``lost_fsync`` every tracked file is truncated back to its
    last *effective* fsync — the bytes the faulty disk acknowledged but
    never wrote.  Without it, written bytes stay (the OS flushes dirty
    pages of a dead process eventually; what is lost is only what was
    never written).
    """
    plan = _RUNTIME.plan
    for tracked in _RUNTIME.live_tracked():
        tracked._settle_for_crash(lost_fsync=bool(plan and plan.lost_fsync))
    raise InjectedCrash(point)


class _TrackedFile:
    """A file handle the harness can tear and un-fsync deterministically."""

    def __init__(self, path: Path, handle: IO[bytes]) -> None:
        self.path = path
        self.handle = handle
        #: bytes known durable (advanced by an effective fsync)
        self.durable = handle.tell()
        self._ref = weakref.ref(self)
        _RUNTIME.tracked.append(self._ref)

    # -- file protocol ------------------------------------------------------

    def write(self, data: bytes, *, point: str | None = None) -> int:
        """Write ``data``; a scheduled torn crash persists only a prefix."""
        plan = _RUNTIME.plan
        if plan is not None and point is not None:
            count = plan._hit(point)
            if plan.io_error_at == point and count == plan.io_error_occurrence:
                raise InjectedIOError(point)
            if plan.crash_at == point and count == plan.occurrence:
                if plan.torn and data:
                    # stable across processes (str.__hash__ is salted)
                    tear_seed = zlib.crc32(
                        f"{plan.seed}:{point}:{count}".encode("utf-8")
                    )
                    keep = random.Random(tear_seed).randrange(len(data))
                    self.handle.write(data[:keep])
                    self.handle.flush()
                _crash(point)
        written = self.handle.write(data)
        self.handle.flush()
        return written

    def fsync(self) -> None:
        """Make written bytes durable — unless the plan loses fsyncs."""
        plan = _RUNTIME.plan
        if plan is not None and plan.lost_fsync:
            return  # the disk lied; ``durable`` stays where it was
        os.fsync(self.handle.fileno())
        self.durable = self.handle.tell()

    def tell(self) -> int:
        return self.handle.tell()

    def close(self) -> None:
        if not self.handle.closed:
            self.handle.close()
        if self._ref in _RUNTIME.tracked:
            _RUNTIME.tracked.remove(self._ref)

    def __enter__(self) -> "_TrackedFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- crash settlement ---------------------------------------------------

    def _settle_for_crash(self, *, lost_fsync: bool) -> None:
        if self.handle.closed:
            return
        self.handle.flush()
        if lost_fsync:
            self.handle.truncate(self.durable)
        self.handle.close()


def open_tracked(path: str | Path, mode: str = "ab") -> _TrackedFile:
    """Open a durability file through the harness.

    ``mode`` must be a binary write/append mode.  Outside an injection
    scope this is an ordinary buffered file wrapped for the uniform
    ``write(data, point=...)`` / ``fsync()`` interface.
    """
    if "b" not in mode:
        raise ValueError("durability files are binary; use a 'b' mode")
    return _TrackedFile(Path(path), open(path, mode))


def replace(source: str | Path, target: str | Path) -> None:
    """``os.replace`` with the surrounding crashpoints honoured by callers."""
    os.replace(source, target)


def fsync_dir(path: str | Path) -> None:
    """Flush a directory entry (after create/rename) where supported."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


__all__ = [
    "CRASHPOINTS",
    "TORN_CAPABLE",
    "FaultPlan",
    "InjectedCrash",
    "InjectedIOError",
    "active",
    "crashpoint",
    "fsync_dir",
    "inject",
    "open_tracked",
    "replace",
    "torn_buffer",
]
