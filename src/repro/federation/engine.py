"""The federated query engine facade.

:class:`FederationEngine` ties the subsystem together: the cached
:class:`~repro.federation.planner.QueryPlanner`, the concurrent
:class:`~repro.federation.executor.FederationExecutor` and the
assertion-aware merger (:func:`~repro.federation.merge.merge_legs`).
One call does everything::

    engine = FederationEngine.for_stores(
        mappings, stores, integrated_schema, object_network=network
    )
    result = engine.query("select Name, GPA from Student")
    result.rows      # the oracle-equal merged answer
    result.health    # what every component did
    result.conflicts # cross-component disagreements about one entity

On a healthy run ``result.rows`` equals
:func:`repro.data.federated_answer` for the same request — the engine
adds concurrency, fault tolerance and explainability, never different
answers.  When components fail the engine degrades to the live subset
(``result.health.degraded``) instead of raising, unless the policy says
otherwise.

Everything is instrumented: ``federation.plan`` / ``federation.fanout``
/ ``federation.component`` / ``federation.merge`` spans when a tracer is
installed, and counters/histograms on the engine's metrics registry
(``federation.plan.hit``/``.miss``, ``federation.leg.ok``/``.failed``,
``federation.retries``, ``federation.timeout``,
``federation.breaker.skipped``, ``federation.latency.<component>``,
``federation.rows``, ``federation.conflicts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.instances import InstanceStore
from repro.ecr.schema import Schema
from repro.federation.backends import ComponentBackend, InstanceBackend
from repro.federation.executor import (
    ExecutionPolicy,
    FederationExecutor,
)
from repro.federation.health import FederationHealth
from repro.federation.merge import MergeConflict, merge_legs
from repro.federation.plan import FederatedPlan
from repro.federation.planner import QueryPlanner
from repro.integration.mappings import SchemaMapping
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.query.ast import Request
from repro.query.parser import parse_request

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.assertions.network import AssertionNetwork
    from repro.equivalence.registry import EquivalenceRegistry


@dataclass
class FederationResult:
    """Everything one federated query produced."""

    rows: list[tuple]
    plan: FederatedPlan
    health: FederationHealth
    conflicts: list[MergeConflict] = field(default_factory=list)
    #: rows removed by duplicate elimination / subsumption
    eliminated: int = 0

    @property
    def ok(self) -> bool:
        return self.health.ok

    @property
    def degraded(self) -> bool:
        return self.health.degraded

    def summary(self) -> str:
        """One line for screens and audit records."""
        line = (
            f"{len(self.rows)} row(s) via {self.plan.strategy} over "
            f"{len(self.plan.legs)} leg(s); {self.health.summary()}"
        )
        if self.conflicts:
            line += f"; {len(self.conflicts)} conflict(s)"
        return line


class FederationEngine:
    """Plans, fans out and merges global requests over component backends."""

    def __init__(
        self,
        planner: QueryPlanner,
        executor: FederationExecutor,
        *,
        metrics: MetricsRegistry | None = None,
        reconcile_entities: bool = False,
    ) -> None:
        self.planner = planner
        self.executor = executor
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.reconcile_entities = reconcile_entities
        if planner.metrics is None:
            planner.metrics = self.metrics
        if executor.metrics is None:
            executor.metrics = self.metrics

    @classmethod
    def for_stores(
        cls,
        mappings: dict[str, SchemaMapping],
        stores: dict[str, InstanceStore],
        integrated_schema: Schema | None = None,
        *,
        object_network: "AssertionNetwork | None" = None,
        registry: "EquivalenceRegistry | None" = None,
        policy: ExecutionPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        reconcile_entities: bool = False,
    ) -> "FederationEngine":
        """An engine over in-memory component stores (the common setup)."""
        backends: dict[str, ComponentBackend] = {
            name: InstanceBackend(store) for name, store in stores.items()
        }
        return cls.for_backends(
            mappings,
            backends,
            integrated_schema,
            object_network=object_network,
            registry=registry,
            policy=policy,
            metrics=metrics,
            reconcile_entities=reconcile_entities,
        )

    @classmethod
    def for_backends(
        cls,
        mappings: dict[str, SchemaMapping],
        backends: dict[str, ComponentBackend],
        integrated_schema: Schema | None = None,
        *,
        object_network: "AssertionNetwork | None" = None,
        registry: "EquivalenceRegistry | None" = None,
        policy: ExecutionPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        reconcile_entities: bool = False,
    ) -> "FederationEngine":
        """An engine over arbitrary (sqlite, flaky, remote) backends."""
        shared = metrics if metrics is not None else MetricsRegistry()
        planner = QueryPlanner(
            mappings,
            integrated_schema,
            object_network=object_network,
            registry=registry,
            metrics=shared,
        )
        executor = FederationExecutor(backends, policy, metrics=shared)
        return cls(
            planner,
            executor,
            metrics=shared,
            reconcile_entities=reconcile_entities,
        )

    # -- queries -----------------------------------------------------------------

    def plan(self, request: Request | str) -> FederatedPlan:
        """The (cached) plan for a request, without executing it."""
        return self.planner.plan(self._coerce(request))

    def explain(self, request: Request | str) -> str:
        """The plan's human-readable rendering."""
        return self.plan(request).explain()

    def query(self, request: Request | str) -> FederationResult:
        """Plan, fan out, merge: the full federated answer."""
        plan = self.plan(request)
        execution = self.executor.execute(plan)
        with span(
            "federation.merge",
            strategy=str(plan.strategy),
            legs=len(plan.legs),
        ):
            outcome = merge_legs(
                plan,
                execution.leg_rows,
                reconcile_entities=self.reconcile_entities,
            )
        self.metrics.counter("federation.rows").inc(len(outcome.rows))
        if outcome.conflicts:
            self.metrics.counter("federation.conflicts").inc(
                len(outcome.conflicts)
            )
        return FederationResult(
            rows=outcome.rows,
            plan=plan,
            health=execution.health,
            conflicts=outcome.conflicts,
            eliminated=outcome.eliminated,
        )

    @staticmethod
    def _coerce(request: Request | str) -> Request:
        if isinstance(request, str):
            return parse_request(request)
        return request
