"""Concurrent fan-out of a federated plan over the component backends.

The executor sends every plan leg to its component backend **in
parallel** (a ``ThreadPoolExecutor``; remote components spend their time
in I/O waits, which Python threads overlap).  Around each leg:

* a **retry loop** with bounded exponential backoff absorbs transient
  faults (``policy.retries`` retries, delay starting at
  ``policy.backoff`` and multiplying by ``policy.backoff_multiplier``);
* a **per-component timeout** (``policy.timeout``, measured from the
  start of the fan-out) abandons legs that will not answer in time; and
* a per-backend **circuit breaker** skips components that have failed
  ``policy.failure_threshold`` consecutive queries until
  ``policy.breaker_reset`` seconds pass (see
  :mod:`repro.federation.health`).

In **partial-result mode** (the default) a failed, skipped or timed-out
leg does not fail the query: the executor returns whatever the live
components answered, together with a :class:`FederationHealth` report
saying exactly what happened per component.  With
``policy.partial_results=False`` any failed leg raises
:class:`~repro.errors.FederationError` carrying the same report.

Threading discipline: worker threads only call ``backend.execute`` and
sleep between retries, capturing ``perf_counter`` timestamps; all
breaker updates, metrics and span recording happen on the calling
thread after collection (the tracer is single-threaded by design — the
workers' timings become ``federation.component`` spans via
:meth:`repro.obs.trace.Tracer.record_span`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import FederationError
from repro.federation.backends import ComponentBackend
from repro.federation.health import (
    CircuitBreaker,
    ComponentStatus,
    FederationHealth,
)
from repro.federation.plan import FederatedPlan
from repro.obs.trace import record_span, span

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.metrics import MetricsRegistry
    from repro.query.rewrite import ComponentRequest


@dataclass
class ExecutionPolicy:
    """Knobs for fault tolerance and concurrency."""

    #: per-component wall-clock budget, measured from fan-out start
    timeout: float = 5.0
    #: retries after the first attempt (0 = fail fast)
    retries: int = 2
    #: initial backoff delay between attempts, in seconds
    backoff: float = 0.05
    #: backoff growth factor per retry
    backoff_multiplier: float = 2.0
    #: consecutive failures that open a component's breaker
    failure_threshold: int = 3
    #: seconds an open breaker waits before admitting a probe
    breaker_reset: float = 30.0
    #: return live components' answers instead of raising on failure
    partial_results: bool = True
    #: thread-pool size (``None``: one thread per leg)
    max_workers: int | None = None
    #: run legs one after another on the calling thread (the baseline
    #: the benchmark compares the fan-out against)
    sequential: bool = False


@dataclass
class _LegRun:
    """What one worker observed executing one leg."""

    rows: list[tuple] | None = None
    attempts: int = 0
    error: str = ""
    start: float = 0.0
    end: float = 0.0
    #: OS thread id of the worker that ran the leg (Chrome-trace ``tid``)
    thread_id: int | None = None


@dataclass
class ExecutionResult:
    """Per-leg rows (aligned with the plan's legs) plus the health report."""

    leg_rows: list[list[tuple] | None]
    health: FederationHealth = field(default_factory=FederationHealth)


class FederationExecutor:
    """Executes federated plans against named component backends."""

    def __init__(
        self,
        backends: dict[str, ComponentBackend],
        policy: ExecutionPolicy | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.backends = dict(backends)
        self.policy = policy or ExecutionPolicy()
        self.metrics = metrics
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_for(self, component: str) -> CircuitBreaker:
        breaker = self._breakers.get(component)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.failure_threshold, self.policy.breaker_reset
            )
            self._breakers[component] = breaker
        return breaker

    # -- execution ---------------------------------------------------------------

    def execute(self, plan: FederatedPlan) -> ExecutionResult:
        """Run every leg; never raises in partial-result mode."""
        with span(
            "federation.fanout",
            legs=len(plan.legs),
            mode="sequential" if self.policy.sequential else "concurrent",
        ):
            result = self._execute_legs(plan)
        if not self.policy.partial_results and not result.health.ok:
            raise FederationError(
                f"federated query failed: {result.health.summary()}",
                health=result.health,
            )
        return result

    def _execute_legs(self, plan: FederatedPlan) -> ExecutionResult:
        policy = self.policy
        admitted: list[tuple[int, "ComponentRequest", ComponentBackend]] = []
        statuses: list[ComponentStatus | None] = [None] * len(plan.legs)
        for index, leg in enumerate(plan.legs):
            backend = self.backends.get(leg.schema)
            if backend is None:
                statuses[index] = ComponentStatus(
                    component=leg.schema,
                    backend="",
                    ok=False,
                    skipped=True,
                    error=f"no backend registered for {leg.schema!r}",
                )
                self._count("federation.skipped")
                continue
            breaker = self.breaker_for(leg.schema)
            if not breaker.allows():
                statuses[index] = ComponentStatus(
                    component=leg.schema,
                    backend=backend.name,
                    ok=False,
                    skipped=True,
                    breaker=str(breaker.state),
                    error="circuit breaker open",
                )
                self._count("federation.breaker.skipped")
                continue
            admitted.append((index, leg, backend))

        fanout_start = time.perf_counter()
        runs: dict[int, _LegRun] = {}
        timed_out: set[int] = set()
        if policy.sequential:
            for index, leg, backend in admitted:
                runs[index] = self._run_leg(backend, leg, policy)
        elif admitted:
            workers = policy.max_workers or len(admitted)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures: dict[int, Future] = {
                    index: pool.submit(self._run_leg, backend, leg, policy)
                    for index, leg, backend in admitted
                }
                deadline = fanout_start + policy.timeout
                for index, future in futures.items():
                    remaining = deadline - time.perf_counter()
                    try:
                        runs[index] = future.result(max(0.0, remaining))
                    except TimeoutError:
                        timed_out.add(index)
                        future.cancel()  # abandon; the worker may linger

        leg_rows: list[list[tuple] | None] = [None] * len(plan.legs)
        for index, leg, backend in admitted:
            breaker = self.breaker_for(leg.schema)
            if index in timed_out:
                breaker.record_failure()
                statuses[index] = ComponentStatus(
                    component=leg.schema,
                    backend=backend.name,
                    ok=False,
                    timed_out=True,
                    latency_s=policy.timeout,
                    breaker=str(breaker.state),
                    error=f"timed out after {policy.timeout:.1f}s",
                )
                self._count("federation.timeout")
                continue
            run = runs[index]
            ok = run.rows is not None
            if ok:
                breaker.record_success()
                self._count("federation.leg.ok")
            else:
                breaker.record_failure()
                self._count("federation.leg.failed")
            if run.attempts > 1:
                self._count("federation.retries", run.attempts - 1)
            latency = run.end - run.start
            self._observe_latency(leg.schema, latency)
            record_span(
                "federation.component",
                run.start,
                run.end,
                thread_id=run.thread_id,
                component=leg.schema,
                backend=backend.name,
                attempts=run.attempts,
                ok=ok,
                rows=len(run.rows) if ok else 0,
            )
            leg_rows[index] = run.rows
            statuses[index] = ComponentStatus(
                component=leg.schema,
                backend=backend.name,
                ok=ok,
                rows=len(run.rows) if ok else 0,
                attempts=run.attempts,
                latency_s=latency,
                error=run.error,
                breaker=str(breaker.state),
            )
        health = FederationHealth(
            [status for status in statuses if status is not None]
        )
        return ExecutionResult(leg_rows=leg_rows, health=health)

    @staticmethod
    def _run_leg(
        backend: ComponentBackend,
        leg: "ComponentRequest",
        policy: ExecutionPolicy,
    ) -> _LegRun:
        """Worker body: attempt + retries. No shared state is touched."""
        run = _LegRun(
            start=time.perf_counter(), thread_id=threading.get_ident()
        )
        delay = policy.backoff
        for attempt in range(policy.retries + 1):
            run.attempts = attempt + 1
            try:
                run.rows = backend.execute(leg.request)
                run.error = ""
                break
            except Exception as exc:  # noqa: BLE001 - faults become status
                run.rows = None
                run.error = f"{type(exc).__name__}: {exc}"
                if attempt < policy.retries:
                    time.sleep(delay)
                    delay *= policy.backoff_multiplier
        run.end = time.perf_counter()
        return run

    # -- metrics -----------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe_latency(self, component: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                f"federation.latency.{component}"
            ).observe(seconds)
