"""The cached federated query planner.

A :class:`QueryPlanner` turns a global :class:`~repro.query.ast.Request`
into a :class:`~repro.federation.plan.FederatedPlan`:

1. the request is routed onto every contributing component schema via
   :func:`~repro.query.rewrite.rewrite_to_components` (IS-A routing
   included when the integrated schema is known);
2. the merge strategy is derived from the object-class assertion network
   — the same assertions that drove integration justify how the
   components' answers recombine (see :mod:`repro.federation.plan`); and
3. the key positions of the projection are read off the integrated
   schema, so the merger can reconcile entities and surface conflicts.

Plans are **cached** per request text and keyed on a version token — a
planner-local counter.  The planner never polls the registry: when one
is supplied it subscribes to its
:class:`~repro.equivalence.registry.RegistryChange` events (delivered off
the kernel event bus) and each mutation advances the token and drops
every cached plan — a schema or equivalence edit changes the mappings,
so no stale plan can survive it.  :meth:`QueryPlanner.invalidate` does
the same by hand for registry-less planners.  Hit/miss counts feed the
``federation.plan.*`` metrics (the plan-cache hit ratio the benchmark
records).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.ecr.schema import ObjectRef, Schema
from repro.ecr.walk import inherited_attributes
from repro.federation.plan import FederatedPlan, MergeStrategy, PairAssertion
from repro.integration.mappings import SchemaMapping
from repro.obs.trace import span
from repro.query.ast import Request
from repro.query.rewrite import ComponentRequest, rewrite_to_components

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.assertions.network import AssertionNetwork
    from repro.equivalence.registry import EquivalenceRegistry, RegistryChange
    from repro.obs.metrics import MetricsRegistry


class QueryPlanner:
    """Plans global requests against the component mappings, with caching."""

    def __init__(
        self,
        mappings: dict[str, SchemaMapping],
        integrated_schema: Schema | None = None,
        *,
        object_network: "AssertionNetwork | None" = None,
        registry: "EquivalenceRegistry | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.mappings = mappings
        self.integrated_schema = integrated_schema
        self.object_network = object_network
        self.registry = registry
        self.metrics = metrics
        self._cache: dict[str, FederatedPlan] = {}
        self._local_version = 0
        #: plans the most recent localized ``evolve`` change dropped
        self.last_evolve_invalidated = 0
        if registry is not None:
            registry.subscribe(self._on_registry_change)

    # -- cache control ----------------------------------------------------------

    def _on_registry_change(self, change: "RegistryChange") -> None:
        """Invalidate cached plans a registry mutation may have stalled.

        Most mutations still drop everything — equivalence edits move
        mappings in ways a plan key cannot see.  Localized ``evolve``
        changes (schema edits) are the exception: only plans with a leg on
        an edited object (or, for structural edits, on the edited schema)
        are dropped, and the version token stays put so the survivors keep
        validating.  The drop count feeds the repair-scope report.
        """
        if change.kind != "evolve":
            self._local_version += 1
            self._cache.clear()
            return
        edited = set(change.objects)  # (schema, object) owner pairs
        stale = [
            key
            for key, plan in self._cache.items()
            if any(
                leg.schema in change.schemas
                or (leg.schema, leg.request.object_name) in edited
                for leg in plan.legs
            )
        ]
        for key in stale:
            del self._cache[key]
        self.last_evolve_invalidated = len(stale)

    def invalidate(self) -> None:
        """Drop all cached plans and advance the local version token.

        Call after replacing :attr:`mappings` (a new integration run) when
        no live registry is wired in to do it automatically.
        """
        self._local_version += 1
        self._cache.clear()

    def version_token(self) -> int:
        """The planner-local token cached plans are validated against."""
        return self._local_version

    def cache_size(self) -> int:
        return len(self._cache)

    # -- planning ---------------------------------------------------------------

    def plan(self, request: Request) -> FederatedPlan:
        """The (possibly cached) federated plan for a global request."""
        token = self.version_token()
        key = str(request)
        cached = self._cache.get(key)
        if cached is not None and cached.version_token == token:
            self._count("federation.plan.hit")
            return cached
        self._count("federation.plan.miss")
        with span("federation.plan", request=key):
            legs = tuple(
                rewrite_to_components(
                    request, self.mappings, self.integrated_schema
                )
            )
            strategy, pairs = self._derive_strategy(legs)
            built = FederatedPlan(
                request=request,
                legs=legs,
                strategy=strategy,
                pair_assertions=pairs,
                key_positions=self._key_positions(request),
                version_token=token,
            )
        self._cache[key] = built
        return built

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _key_positions(self, request: Request) -> tuple[int, ...]:
        """Projection positions holding key attributes of the global class."""
        if self.integrated_schema is None:
            return ()
        keys = {
            attribute.name
            for attribute in inherited_attributes(
                self.integrated_schema, request.object_name
            )
            if attribute.is_key
        }
        return tuple(
            index
            for index, name in enumerate(request.attributes)
            if name in keys
        )

    def _derive_strategy(
        self, legs: tuple[ComponentRequest, ...]
    ) -> tuple[MergeStrategy, tuple[PairAssertion, ...]]:
        """The merge strategy the assertion network justifies for these legs.

        Every cross-schema pair of contributing component objects is looked
        up in the network; the *weakest* relationship seen decides:
        equals-only pairs key-merge, containment admits a subset-aware
        union, and anything overlapping, disjoint or unasserted falls back
        to the outer union.  Without a network the outer union is the only
        sound choice.
        """
        from repro.assertions.kinds import AssertionKind

        pairs: list[PairAssertion] = []
        if self.object_network is None:
            return MergeStrategy.OUTER_UNION, ()
        for first, second in itertools.combinations(legs, 2):
            if first.schema == second.schema:
                continue  # same store: one executor visit, no cross-merge
            first_ref = ObjectRef(first.schema, first.request.object_name)
            second_ref = ObjectRef(second.schema, second.request.object_name)
            try:
                assertion = self.object_network.assertion_for(
                    first_ref, second_ref
                )
            except Exception:
                assertion = None  # objects unknown to this network
            pairs.append(
                PairAssertion(
                    str(first_ref),
                    str(second_ref),
                    assertion.kind.code if assertion is not None else None,
                )
            )
        kinds = set()
        for pair in pairs:
            if pair.code is None:
                return MergeStrategy.OUTER_UNION, tuple(pairs)
            kinds.add(AssertionKind.from_code(pair.code))
        containment = {AssertionKind.CONTAINED_IN, AssertionKind.CONTAINS}
        if kinds and kinds <= {AssertionKind.EQUALS}:
            return MergeStrategy.KEY_MERGE, tuple(pairs)
        if kinds and kinds <= containment | {AssertionKind.EQUALS}:
            return MergeStrategy.SUBSET_UNION, tuple(pairs)
        return MergeStrategy.OUTER_UNION, tuple(pairs)
