"""Component backends: the operational databases behind a federation.

A :class:`ComponentBackend` answers rewritten component subrequests
(:class:`~repro.query.ast.Request`) with the same row semantics as
:meth:`repro.data.instances.InstanceStore.select`.  Three implementations:

* :class:`InstanceBackend` — wraps an in-memory
  :class:`~repro.data.instances.InstanceStore` directly (the reference
  semantics; zero translation);
* :class:`SqliteBackend` — a real SQL database: the component schema is
  pushed through :func:`repro.translate.to_relational`, the resulting DDL
  is rendered as ``CREATE TABLE`` statements into an in-process
  ``sqlite3`` database, instances and links are loaded, and subrequests
  are compiled to SQL (membership joins down the category chain,
  junction-table and folded-foreign-key traversals); and
* :class:`FlakyBackend` — a fault-injection wrapper around any backend
  with seeded, deterministic latency and error behaviour, used by the
  robustness tests and the partial-result benchmark to model slow or
  dying remote components.

Backends raise :class:`~repro.errors.BackendError` for operational
faults so the executor's retry/breaker logic treats them uniformly.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from typing import Protocol, runtime_checkable

from repro.data.instances import InstanceStore, _satisfies, _sort_key
from repro.ecr.domains import DomainKind
from repro.ecr.objects import Category
from repro.ecr.schema import Schema
from repro.ecr.walk import topological_order
from repro.errors import BackendError, FederationError
from repro.query.ast import Comparison, Request
from repro.translate.relational import RelationalSchema, Table
from repro.translate.to_relational import to_relational


@runtime_checkable
class ComponentBackend(Protocol):
    """What the executor needs from a component database."""

    #: display name (used for metrics, breakers and health reports)
    name: str

    def execute(self, request: Request) -> list[tuple]:
        """Answer a component subrequest; rows sorted like
        :meth:`InstanceStore.select`."""
        ...  # pragma: no cover - protocol


class InstanceBackend:
    """The in-memory reference backend over an :class:`InstanceStore`."""

    def __init__(self, store: InstanceStore, name: str | None = None) -> None:
        self.store = store
        self.name = name if name is not None else store.schema.name

    def execute(self, request: Request) -> list[tuple]:
        return self.store.select(request)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InstanceBackend({self.name})"


def _udf_satisfies(value: object, operator: str, target: object) -> int:
    """sqlite UDF delegating comparisons to the in-memory semantics."""
    if value is None:
        return 0
    condition = Comparison("_", operator, target)  # type: ignore[arg-type]
    return 1 if _satisfies(value, condition) else 0


# -- SQL rendering of the translated relational schema --------------------------

_SQL_TYPES = {
    "char": "TEXT",
    "integer": "INTEGER",
    "real": "REAL",
    "date": "TEXT",
    "boolean": "INTEGER",
}


def render_sql_ddl(
    relational: RelationalSchema, enforce_keys: bool = True
) -> list[str]:
    """``CREATE TABLE`` statements for a translated relational schema.

    With ``enforce_keys`` the key columns become the (possibly composite)
    ``PRIMARY KEY`` and foreign keys are declared (sqlite does not enforce
    those without the pragma).  The backend *creates* its tables with
    ``enforce_keys=False``: component stores mirror operational data that
    may violate the translated cardinalities (a student linked to two
    majors despite the max-1 leg), and the federation must answer over the
    data as it stands, not reject the load.  The strict form is kept on
    :attr:`SqliteBackend.ddl` for inspection and the docs.
    """
    statements = []
    for table in relational.tables:
        pieces = [
            f'"{column.name}" {_SQL_TYPES.get(column.type_name, "TEXT")}'
            for column in table.columns
        ]
        if enforce_keys:
            primary = table.primary_key_columns()
            if primary:
                quoted = ", ".join(f'"{name}"' for name in primary)
                pieces.append(f"PRIMARY KEY ({quoted})")
            for fk in table.foreign_keys:
                quoted = ", ".join(f'"{name}"' for name in fk.columns)
                pieces.append(
                    f'FOREIGN KEY ({quoted}) REFERENCES "{fk.referenced_table}"'
                )
        statements.append(
            f'CREATE TABLE "{table.name}" (\n  ' + ",\n  ".join(pieces) + "\n)"
        )
    return statements


class SqliteBackend:
    """A component database materialised in sqlite3.

    Built with :meth:`from_store`: the ECR schema travels through
    :func:`to_relational` (the paper's physical-design hand-off), the DDL
    is executed against an in-memory sqlite database, and the instances
    and links are loaded into the translated tables.  ``execute`` compiles
    subrequests to SQL and returns rows matching the in-memory semantics.

    The connection is guarded by a lock: sqlite connections are not safe
    for concurrent statements, and the federation executor calls backends
    from worker threads.
    """

    def __init__(self, schema: Schema, name: str | None = None) -> None:
        self.schema = schema
        self.name = name if name is not None else schema.name
        self.relational = to_relational(schema)
        self.ddl = render_sql_ddl(self.relational)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        # comparisons delegate to the in-memory executor's _satisfies, so
        # per-value numeric coercion matches InstanceStore.select exactly
        self._conn.create_function(
            "repro_satisfies", 3, _udf_satisfies, deterministic=True
        )
        for statement in render_sql_ddl(self.relational, enforce_keys=False):
            self._conn.execute(statement)
        self._keys = self._key_columns()
        self._bool_attrs = {
            (structure.name, attribute.name)
            for structure in schema.object_classes()
            for attribute in structure.attributes
            if attribute.domain.kind is DomainKind.BOOLEAN
        }

    @classmethod
    def from_store(
        cls, store: InstanceStore, name: str | None = None
    ) -> "SqliteBackend":
        """Materialise an in-memory store as a sqlite component database."""
        backend = cls(store.schema, name)
        backend.load(store)
        return backend

    # -- schema bookkeeping ------------------------------------------------------

    def _key_columns(self) -> dict[str, list[str]]:
        """Per-class key column names, mirroring ``to_relational``'s rules."""
        keys: dict[str, list[str]] = {}
        for class_name in topological_order(self.schema):
            structure = self.schema.object_class(class_name)
            if isinstance(structure, Category):
                keys[class_name] = list(keys[structure.parents[0]])
            else:
                own = [a.name for a in structure.attributes if a.is_key]
                keys[class_name] = own or [f"{class_name.lower()}_id"]
        return keys

    def _chain(self, class_name: str) -> list[str]:
        """``class_name`` plus its first-parent ancestry up to the root."""
        chain = [class_name]
        current = class_name
        while isinstance(self.schema.object_class(current), Category):
            current = self.schema.object_class(current).parents[0]
            chain.append(current)
        return chain

    def _table(self, name: str) -> Table:
        return self.relational.table(name)

    # -- loading -----------------------------------------------------------------

    def load(self, store: InstanceStore) -> None:
        """Copy a populated store's instances and links into the tables."""
        if store.schema.name != self.schema.name:
            raise FederationError(
                f"backend holds {self.schema.name!r}, store holds "
                f"{store.schema.name!r}"
            )
        for class_name in topological_order(self.schema):
            table = self._table(class_name)
            columns = [column.name for column in table.columns]
            placeholders = ", ".join("?" for _ in columns)
            quoted = ", ".join(f'"{name}"' for name in columns)
            sql = f'INSERT INTO "{class_name}" ({quoted}) VALUES ({placeholders})'
            keys = set(self._keys[class_name])
            for instance in store.members(class_name):
                row = [
                    self._cell(instance, column, keys) for column in columns
                ]
                self._conn.execute(sql, row)
        for relationship in self.schema.relationship_sets():
            self._load_links(store, relationship.name)
        self._conn.commit()

    def _cell(self, instance, column: str, keys: set[str]) -> object:
        if column in instance.values:
            value = instance.values[column]
            return int(value) if isinstance(value, bool) else value
        if column in keys:
            return str(instance.instance_id)  # synthesised surrogate key
        return None  # a folded foreign key, filled when links load

    def _load_links(self, store: InstanceStore, name: str) -> None:
        relationship = self.schema.relationship_set(name)
        try:
            junction = self._table(name)
        except Exception:
            junction = None
        if junction is not None:
            self._load_junction_links(store, relationship, junction)
        else:
            self._load_folded_links(store, relationship)

    def _leg_key_values(self, store: InstanceStore, class_name, instance_id):
        instance = store.instance(instance_id)
        values = []
        for key in self._keys[class_name]:
            if key in instance.values:
                values.append(instance.values[key])
            else:
                values.append(str(instance.instance_id))
        return values

    def _load_junction_links(self, store, relationship, junction) -> None:
        columns: list[str] = []
        for leg in relationship.participations:
            prefix = (leg.role or leg.object_name).lower()
            columns += [
                f"{prefix}_{key}" for key in self._keys[leg.object_name]
            ]
        columns += [attribute.name for attribute in relationship.attributes]
        quoted = ", ".join(f'"{name}"' for name in columns)
        placeholders = ", ".join("?" for _ in columns)
        sql = (
            f'INSERT INTO "{relationship.name}" ({quoted}) '
            f"VALUES ({placeholders})"
        )
        for link in store.links(relationship.name):
            row: list[object] = []
            for leg in relationship.participations:
                row += self._leg_key_values(
                    store, leg.object_name, link.legs[leg.label]
                )
            row += [
                link.values.get(attribute.name)
                for attribute in relationship.attributes
            ]
            self._conn.execute(sql, row)

    def _folded_legs(self, relationship):
        """(one side, other side) of a folded binary relationship."""
        one_leg = next(
            leg
            for leg in relationship.participations
            if not leg.cardinality.is_many and leg.cardinality.max == 1
        )
        other_leg = next(
            leg for leg in relationship.participations if leg is not one_leg
        )
        return one_leg, other_leg

    def _load_folded_links(self, store, relationship) -> None:
        one_leg, other_leg = self._folded_legs(relationship)
        fold_columns = [
            f"{relationship.name.lower()}_{key}"
            for key in self._keys[other_leg.object_name]
        ]
        owner_keys = self._keys[one_leg.object_name]
        sets = ", ".join(f'"{name}" = ?' for name in fold_columns)
        where = " AND ".join(f'"{name}" IS ?' for name in owner_keys)
        sql = f'UPDATE "{one_leg.object_name}" SET {sets} WHERE {where}'
        for link in store.links(relationship.name):
            target_values = self._leg_key_values(
                store, other_leg.object_name, link.legs[other_leg.label]
            )
            owner_values = self._leg_key_values(
                store, one_leg.object_name, link.legs[one_leg.label]
            )
            self._conn.execute(sql, target_values + owner_values)

    # -- execution ---------------------------------------------------------------

    def execute(self, request: Request) -> list[tuple]:
        request.validate_against(self.schema)
        try:
            sql, params = self._compile(request)
            with self._lock:
                fetched = self._conn.execute(sql, params).fetchall()
        except FederationError:
            raise
        except sqlite3.Error as exc:
            raise BackendError(f"sqlite backend {self.name}: {exc}") from exc
        rows = [self._coerce_row(request, row) for row in fetched]
        return sorted(rows, key=_sort_key)

    def _coerce_row(self, request: Request, row: tuple) -> tuple:
        if not request.attributes:
            return ()
        values = list(row)
        for index, name in enumerate(request.attributes):
            owner = self._attribute_owner(request.object_name, name)
            if (owner, name) in self._bool_attrs and values[index] is not None:
                values[index] = bool(values[index])
        return tuple(values)

    def _attribute_owner(self, class_name: str, attribute: str) -> str:
        """The chain level whose table holds an attribute's column."""
        for level in self._chain(class_name):
            structure = self.schema.object_class(level)
            if any(a.name == attribute for a in structure.attributes):
                return level
        raise FederationError(
            f"attribute {attribute!r} of {class_name!r} is not reachable "
            f"through the first-parent chain (union-category attributes "
            f"are not supported by the sqlite backend)"
        )

    def _compile(self, request: Request) -> tuple[str, list[object]]:
        chain = self._chain(request.object_name)
        alias = {level: f"t{index}" for index, level in enumerate(chain)}
        root_keys = self._keys[request.object_name]
        joins = [f'"{chain[0]}" t0']
        for index in range(1, len(chain)):
            conditions = " AND ".join(
                f't{index - 1}."{key}" = t{index}."{key}"' for key in root_keys
            )
            joins.append(f'JOIN "{chain[index]}" t{index} ON {conditions}')
        select = (
            ", ".join(
                self._column_expr(chain, alias, request.object_name, name)
                for name in request.attributes
            )
            or "1"
        )
        where: list[str] = []
        params: list[object] = []
        for condition in request.conditions:
            clause, clause_params = self._condition_sql(
                chain, alias, request, condition
            )
            where.append(clause)
            params += clause_params
        for join in request.joins:
            clause, clause_params = self._join_sql(
                chain, alias, request.object_name, join.relationship, join.target
            )
            where.append(clause)
            params += clause_params
        sql = f"SELECT {select} FROM " + " ".join(joins)
        if where:
            sql += " WHERE " + " AND ".join(where)
        return sql, params

    def _column_expr(self, chain, alias, class_name, attribute) -> str:
        owner = self._attribute_owner(class_name, attribute)
        return f'{alias[owner]}."{attribute}"'

    def _condition_sql(
        self, chain, alias, request: Request, condition: Comparison
    ) -> tuple[str, list[object]]:
        expr = self._column_expr(
            chain, alias, request.object_name, condition.attribute
        )
        value = condition.value
        if isinstance(value, bool):
            value = int(value)
        return f"repro_satisfies({expr}, ?, ?)", [condition.operator, value]

    def _join_sql(
        self, chain, alias, class_name, relationship_name, target
    ) -> tuple[str, list[object]]:
        try:
            junction = self._table(relationship_name)
        except Exception:
            junction = None
        if junction is not None:
            return self._junction_join_sql(
                chain, alias, junction, relationship_name, target
            ), []
        return self._folded_join_sql(chain, alias, relationship_name, target), []

    def _related_tables(self, target: str) -> set[str]:
        """Classes whose rows can witness membership of ``target``."""
        related = set(self._chain(target))
        for class_name in topological_order(self.schema):
            if target in self._chain(class_name):
                related.add(class_name)
        return related

    def _junction_join_sql(
        self, chain, alias, junction, relationship_name, target
    ) -> str:
        # legs on any class sharing our root chain can carry our instance
        # (mirrors _joined: membership checks ignore which leg it is)
        our_related = self._related_tables(chain[0])
        our_fk = next(
            (fk for fk in junction.foreign_keys
             if fk.referenced_table in our_related),
            None,
        )
        if our_fk is None:
            raise FederationError(
                f"relationship {relationship_name!r} has no leg on "
                f"{chain[0]!r} or a related class"
            )
        target_related = self._related_tables(target)
        target_fk = next(
            (fk for fk in junction.foreign_keys
             if fk is not our_fk and fk.referenced_table in target_related),
            None,
        )
        if target_fk is None:
            raise FederationError(
                f"relationship {relationship_name!r} has no leg reaching "
                f"{target!r}"
            )
        # key names are shared along a first-parent chain, so the FK
        # columns join directly against t0's keys / the target table's keys
        our_keys = self._keys[chain[0]]
        on_ours = " AND ".join(
            f'jr."{column}" = t0."{key}"'
            for column, key in zip(our_fk.columns, our_keys)
        )
        target_keys = self._keys[target]
        on_target = " AND ".join(
            f'jr."{column}" = tt."{key}"'
            for column, key in zip(target_fk.columns, target_keys)
        )
        return (
            f'EXISTS (SELECT 1 FROM "{relationship_name}" jr '
            f'JOIN "{target}" tt ON {on_target} WHERE {on_ours})'
        )

    def _folded_join_sql(self, chain, alias, relationship_name, target) -> str:
        relationship = self.schema.relationship_set(relationship_name)
        one_leg, other_leg = self._folded_legs(relationship)
        fold_columns = [
            f"{relationship_name.lower()}_{key}"
            for key in self._keys[other_leg.object_name]
        ]
        if one_leg.object_name in chain:
            # the fold columns live on our own chain; check they land in target
            owner_alias = alias[one_leg.object_name]
            target_keys = self._keys[other_leg.object_name]
            conditions = " AND ".join(
                f'{owner_alias}."{column}" = tt."{key}"'
                for column, key in zip(fold_columns, target_keys)
            )
            return f'EXISTS (SELECT 1 FROM "{target}" tt WHERE {conditions})'
        # we are the referenced side: some owner row must point at us and
        # simultaneously witness membership of the target class
        our_keys = self._keys[chain[0]]
        pointing = " AND ".join(
            f'ol."{column}" = t0."{key}"'
            for column, key in zip(fold_columns, our_keys)
        )
        if target == one_leg.object_name:
            return (
                f'EXISTS (SELECT 1 FROM "{one_leg.object_name}" ol '
                f"WHERE {pointing})"
            )
        owner_keys = self._keys[one_leg.object_name]
        membership = " AND ".join(
            f'ol."{key}" = tt."{key}"' for key in owner_keys
        )
        return (
            f'EXISTS (SELECT 1 FROM "{one_leg.object_name}" ol '
            f'JOIN "{target}" tt ON {membership} WHERE {pointing})'
        )

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SqliteBackend({self.name})"


class FlakyBackend:
    """Deterministic fault injection around any component backend.

    Parameters
    ----------
    inner:
        The wrapped backend.
    latency:
        Seconds of simulated network/processing delay per call (applied
        before the inner call; also applied to failing calls).
    error_rate:
        Probability in ``[0, 1]`` that a call raises
        :class:`~repro.errors.BackendError` instead of answering.
    fail_first:
        Deterministically fail this many initial calls regardless of
        ``error_rate`` (drives retry/breaker tests without randomness).
    seed:
        Seed for the error stream; equal seeds give equal fault schedules.
    down:
        When true every call fails — a dead component.
    """

    def __init__(
        self,
        inner: ComponentBackend,
        *,
        latency: float = 0.0,
        error_rate: float = 0.0,
        fail_first: int = 0,
        seed: int = 0,
        down: bool = False,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.latency = latency
        self.error_rate = error_rate
        self.fail_first = fail_first
        self.down = down
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls = 0
        self.faults = 0

    def execute(self, request: Request) -> list[tuple]:
        with self._lock:
            self.calls += 1
            call_number = self.calls
            injected = (
                self.down
                or call_number <= self.fail_first
                or (self.error_rate > 0 and self._rng.random() < self.error_rate)
            )
            if injected:
                self.faults += 1
        if self.latency > 0:
            time.sleep(self.latency)
        if injected:
            raise BackendError(
                f"injected fault on {self.name} (call {call_number})"
            )
        return self.inner.execute(request)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlakyBackend({self.name}, calls={self.calls})"
