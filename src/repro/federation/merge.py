"""Assertion-aware merging of component answers.

The merger combines the rows the executor collected from each component
leg into one global answer.  The **row pipeline is identical to the
sequential oracle** (:func:`repro.data.migrate.federated_answer`):

1. pad each leg's rows to the global projection (attributes the
   component lacks become ``None``, at the positions
   :func:`~repro.data.migrate._global_positions` computes);
2. set-union across legs (exact duplicates collapse);
3. drop subsumed rows (``('cs', None)`` carries nothing once
   ``('cs', 'west')`` is present); and
4. sort with the store's row ordering.

so a healthy federated run returns *exactly* the oracle's rows — that is
the property the Hypothesis suite checks.  What the merge **strategy**
adds on top is interpretation, not different rows:

* under :attr:`~repro.federation.plan.MergeStrategy.KEY_MERGE` and
  :attr:`~repro.federation.plan.MergeStrategy.OUTER_UNION`, rows that
  agree on the entity key but disagree on another attribute are surfaced
  as :class:`MergeConflict` records (the components genuinely contradict
  each other about one real-world entity — the situation Screen 15's
  attribute-merge dialogue resolves at schema level);
* with ``reconcile_entities=True`` (opt-in, key-merge only) key-equal
  rows are additionally *fused*: each ``None`` is filled from a row that
  knows the value, shrinking the answer to one row per entity.  This is
  deliberately **not** the default because it goes beyond the oracle's
  certain-answer semantics — it asserts that key equality implies entity
  identity, which only the ``equals`` assertion justifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.instances import _sort_key
from repro.data.migrate import _eliminate_subsumed, _global_positions
from repro.federation.plan import FederatedPlan, MergeStrategy


@dataclass(frozen=True)
class MergeConflict:
    """Two components disagree about one entity's attribute value."""

    #: the key values identifying the entity (aligned with the plan's
    #: key positions)
    key: tuple
    #: the global projection attribute the components disagree on
    attribute: str
    #: the distinct non-None values seen for it, sorted for stability
    values: tuple

    def describe(self) -> str:
        rendered = " vs ".join(repr(value) for value in self.values)
        key = ", ".join(str(value) for value in self.key)
        return f"conflict on {self.attribute} for entity ({key}): {rendered}"


@dataclass
class MergeOutcome:
    """The merged rows plus everything the strategy learned on the way."""

    rows: list[tuple]
    strategy: MergeStrategy
    conflicts: list[MergeConflict] = field(default_factory=list)
    #: rows removed by subsumption or reconciliation (observability)
    eliminated: int = 0


def merge_legs(
    plan: FederatedPlan,
    leg_rows: list[list[tuple] | None],
    *,
    reconcile_entities: bool = False,
) -> MergeOutcome:
    """Merge per-leg answers into the global answer for ``plan``.

    ``leg_rows`` is aligned with ``plan.legs``; a ``None`` entry is a leg
    that produced no answer (failed component in partial-result mode) and
    contributes nothing.
    """
    answers: set[tuple] = set()
    padded_count = 0
    for leg, rows in zip(plan.legs, leg_rows):
        if rows is None:
            continue
        positions = _global_positions(plan.request, leg)
        width = len(plan.request.attributes)
        for row in rows:
            padded: list = [None] * width
            for local_index, global_index in enumerate(positions):
                padded[global_index] = row[local_index]
            answers.add(tuple(padded))
            padded_count += 1
    kept = _eliminate_subsumed(answers)
    conflicts = _find_conflicts(plan, kept)
    if reconcile_entities and plan.strategy is MergeStrategy.KEY_MERGE:
        kept = _reconcile(plan, kept)
    rows = sorted(kept, key=_sort_key)
    return MergeOutcome(
        rows=rows,
        strategy=plan.strategy,
        conflicts=conflicts,
        eliminated=padded_count - len(rows),
    )


def _groups(plan: FederatedPlan, rows: set[tuple]) -> dict[tuple, list[tuple]]:
    """Rows grouped by their (fully known) entity-key values."""
    if not plan.key_positions:
        return {}
    grouped: dict[tuple, list[tuple]] = {}
    for row in rows:
        key = tuple(row[index] for index in plan.key_positions)
        if any(value is None for value in key):
            continue  # unidentified rows cannot be grouped
        grouped.setdefault(key, []).append(row)
    return grouped


def _find_conflicts(
    plan: FederatedPlan, rows: set[tuple]
) -> list[MergeConflict]:
    """Key-equal rows disagreeing on a non-key attribute, as conflicts.

    Only strategies that treat key equality as (possible) entity identity
    report conflicts; a subset union's extra rows are legitimate
    refinements, not contradictions.
    """
    if plan.strategy is MergeStrategy.SUBSET_UNION:
        return []
    conflicts: list[MergeConflict] = []
    key_positions = set(plan.key_positions)
    groups = sorted(
        _groups(plan, rows).items(), key=lambda item: _sort_key(item[0])
    )
    for key, group in groups:
        if len(group) < 2:
            continue
        for index, attribute in enumerate(plan.request.attributes):
            if index in key_positions:
                continue
            values = sorted(
                {row[index] for row in group if row[index] is not None},
                key=str,
            )
            if len(values) > 1:
                conflicts.append(
                    MergeConflict(key, attribute, tuple(values))
                )
    return conflicts


def _reconcile(plan: FederatedPlan, rows: set[tuple]) -> set[tuple]:
    """Fuse key-equal rows, filling each ``None`` from rows that know.

    Where the group disagrees on a non-None value the *first* value in
    row-sort order wins (deterministic); the disagreement itself has
    already been reported as a :class:`MergeConflict`.
    """
    grouped = _groups(plan, rows)
    fused: set[tuple] = set()
    consumed: set[tuple] = set()
    for key, group in grouped.items():
        if len(group) < 2:
            continue
        ordered = sorted(group, key=_sort_key)
        merged = list(ordered[0])
        for row in ordered[1:]:
            for index, value in enumerate(row):
                if merged[index] is None:
                    merged[index] = value
        fused.add(tuple(merged))
        consumed.update(group)
    return (rows - consumed) | fused
