"""The explainable federated query plan.

A :class:`FederatedPlan` is what the planner hands the executor: the
per-component subrequests produced by
:func:`~repro.query.rewrite.rewrite_to_components`, plus the **merge
strategy** the assertion network justifies for combining the component
answers:

* every contributing pair asserted ``equals`` → :attr:`MergeStrategy.KEY_MERGE`
  (the components describe the same real-world population; key-equal rows
  are duplicates of one entity);
* pairs related by ``contains`` / ``contained-in`` (IS-A across
  components) → :attr:`MergeStrategy.SUBSET_UNION` (one side's answers
  are a subset of the other's; subsumed rows carry no information);
* any ``may-be`` (overlap), disjoint, or unasserted pair →
  :attr:`MergeStrategy.OUTER_UNION` (nothing may be dropped beyond exact
  and subsumed duplicates, and key collisions are *conflicts* to surface,
  not duplicates to eliminate).

All three strategies produce the same certain-answer rows as the
sequential oracle (:func:`repro.data.federated_answer`); they differ in
what else the merge is entitled to do — reconcile entities, report
conflicts — which is exactly the information :meth:`FederatedPlan.explain`
renders.

Plans serialise to JSON (:meth:`FederatedPlan.to_dict`) so the data
dictionary can persist them alongside the mappings they were derived
from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.query.ast import Request
from repro.query.parser import parse_request
from repro.query.rewrite import ComponentRequest


class MergeStrategy(enum.Enum):
    """How component answers combine, derived from the assertion network."""

    #: all contributing pairs are ``equals`` — key-based duplicate elimination
    KEY_MERGE = "key-merge"
    #: containment among contributors — subset-aware union
    SUBSET_UNION = "subset-union"
    #: overlap / disjoint / unknown — outer union with conflict surfacing
    OUTER_UNION = "outer-union"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PairAssertion:
    """The assertion (if any) between two contributing component objects."""

    first: str   #: ``schema.object`` of one leg
    second: str  #: ``schema.object`` of the other leg
    code: int | None  #: the Screen 8 assertion code, or ``None`` if unasserted

    def describe(self) -> str:
        from repro.assertions.kinds import AssertionKind

        if self.code is None:
            return f"{self.first} ? {self.second} (no assertion)"
        kind = AssertionKind.from_code(self.code)
        return kind.describe(self.first, self.second)


@dataclass(frozen=True)
class FederatedPlan:
    """One planned federated query: subrequests plus a merge strategy."""

    #: the global request the plan answers
    request: Request
    #: one rewritten subrequest per contributing component
    legs: tuple[ComponentRequest, ...]
    #: how the component answers are merged
    strategy: MergeStrategy
    #: the assertions that justified :attr:`strategy`
    pair_assertions: tuple[PairAssertion, ...] = ()
    #: projection positions holding key attributes of the integrated class
    key_positions: tuple[int, ...] = ()
    #: the registry/mapping version the plan was derived under (cache token)
    version_token: int = 0

    @property
    def components(self) -> list[str]:
        """The component schemas the plan fans out to, in leg order."""
        return [leg.schema for leg in self.legs]

    def explain(self) -> str:
        """A multi-line, human-readable rendering of the plan."""
        lines = [f"federated plan for: {self.request}"]
        lines.append(f"  merge strategy : {self.strategy}")
        if self.key_positions:
            keys = ", ".join(
                self.request.attributes[index] for index in self.key_positions
            )
            lines.append(f"  entity keys    : {keys}")
        lines.append(f"  fan-out        : {len(self.legs)} component leg(s)")
        for leg in self.legs:
            lines.append(f"    {leg}")
        if self.pair_assertions:
            lines.append("  justified by   :")
            for pair in self.pair_assertions:
                lines.append(f"    {pair.describe()}")
        return "\n".join(lines)

    # -- persistence (the data dictionary stores plans with mappings) -------

    def to_dict(self) -> dict:
        """A JSON-friendly form; :meth:`from_dict` round-trips it."""
        return {
            "request": str(self.request),
            "strategy": self.strategy.value,
            "legs": [
                {
                    "schema": leg.schema,
                    "request": str(leg.request),
                    "missing": list(leg.missing_attributes),
                }
                for leg in self.legs
            ],
            "pair_assertions": [
                [pair.first, pair.second, pair.code]
                for pair in self.pair_assertions
            ],
            "key_positions": list(self.key_positions),
            "version_token": self.version_token,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FederatedPlan":
        return cls(
            request=parse_request(data["request"]),
            legs=tuple(
                ComponentRequest(
                    entry["schema"],
                    parse_request(entry["request"]),
                    list(entry.get("missing", ())),
                )
                for entry in data.get("legs", ())
            ),
            strategy=MergeStrategy(data["strategy"]),
            pair_assertions=tuple(
                PairAssertion(first, second, code)
                for first, second, code in data.get("pair_assertions", ())
            ),
            key_positions=tuple(data.get("key_positions", ())),
            version_token=int(data.get("version_token", 0)),
        )
