"""Federated query execution over the integrated schema.

The paper's superview exists so that "a user can pose a single query
against the integrated schema" while the data stays in the component
databases.  This package is that runtime: a global
:class:`~repro.query.ast.Request` is planned onto the components
(:mod:`~repro.federation.planner`), executed concurrently with retries,
timeouts and circuit breakers (:mod:`~repro.federation.executor`)
against pluggable component backends — in-memory, sqlite via the
relational translation, or fault-injected
(:mod:`~repro.federation.backends`) — and the answers are merged under
the strategy the assertion network justifies
(:mod:`~repro.federation.plan`, :mod:`~repro.federation.merge`).

The sequential reference semantics live in
:func:`repro.data.federated_answer`; on a healthy run the engine's rows
equal the oracle's exactly.  Start with
:class:`~repro.federation.engine.FederationEngine`; see
``docs/FEDERATION.md`` for the full tour.
"""

from repro.federation.backends import (
    ComponentBackend,
    FlakyBackend,
    InstanceBackend,
    SqliteBackend,
    render_sql_ddl,
)
from repro.federation.engine import FederationEngine, FederationResult
from repro.federation.executor import (
    ExecutionPolicy,
    ExecutionResult,
    FederationExecutor,
)
from repro.federation.health import (
    BreakerState,
    CircuitBreaker,
    ComponentStatus,
    FederationHealth,
)
from repro.federation.merge import MergeConflict, MergeOutcome, merge_legs
from repro.federation.plan import FederatedPlan, MergeStrategy, PairAssertion
from repro.federation.planner import QueryPlanner

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ComponentBackend",
    "ComponentStatus",
    "ExecutionPolicy",
    "ExecutionResult",
    "FederatedPlan",
    "FederationEngine",
    "FederationExecutor",
    "FederationHealth",
    "FederationResult",
    "FlakyBackend",
    "InstanceBackend",
    "MergeConflict",
    "MergeOutcome",
    "MergeStrategy",
    "PairAssertion",
    "QueryPlanner",
    "SqliteBackend",
    "merge_legs",
    "render_sql_ddl",
]
