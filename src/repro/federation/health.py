"""Fault-tolerance state: circuit breakers and the federation health report.

The executor never lets one slow or dead component database take the
whole federation down.  Two mechanisms cooperate:

* a per-backend :class:`CircuitBreaker` — after ``failure_threshold``
  consecutive failures the breaker *opens* and subsequent queries skip
  the backend outright (no connection attempts, no timeout waits); after
  ``reset_after`` seconds it goes *half-open* and admits one probe, whose
  outcome closes or re-opens it; and
* a :class:`FederationHealth` report — one :class:`ComponentStatus` per
  planned leg, recording what actually happened (rows, attempts,
  latency, error, breaker state).  In partial-result mode the report is
  returned *with* the answers instead of an exception, so callers can
  render "answers from 7 of 8 components" rather than failing the query.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable


class BreakerState(enum.Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"        #: healthy; requests flow
    OPEN = "open"            #: failing; requests are skipped
    HALF_OPEN = "half-open"  #: cooling off finished; one probe admitted

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CircuitBreaker:
    """Consecutive-failure breaker for one backend.

    ``clock`` is injectable so tests drive the cooldown deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> BreakerState:
        if self._opened_at is None:
            return BreakerState.CLOSED
        if self._clock() - self._opened_at >= self.reset_after:
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allows(self) -> bool:
        """Whether a request may be sent to the backend right now."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self._failures}/{self.failure_threshold})"
        )


@dataclass
class ComponentStatus:
    """What one planned component leg did during a federated query."""

    component: str            #: the component schema name
    backend: str              #: the backend's display name
    ok: bool                  #: did the leg produce an answer?
    rows: int = 0             #: rows contributed (0 when failed)
    attempts: int = 0         #: execution attempts (1 + retries used)
    latency_s: float = 0.0    #: wall time spent on the leg
    error: str = ""           #: final error text, empty when ok
    breaker: str = "closed"   #: breaker state *after* the leg
    timed_out: bool = False   #: leg abandoned on the per-component timeout
    skipped: bool = False     #: leg never attempted (breaker open / no backend)

    def describe(self) -> str:
        if self.ok:
            return (
                f"{self.component}: ok, {self.rows} row(s) in "
                f"{self.latency_s * 1e3:.1f} ms ({self.attempts} attempt(s))"
            )
        reason = "skipped" if self.skipped else (
            "timed out" if self.timed_out else "failed"
        )
        detail = f" — {self.error}" if self.error else ""
        return (
            f"{self.component}: {reason} after {self.attempts} attempt(s), "
            f"breaker {self.breaker}{detail}"
        )


@dataclass
class FederationHealth:
    """The per-component outcome of one federated query."""

    statuses: list[ComponentStatus] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every planned component answered."""
        return all(status.ok for status in self.statuses)

    @property
    def degraded(self) -> bool:
        """Some component answered, some did not (a *partial* result)."""
        return not self.ok and any(status.ok for status in self.statuses)

    @property
    def live(self) -> list[ComponentStatus]:
        return [status for status in self.statuses if status.ok]

    @property
    def failed(self) -> list[ComponentStatus]:
        return [status for status in self.statuses if not status.ok]

    def for_component(self, component: str) -> ComponentStatus:
        for status in self.statuses:
            if status.component == component:
                return status
        raise KeyError(component)

    def summary(self) -> str:
        """One line: ``7/8 components answered`` plus failure notes."""
        total = len(self.statuses)
        answered = len(self.live)
        line = f"{answered}/{total} component(s) answered"
        notes = [status.describe() for status in self.failed]
        return line if not notes else line + "; " + "; ".join(notes)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "degraded": self.degraded,
            "components": [
                {
                    "component": status.component,
                    "backend": status.backend,
                    "ok": status.ok,
                    "rows": status.rows,
                    "attempts": status.attempts,
                    "latency_s": round(status.latency_s, 6),
                    "error": status.error,
                    "breaker": status.breaker,
                    "timed_out": status.timed_out,
                    "skipped": status.skipped,
                }
                for status in self.statuses
            ],
        }
