"""Relational → ECR translation (the Navathe & Awong 1987 substrate).

The structural rules, in the order they are applied:

1. A table whose primary key is entirely one foreign key referencing a
   single table is a **subtype table**: it becomes a *category* of the
   referenced table's entity set, owning its non-key columns.
2. A table whose primary key is the concatenation of two or more foreign
   keys is a **junction table**: it becomes a *relationship set* over the
   referenced entity sets, owning its non-key columns; each referenced
   side participates ``(0,n)``.
3. Every other table becomes an **entity set**; its non-PK foreign keys
   each become a binary *relationship set* named ``<table>_<column>``
   with the owning side ``(0,1)`` (or ``(1,1)`` for a NOT NULL key) and
   the referenced side ``(0,n)``.

Semantic refinements Navathe & Awong obtain by interrogating the DDA
(better names, tighter cardinalities) can be applied afterwards by editing
the resulting ECR schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.attributes import Attribute
from repro.ecr.domains import domain_from_name
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import TranslationError


@dataclass(frozen=True)
class Column:
    """One relational column."""

    name: str
    type_name: str = "char"
    is_primary_key: bool = False
    nullable: bool = True


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: local columns referencing another table's key."""

    columns: tuple[str, ...]
    referenced_table: str

    def __post_init__(self) -> None:
        if not self.columns:
            raise TranslationError("foreign key needs at least one column")


@dataclass
class Table:
    """One relational table with its keys."""

    name: str
    columns: list[Column]
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def primary_key_columns(self) -> list[str]:
        return [column.name for column in self.columns if column.is_primary_key]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise TranslationError(f"table {self.name!r} has no column {name!r}")


@dataclass
class RelationalSchema:
    """A named collection of tables."""

    name: str
    tables: list[Table] = field(default_factory=list)

    def table(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise TranslationError(f"no table {name!r} in schema {self.name!r}")


def translate_relational(source: RelationalSchema) -> Schema:
    """Translate a relational schema into an equivalent ECR schema."""
    schema = Schema(source.name, f"translated from relational {source.name}")
    table_names = {table.name for table in source.tables}
    for table in source.tables:
        for fk in table.foreign_keys:
            if fk.referenced_table not in table_names:
                raise TranslationError(
                    f"table {table.name!r} references unknown table "
                    f"{fk.referenced_table!r}"
                )
    subtype_tables = [t for t in source.tables if _is_subtype(t)]
    junction_tables = [
        t for t in source.tables if t not in subtype_tables and _is_junction(t)
    ]
    plain_tables = [
        t
        for t in source.tables
        if t not in subtype_tables and t not in junction_tables
    ]
    for table in plain_tables:
        schema.add(EntitySet(table.name, _own_attributes(table, full=True)))
    for table in subtype_tables:
        parent = table.foreign_keys[0].referenced_table
        schema.add(
            Category(
                table.name,
                _own_attributes(table, full=False),
                parents=[parent],
            )
        )
    for table in junction_tables:
        participations = [
            Participation(fk.referenced_table, CardinalityConstraint(0, -1))
            for fk in table.foreign_keys
        ]
        schema.add(
            RelationshipSet(
                table.name,
                _own_attributes(table, full=False),
                participations=participations,
            )
        )
    for table in plain_tables:
        _foreign_key_relationships(schema, table)
    return schema


def _is_subtype(table: Table) -> bool:
    """PK is exactly one FK to a single table → subtype (category)."""
    pk = set(table.primary_key_columns())
    if not pk or len(table.foreign_keys) != 1:
        return False
    return set(table.foreign_keys[0].columns) == pk


def _is_junction(table: Table) -> bool:
    """PK is the concatenation of >= 2 FKs → junction (relationship set)."""
    pk = set(table.primary_key_columns())
    if not pk or len(table.foreign_keys) < 2:
        return False
    fk_columns: set[str] = set()
    for fk in table.foreign_keys:
        fk_columns.update(fk.columns)
    return fk_columns == pk


def _own_attributes(table: Table, full: bool) -> list[Attribute]:
    """Columns that stay as attributes (FK columns are consumed by arcs).

    ``full`` keeps PK columns (plain entity tables); subtype/junction
    tables drop their PK, which is structural.
    """
    fk_columns: set[str] = set()
    for fk in table.foreign_keys:
        fk_columns.update(fk.columns)
    attributes = []
    for column in table.columns:
        if column.name in fk_columns:
            continue
        if not full and column.is_primary_key:
            continue
        attributes.append(
            Attribute(
                column.name,
                domain_from_name(column.type_name),
                column.is_primary_key,
            )
        )
    return attributes


def _foreign_key_relationships(schema: Schema, table: Table) -> None:
    """Each non-PK foreign key of a plain table becomes a relationship set."""
    pk = set(table.primary_key_columns())
    for fk in table.foreign_keys:
        if set(fk.columns) <= pk:
            continue  # part of identity, handled by junction/subtype rules
        mandatory = all(not table.column(name).nullable for name in fk.columns)
        low = 1 if mandatory else 0
        name = f"{table.name}_{'_'.join(fk.columns)}"
        schema.add(
            RelationshipSet(
                name,
                participations=[
                    Participation(table.name, CardinalityConstraint(low, 1)),
                    Participation(
                        fk.referenced_table, CardinalityConstraint(0, -1)
                    ),
                ],
            )
        )
