"""Translation of conventional data-model schemas into the ECR model.

Before integration, "all component schemas must be specified using a common
data model"; schemas defined in other models are translated first.  The
paper points at Navathe & Awong (1987), who interrogate a DDA to map
relational and hierarchical schemas into ECR; this package implements the
structural core of those procedures:

* :func:`translate_relational` — tables become entity sets, subtype tables
  (PK = FK) become categories, junction tables and plain foreign keys
  become relationship sets; and
* :func:`translate_hierarchical` — record types become entity sets and
  parent-child arcs become (1,1)/(0,n) relationship sets.
"""

from repro.translate.relational import (
    Column,
    ForeignKey,
    Table,
    RelationalSchema,
    translate_relational,
)
from repro.translate.to_relational import to_relational
from repro.translate.hierarchical import (
    Field,
    RecordType,
    HierarchicalSchema,
    translate_hierarchical,
)

__all__ = [
    "Column",
    "ForeignKey",
    "Table",
    "RelationalSchema",
    "translate_relational",
    "to_relational",
    "Field",
    "RecordType",
    "HierarchicalSchema",
    "translate_hierarchical",
]
