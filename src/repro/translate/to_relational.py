"""ECR → relational translation (the downstream physical-design step).

The paper's future work sketches a tool pipeline: schema translation feeds
the integration tool, "with the result feeding into a physical database
design tool".  This module provides that outbound step: the classic
ER-to-relational mapping, extended for ECR categories.

Rules:

1. Every **entity set** becomes a table; its attributes become columns and
   its key attributes the primary key (a surrogate ``<name>_id`` key is
   synthesised when the entity set has no key).
2. Every **category** becomes a *subtype table*: primary key = foreign key
   referencing its first parent's key, plus its own attributes.  Further
   parents (union categories) contribute additional foreign keys.
3. A **binary relationship set** in which some leg has maximum
   cardinality 1 and the set owns no attributes is folded into that leg's
   table as a foreign key (nullable unless the leg is mandatory).
4. Every other relationship set (many-to-many, n-ary, attributed, or with
   roles) becomes a *junction table* whose primary key concatenates the
   participants' keys and whose extra columns are the relationship's
   attributes.
"""

from __future__ import annotations

from repro.ecr.domains import DomainKind
from repro.ecr.objects import Category
from repro.ecr.relationships import RelationshipSet
from repro.ecr.schema import Schema
from repro.ecr.walk import inherited_attributes, topological_order
from repro.errors import TranslationError
from repro.translate.relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
)


def to_relational(schema: Schema) -> RelationalSchema:
    """Translate an ECR schema into an equivalent relational schema."""
    result = RelationalSchema(schema.name)
    key_columns: dict[str, list[str]] = {}
    tables: dict[str, Table] = {}
    for class_name in topological_order(schema):
        structure = schema.object_class(class_name)
        if isinstance(structure, Category):
            table = _subtype_table(schema, structure, key_columns)
        else:
            table = _entity_table(structure, key_columns)
        tables[class_name] = table
        result.tables.append(table)
    for relationship in schema.relationship_sets():
        _translate_relationship(relationship, tables, key_columns, result)
    return result


def _domain_name(kind: DomainKind) -> str:
    return kind.value


def _entity_table(structure, key_columns: dict[str, list[str]]) -> Table:
    columns = [
        Column(
            attribute.name,
            _domain_name(attribute.domain.kind),
            attribute.is_key,
            nullable=not attribute.is_key,
        )
        for attribute in structure.attributes
    ]
    keys = [column.name for column in columns if column.is_primary_key]
    if not keys:
        surrogate = f"{structure.name.lower()}_id"
        columns.insert(0, Column(surrogate, "char", True, nullable=False))
        keys = [surrogate]
    key_columns[structure.name] = keys
    return Table(structure.name, columns)


def _subtype_table(
    schema: Schema, category: Category, key_columns: dict[str, list[str]]
) -> Table:
    primary_parent = category.parents[0]
    parent_keys = key_columns[primary_parent]
    columns = [
        Column(name, _parent_key_type(schema, primary_parent, name), True,
               nullable=False)
        for name in parent_keys
    ]
    foreign_keys = [ForeignKey(tuple(parent_keys), primary_parent)]
    for extra_parent in category.parents[1:]:
        extra_keys = key_columns[extra_parent]
        for name in extra_keys:
            if not any(column.name == name for column in columns):
                columns.append(
                    Column(
                        name,
                        _parent_key_type(schema, extra_parent, name),
                        False,
                        nullable=True,
                    )
                )
        foreign_keys.append(ForeignKey(tuple(extra_keys), extra_parent))
    for attribute in category.attributes:
        columns.append(
            Column(
                attribute.name,
                _domain_name(attribute.domain.kind),
                False,
                nullable=True,
            )
        )
    key_columns[category.name] = list(parent_keys)
    return Table(category.name, columns, foreign_keys)


def _parent_key_type(schema: Schema, parent: str, key_name: str) -> str:
    for attribute in inherited_attributes(schema, parent):
        if attribute.name == key_name:
            return _domain_name(attribute.domain.kind)
    return "char"  # synthesised surrogate keys are char


def _translate_relationship(
    relationship: RelationshipSet,
    tables: dict[str, Table],
    key_columns: dict[str, list[str]],
    result: RelationalSchema,
) -> None:
    foldable = (
        relationship.degree == 2
        and not relationship.attributes
        and not any(leg.role for leg in relationship.participations)
        and any(
            not leg.cardinality.is_many and leg.cardinality.max == 1
            for leg in relationship.participations
        )
    )
    if foldable:
        _fold_into_foreign_key(relationship, tables, key_columns)
    else:
        result.tables.append(
            _junction_table(relationship, key_columns)
        )


def _fold_into_foreign_key(
    relationship: RelationshipSet,
    tables: dict[str, Table],
    key_columns: dict[str, list[str]],
) -> None:
    """Rule 3: the max-1 side gets foreign-key columns to the other side."""
    one_leg = next(
        leg
        for leg in relationship.participations
        if not leg.cardinality.is_many and leg.cardinality.max == 1
    )
    other_leg = next(
        leg for leg in relationship.participations if leg is not one_leg
    )
    owner = tables[one_leg.object_name]
    target_keys = key_columns[other_leg.object_name]
    fk_columns = []
    for key_name in target_keys:
        column_name = f"{relationship.name.lower()}_{key_name}"
        owner.columns.append(
            Column(
                column_name,
                "char",
                False,
                nullable=not one_leg.cardinality.is_mandatory,
            )
        )
        fk_columns.append(column_name)
    owner.foreign_keys.append(
        ForeignKey(tuple(fk_columns), other_leg.object_name)
    )


def _junction_table(
    relationship: RelationshipSet, key_columns: dict[str, list[str]]
) -> Table:
    """Rule 4: a table keyed by the participants' keys.

    When some leg has maximum cardinality 1, each of its members appears
    in at most one relationship instance, so that leg's key columns alone
    form the primary key; otherwise the concatenation of all legs does.
    """
    max_one_legs = [
        leg
        for leg in relationship.participations
        if not leg.cardinality.is_many and leg.cardinality.max == 1
    ]
    pk_legs = {id(max_one_legs[0])} if max_one_legs else {
        id(leg) for leg in relationship.participations
    }
    columns: list[Column] = []
    foreign_keys: list[ForeignKey] = []
    used_names: set[str] = set()
    for leg in relationship.participations:
        prefix = (leg.role or leg.object_name).lower()
        in_pk = id(leg) in pk_legs
        leg_columns = []
        for key_name in key_columns[leg.object_name]:
            column_name = f"{prefix}_{key_name}"
            if column_name in used_names:
                raise TranslationError(
                    f"column name clash {column_name!r} translating "
                    f"{relationship.name!r}"
                )
            used_names.add(column_name)
            columns.append(
                Column(column_name, "char", in_pk, nullable=False)
            )
            leg_columns.append(column_name)
        foreign_keys.append(ForeignKey(tuple(leg_columns), leg.object_name))
    for attribute in relationship.attributes:
        columns.append(
            Column(
                attribute.name,
                _domain_name(attribute.domain.kind),
                False,
                nullable=True,
            )
        )
    return Table(relationship.name, columns, foreign_keys)
