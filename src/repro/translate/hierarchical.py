"""Hierarchical (IMS-style) → ECR translation.

A hierarchical database is a forest of record types; every non-root record
type has exactly one parent and exists only under a parent occurrence.
The structural translation:

* every record type becomes an entity set (its first field is taken as the
  key unless flagged otherwise);
* every parent-child arc becomes a binary relationship set
  ``<parent>_<child>`` in which the child participates ``(1,1)`` (a child
  occurrence hangs under exactly one parent) and the parent ``(0,n)``.

Virtual parent-child relationships (IMS logical databases) are modelled by
listing a second parent name in ``virtual_parents``; each contributes a
further relationship set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.attributes import Attribute
from repro.ecr.domains import domain_from_name
from repro.ecr.objects import EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import TranslationError


@dataclass(frozen=True)
class Field:
    """One field of a hierarchical record type."""

    name: str
    type_name: str = "char"
    is_key: bool = False


@dataclass
class RecordType:
    """A record type with an optional parent (None for roots)."""

    name: str
    fields: list[Field]
    parent: str | None = None
    virtual_parents: list[str] = field(default_factory=list)


@dataclass
class HierarchicalSchema:
    """A named forest of record types."""

    name: str
    records: list[RecordType] = field(default_factory=list)

    def record(self, name: str) -> RecordType:
        for record in self.records:
            if record.name == name:
                return record
        raise TranslationError(f"no record type {name!r} in {self.name!r}")


def translate_hierarchical(source: HierarchicalSchema) -> Schema:
    """Translate a hierarchical schema into an equivalent ECR schema."""
    schema = Schema(source.name, f"translated from hierarchical {source.name}")
    names = {record.name for record in source.records}
    for record in source.records:
        for parent in _parents(record):
            if parent not in names:
                raise TranslationError(
                    f"record {record.name!r} hangs under unknown parent "
                    f"{parent!r}"
                )
        _check_no_cycle(source, record)
        schema.add(EntitySet(record.name, _attributes(record)))
    for record in source.records:
        for index, parent in enumerate(_parents(record)):
            suffix = "" if index == 0 else f"_v{index}"
            schema.add(
                RelationshipSet(
                    f"{parent}_{record.name}{suffix}",
                    participations=[
                        Participation(parent, CardinalityConstraint(0, -1)),
                        Participation(record.name, CardinalityConstraint(1, 1)),
                    ],
                )
            )
    return schema


def _parents(record: RecordType) -> list[str]:
    parents = [record.parent] if record.parent else []
    return parents + list(record.virtual_parents)


def _check_no_cycle(source: HierarchicalSchema, record: RecordType) -> None:
    seen = {record.name}
    current = record
    while current.parent:
        if current.parent in seen:
            raise TranslationError(
                f"parent cycle through record {current.parent!r}"
            )
        seen.add(current.parent)
        current = source.record(current.parent)


def _attributes(record: RecordType) -> list[Attribute]:
    if not record.fields:
        raise TranslationError(f"record {record.name!r} has no fields")
    any_key = any(field_def.is_key for field_def in record.fields)
    attributes = []
    for index, field_def in enumerate(record.fields):
        is_key = field_def.is_key or (not any_key and index == 0)
        attributes.append(
            Attribute(field_def.name, domain_from_name(field_def.type_name), is_key)
        )
    return attributes
