"""The AC-3-style finite-domain propagation engine over assertion facts.

The network (:class:`~repro.assertions.network.AssertionNetwork`) derives
assertions *incrementally*: each DDA action seeds path consistency from the
one edge it changed.  This module is the **batch** formulation of the same
constraint problem, in the shape of the pyontology exemplar (axioms
compiled onto finite domains + a worklist solver): every asserted fact
becomes a singleton domain over its object pair, every triangle of
non-universal edges becomes a composition constraint, and an AC-3 worklist
revises domains to the fixpoint.

Because both engines run chaotic iteration of the *same* monotone revision
operator (``R(x,y) ∩= R(x,via) ∘ R(via,y)``) from the same initial
constraints, they converge to the same unique fixpoint on conflict-free
inputs — the property the Hypothesis suite in ``tests/solver`` checks
against the network oracle.  The batch engine differs operationally:

* the worklist is **adjacency-restricted** — a revision is attempted only
  through third objects that already carry a non-universal edge to one end
  of the popped pair.  :func:`~repro.assertions.composition.compose_sets`
  short-circuits to the universal set whenever either side is universal,
  so every skipped triangle is a guaranteed no-op.  On sparse networks
  (the realistic case: a DDA asserts far fewer pairs than n²) this does
  measurably fewer revisions than the oracle's all-third-objects scan —
  ``benchmarks/record_solver.py`` tracks the ratio;
* inconsistency is answered with a :class:`~repro.errors.ConsistencyFailure`
  carrying a **minimal conflict set** (see :mod:`repro.solver.explain`)
  instead of one derivation chain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.assertions.assertion import Assertion, Pair, ordered_pair
from repro.assertions.composition import (
    ALL_RELATIONS,
    compose_sets,
    converse_set,
)
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.ecr.coerce import coerce_object_ref
from repro.ecr.schema import ObjectRef
from repro.errors import AssertionSpecError, ConsistencyFailure
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.assertions.network import AssertionNetwork


@dataclass
class Propagation:
    """Raw outcome of one worklist run.

    ``domains`` maps canonical pairs to their (narrowed) feasible sets;
    pairs absent from the table are universal.  ``culprit`` is the pair
    whose domain became empty, or ``None`` on success.  ``steps`` counts
    triangle revisions actually composed.
    """

    domains: dict[Pair, frozenset[Relation]]
    steps: int
    culprit: Pair | None


def _get(
    domains: dict[Pair, frozenset[Relation]],
    first: ObjectRef,
    second: ObjectRef,
) -> frozenset[Relation]:
    pair = ordered_pair(first, second)
    stored = domains.get(pair, ALL_RELATIONS)
    if pair != (first, second):
        return converse_set(stored)
    return stored


def _set(
    domains: dict[Pair, frozenset[Relation]],
    first: ObjectRef,
    second: ObjectRef,
    relations: frozenset[Relation],
) -> None:
    pair = ordered_pair(first, second)
    if pair != (first, second):
        relations = converse_set(relations)
    domains[pair] = relations


def _oriented_relation(fact: Assertion) -> Relation:
    """The fact's relation read along its canonical pair."""
    pair = fact.pair
    if pair == (fact.first, fact.second):
        return fact.relation
    return fact.kind.converse.relation


def propagate(
    facts: Sequence[Assertion],
    *,
    counters: AnalysisCounters | None = None,
) -> Propagation:
    """Compile facts to singleton domains and revise to the fixpoint.

    Pure function over its inputs — no network is touched — which is what
    makes trial propagation (suggestions, what-if explanations) and the
    QuickXplain subset probes cheap to express.
    """
    domains: dict[Pair, frozenset[Relation]] = {}
    steps = 0
    for fact in facts:
        if fact.first == fact.second:
            raise AssertionSpecError(
                f"cannot assert {fact.first} against itself"
            )
        pair = fact.pair
        narrowed = domains.get(pair, ALL_RELATIONS) & {
            _oriented_relation(fact)
        }
        domains[pair] = narrowed
        if not narrowed:
            if counters is not None:
                counters.solver_propagation_steps += steps
            return Propagation(domains, steps, pair)

    # Non-universal adjacency: the only third objects worth revising
    # through.  compose_sets() yields the universal set when either side
    # is universal, so any triangle with an unlisted leg cannot narrow.
    neighbours: dict[ObjectRef, set[ObjectRef]] = {}
    for left, right in domains:
        neighbours.setdefault(left, set()).add(right)
        neighbours.setdefault(right, set()).add(left)

    queue: deque[Pair] = deque(domains)
    queued: set[Pair] = set(queue)
    culprit: Pair | None = None
    while queue and culprit is None:
        pair = queue.popleft()
        queued.discard(pair)
        i, j = pair
        # Revise (i, k) through j and (k, j) through i, for every k that
        # carries a constrained edge to i or j.
        for k in list(neighbours.get(i, ()) | neighbours.get(j, ())):
            if k == i or k == j:
                continue
            for x, y, via in ((i, k, j), (k, j, i)):
                rel_x_via = _get(domains, x, via)
                rel_via_y = _get(domains, via, y)
                if rel_x_via == ALL_RELATIONS and rel_via_y == ALL_RELATIONS:
                    continue
                steps += 1
                old = _get(domains, x, y)
                new = old & compose_sets(rel_x_via, rel_via_y)
                if new == old:
                    continue
                _set(domains, x, y, new)
                revised = ordered_pair(x, y)
                neighbours.setdefault(x, set()).add(y)
                neighbours.setdefault(y, set()).add(x)
                if not new:
                    culprit = revised
                    break
                if revised not in queued:
                    queue.append(revised)
                    queued.add(revised)
            if culprit is not None:
                break
    if counters is not None:
        counters.solver_propagation_steps += steps
    return Propagation(domains, steps, culprit)


def derived_from(
    domains: dict[Pair, frozenset[Relation]],
    specified_pairs: set[Pair],
) -> dict[Pair, Assertion]:
    """Derived assertions: singleton, unspecified pairs, network-style.

    Uses the same kind mapping as the network's ``_refresh_derived``: a
    derived DR pair defaults to the integrable code 4 and a derived PO
    pair to "may be", with ``integrability_decided`` False for both —
    only an explicit DDA code decides integrability.
    """
    derived: dict[Pair, Assertion] = {}
    for pair, relations in domains.items():
        if len(relations) != 1 or pair in specified_pairs:
            continue
        relation = next(iter(relations))
        kind = (
            AssertionKind.DISJOINT_INTEGRABLE
            if relation is Relation.DR
            else AssertionKind.from_relation(relation)
        )
        derived[pair] = Assertion(
            pair[0],
            pair[1],
            kind,
            Source.DERIVED,
            integrability_decided=relation not in (Relation.DR, Relation.PO),
        )
    return derived


@dataclass
class SolverSolution:
    """A successful fixpoint: the narrowed domains plus derived assertions."""

    facts: tuple[Assertion, ...]
    feasible: dict[Pair, frozenset[Relation]]
    derived: tuple[Assertion, ...]
    steps: int

    def feasible_between(
        self, first: ObjectRef | str, second: ObjectRef | str
    ) -> frozenset[Relation]:
        """Feasible relations between two objects, oriented first→second."""
        first = coerce_object_ref(first)
        second = coerce_object_ref(second)
        if first == second:
            return frozenset({Relation.EQ})
        return _get(self.feasible, first, second)


class ConstraintSolver:
    """Batch constraint solver over a set of asserted facts.

    Build one from raw :class:`~repro.assertions.assertion.Assertion`
    facts or :meth:`from_network`, then :meth:`solve`.  On inconsistency
    :meth:`solve` raises :class:`~repro.errors.ConsistencyFailure` whose
    ``conflict`` is a verified-minimal subset of the input facts.
    """

    def __init__(
        self,
        facts: Iterable[Assertion] = (),
        *,
        counters: AnalysisCounters | None = None,
    ) -> None:
        self.facts: list[Assertion] = list(facts)
        self.counters = counters if counters is not None else AnalysisCounters()

    @classmethod
    def from_network(
        cls,
        network: "AssertionNetwork",
        extra_facts: Iterable[Assertion] = (),
    ) -> "ConstraintSolver":
        """A solver over a network's specified facts (plus hypotheticals)."""
        return cls(
            list(network.specified_assertions()) + list(extra_facts),
            counters=network.counters,
        )

    def solve(self) -> SolverSolution:
        """Propagate to the fixpoint; raise on inconsistency.

        Raises
        ------
        ConsistencyFailure
            With a minimal conflict set over the input facts.
        """
        from repro.solver.explain import minimal_conflict

        self.counters.solver_runs += 1
        with span("solver.propagate", counters=self.counters):
            outcome = propagate(self.facts, counters=self.counters)
        if outcome.culprit is not None:
            conflict = minimal_conflict(self.facts, counters=self.counters)
            raise ConsistencyFailure(conflict, subject=outcome.culprit)
        specified_pairs = {fact.pair for fact in self.facts}
        derived = derived_from(outcome.domains, specified_pairs)
        return SolverSolution(
            facts=tuple(self.facts),
            feasible=outcome.domains,
            derived=tuple(derived[pair] for pair in sorted(derived)),
            steps=outcome.steps,
        )

    def check(self, extra_facts: Iterable[Assertion] = ()) -> bool:
        """Whether the facts (plus hypotheticals) admit a solution."""
        self.counters.solver_consistency_checks += 1
        outcome = propagate(
            self.facts + list(extra_facts), counters=self.counters
        )
        return outcome.culprit is None


@dataclass(frozen=True)
class AssertionExplanation:
    """What-if analysis of one hypothetical assertion.

    ``consistent`` says whether specifying the assertion would be
    accepted.  When it would conflict, ``conflict`` is the minimal set of
    *existing* facts that clash with it (retracting any one of them makes
    the assertion admissible).  When it is safe, ``consequences`` are the
    assertions that would newly become derived.
    """

    first: ObjectRef
    second: ObjectRef
    kind: AssertionKind
    consistent: bool
    feasible_before: frozenset[Relation]
    conflict: tuple[Assertion, ...] = ()
    consequences: tuple[Assertion, ...] = field(default=())

    def repairs(self) -> list[str]:
        """Screen 9-style repair options when the assertion conflicts."""
        if self.consistent:
            return []
        options = [
            "withdraw the new assertion "
            + self.kind.describe(str(self.first), str(self.second))
        ]
        for member in self.conflict:
            if member.source is Source.DDA:
                options.append(
                    f"retract or change {member.describe()} "
                    f"(currently code {member.kind.code})"
                )
            else:
                options.append(
                    f"revise the schema structure behind {member.describe()}"
                )
        return options

    def to_wire(self) -> dict:
        return {
            "first": str(self.first),
            "second": str(self.second),
            "kind": self.kind.name,
            "kind_code": self.kind.code,
            "consistent": self.consistent,
            "feasible": sorted(rel.value for rel in self.feasible_before),
            "conflict_set": [member.to_wire() for member in self.conflict],
            "consequences": [
                member.to_wire() for member in self.consequences
            ],
            "repairs": self.repairs(),
        }


def explain_assertion(
    network: "AssertionNetwork",
    first: ObjectRef | str,
    second: ObjectRef | str,
    kind: AssertionKind | int,
) -> AssertionExplanation:
    """Explain what specifying ``kind`` on a pair would do, without doing it.

    Runs trial propagation over the network's committed facts plus the
    hypothetical assertion; the network itself is never mutated.
    """
    from repro.solver.explain import minimal_conflict

    if isinstance(kind, int):
        kind = AssertionKind.from_code(kind)
    first = coerce_object_ref(first)
    second = coerce_object_ref(second)
    feasible_before = network.feasible(first, second)  # validates membership
    if first == second:
        raise AssertionSpecError(f"cannot assert {first} against itself")
    facts = network.specified_assertions()
    candidate = Assertion(first, second, kind, note="hypothetical")
    counters = network.counters
    with span("solver.explain", counters=counters):
        counters.solver_runs += 1
        trial = propagate(facts + [candidate], counters=counters)
        if trial.culprit is not None:
            conflict = minimal_conflict(
                facts, background=[candidate], counters=counters
            )
            return AssertionExplanation(
                first,
                second,
                kind,
                consistent=False,
                feasible_before=feasible_before,
                conflict=conflict,
            )
        base = propagate(facts, counters=counters)
        specified_pairs = {fact.pair for fact in facts}
        before = derived_from(base.domains, specified_pairs)
        after = derived_from(
            trial.domains, specified_pairs | {candidate.pair}
        )
        consequences = tuple(
            after[pair]
            for pair in sorted(after)
            if before.get(pair) != after[pair]
        )
        return AssertionExplanation(
            first,
            second,
            kind,
            consistent=True,
            feasible_before=feasible_before,
            consequences=consequences,
        )
