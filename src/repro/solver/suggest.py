"""Ranked equivalence suggestions, trial-propagated for safety.

The paper's Screen 8 only *orders* candidate pairs by attribute ratio;
the DDA still hand-enumerates every equivalence.  This pass turns that
into confirm-not-enumerate: candidate object pairs are scored by a
weighted blend of name, attribute-ratio, key, domain and cardinality
resemblance, and each ranked candidate is **trial-propagated** through
the batch solver (committed facts plus a hypothetical EQUALS) so the
screen can label it ``safe`` — accepting it cannot conflict — or
``conflicting``, with the minimal set of existing facts it clashes with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.ecr.objects import ObjectClass
from repro.ecr.relationships import RelationshipSet
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import (
    AttributeRatio,
    DomainResemblance,
    KeyResemblance,
    NameResemblance,
)
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import span
from repro.solver.engine import propagate
from repro.solver.explain import minimal_conflict

#: Relative weights of the scoring components (normalised below).
SCORE_WEIGHTS: dict[str, float] = {
    "name": 0.35,
    "attribute_ratio": 0.25,
    "key": 0.15,
    "domain": 0.15,
    "cardinality": 0.10,
}


@dataclass(frozen=True)
class SolverSuggestion:
    """One ranked candidate equivalence, labelled by trial propagation.

    ``status`` is ``"safe"`` (asserting EQUALS derives no contradiction)
    or ``"conflicting"`` (it would be rejected; ``conflict`` then holds
    the minimal set of existing facts it clashes with).  ``components``
    are the individual resemblance scores behind ``score``.
    """

    first: ObjectRef
    second: ObjectRef
    kind: AssertionKind
    score: float
    components: dict[str, float]
    status: str
    conflict: tuple[Assertion, ...] = field(default=())

    @property
    def safe(self) -> bool:
        return self.status == "safe"

    def describe(self) -> str:
        """One Screen line, e.g. ``sc1.Student = sc2.Pupil (0.87, safe)``."""
        return (
            f"{self.kind.describe(str(self.first), str(self.second))} "
            f"[score {self.score:.4f}, {self.status}]"
        )

    def to_wire(self) -> dict:
        wire = {
            "first": str(self.first),
            "second": str(self.second),
            "kind": self.kind.name,
            "kind_code": self.kind.code,
            "score": round(self.score, 6),
            "components": {
                name: round(value, 6)
                for name, value in sorted(self.components.items())
            },
            "status": self.status,
        }
        if self.conflict:
            wire["conflict_set"] = [
                member.to_wire() for member in self.conflict
            ]
        return wire


def _cardinality_resemblance(first: ObjectClass, second: ObjectClass) -> float:
    """Structural-arity similarity in [0, 1].

    Relationship sets compare participation cardinalities positionally
    (exact-match fraction over the longer leg list); entity sets and
    categories fall back to the attribute-count ratio, the only notion
    of "size" they carry.
    """
    if isinstance(first, RelationshipSet) and isinstance(second, RelationshipSet):
        legs_a = [
            (p.cardinality.min, p.cardinality.max) for p in first.participations
        ]
        legs_b = [
            (p.cardinality.min, p.cardinality.max) for p in second.participations
        ]
        if not legs_a or not legs_b:
            return 0.0
        matched = sum(1 for a, b in zip(legs_a, legs_b) if a == b)
        return matched / max(len(legs_a), len(legs_b))
    count_a, count_b = len(first.attributes), len(second.attributes)
    if not count_a or not count_b:
        return 0.0
    return min(count_a, count_b) / max(count_a, count_b)


def score_candidate(
    registry: EquivalenceRegistry,
    first_ref: ObjectRef,
    first: ObjectClass,
    second_ref: ObjectRef,
    second: ObjectClass,
) -> dict[str, float]:
    """The per-component resemblance scores for one candidate pair."""
    return {
        "name": NameResemblance().score(first_ref, first, second_ref, second),
        "attribute_ratio": AttributeRatio(registry).score(
            first_ref, first, second_ref, second
        ),
        "key": KeyResemblance().score(first_ref, first, second_ref, second),
        "domain": DomainResemblance().score(
            first_ref, first, second_ref, second
        ),
        "cardinality": _cardinality_resemblance(first, second),
    }


def suggest_equivalence_assertions(
    registry: EquivalenceRegistry,
    network: AssertionNetwork,
    first_schema: str,
    second_schema: str,
    *,
    relationships: bool = False,
    limit: int = 10,
    threshold: float = 0.0,
    counters: AnalysisCounters | None = None,
) -> list[SolverSuggestion]:
    """Ranked, safety-labelled EQUALS candidates across two schemas.

    Only pairs the network still considers undetermined (more than one
    feasible relation) are candidates — pairs the DDA already decided, or
    that derivation has pinned down, need no suggestion.  Results are
    sorted by descending score, ties broken by name.
    """
    first = registry.schema(first_schema)
    second = registry.schema(second_schema)
    if relationships:
        pool_a: list[ObjectClass] = list(first.relationship_sets())
        pool_b: list[ObjectClass] = list(second.relationship_sets())
    else:
        pool_a = list(first.entity_sets()) + list(first.categories())
        pool_b = list(second.entity_sets()) + list(second.categories())

    with span("solver.suggest", counters=counters):
        scored: list[tuple[float, ObjectRef, ObjectRef, dict[str, float]]] = []
        total_weight = sum(SCORE_WEIGHTS.values())
        for object_a in pool_a:
            ref_a = ObjectRef(first.name, object_a.name)
            for object_b in pool_b:
                ref_b = ObjectRef(second.name, object_b.name)
                if not network.is_undetermined(ref_a, ref_b):
                    continue
                components = score_candidate(
                    registry, ref_a, object_a, ref_b, object_b
                )
                score = (
                    sum(
                        SCORE_WEIGHTS[name] * value
                        for name, value in components.items()
                    )
                    / total_weight
                )
                if score <= threshold:
                    continue
                scored.append((score, ref_a, ref_b, components))
        scored.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
        del scored[limit:]

        facts = network.specified_assertions()
        suggestions: list[SolverSuggestion] = []
        for score, ref_a, ref_b, components in scored:
            if counters is not None:
                counters.solver_candidates_checked += 1
            candidate = Assertion(
                ref_a, ref_b, AssertionKind.EQUALS, note="suggested"
            )
            trial = propagate(facts + [candidate], counters=counters)
            if trial.culprit is None:
                status, conflict = "safe", ()
            else:
                status = "conflicting"
                conflict = minimal_conflict(
                    facts, background=[candidate], counters=counters
                )
            suggestions.append(
                SolverSuggestion(
                    first=ref_a,
                    second=ref_b,
                    kind=AssertionKind.EQUALS,
                    score=score,
                    components=components,
                    status=status,
                    conflict=conflict,
                )
            )
    return suggestions
