"""Minimal conflict sets over asserted facts (QuickXplain).

When propagation empties a pair's feasible set, the network's
:class:`~repro.assertions.conflicts.ConflictReport` shows *one*
derivation chain — how the clashing derived assertion was obtained.
That is an explanation of the derivation, not of the repair choice: the
chain can miss facts the failing propagation actually consumed, and it
does not tell the DDA which retraction would help.

This module answers the repair question.  :func:`minimal_conflict`
shrinks an inconsistent fact set to a subset that is

* **sufficient** — asserting exactly these facts reproduces the
  contradiction, and
* **minimal** — retracting any single member restores consistency,

using Junker's QUICKXPLAIN recursion (divide-and-conquer over the fact
sequence, preferring earlier-asserted facts when several minimal sets
exist).  Each consistency probe is one from-scratch batch propagation —
cheap, because :func:`repro.solver.engine.propagate` is a pure function.
"""

from __future__ import annotations

from typing import Sequence

from repro.assertions.assertion import Assertion
from repro.errors import AssertionSpecError
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import span


def is_consistent(
    facts: Sequence[Assertion],
    *,
    counters: AnalysisCounters | None = None,
) -> bool:
    """Whether a fact set admits a fixpoint with no empty feasible set."""
    from repro.solver.engine import propagate

    if counters is not None:
        counters.solver_consistency_checks += 1
    return propagate(facts, counters=counters).culprit is None


def minimal_conflict(
    facts: Sequence[Assertion],
    *,
    background: Sequence[Assertion] = (),
    counters: AnalysisCounters | None = None,
) -> tuple[Assertion, ...]:
    """A minimal subset of ``facts`` inconsistent with ``background``.

    ``background`` holds facts that are *not* candidates for retraction —
    typically the one new assertion being explained — so the returned set
    names only pre-existing facts the DDA could retract.  If background
    plus all facts is consistent there is nothing to explain and
    :class:`~repro.errors.AssertionSpecError` is raised.
    """
    facts = list(facts)
    background = list(background)
    if is_consistent(background + facts, counters=counters):
        raise AssertionSpecError(
            "cannot minimize a conflict: the facts are consistent"
        )
    with span("solver.explain", counters=counters):
        conflict = tuple(_qx(background, False, facts, counters))
    if counters is not None:
        counters.solver_conflicts_minimized += 1
    return conflict


def _qx(
    base: list[Assertion],
    delta_nonempty: bool,
    candidates: list[Assertion],
    counters: AnalysisCounters | None,
) -> list[Assertion]:
    """QUICKXPLAIN(base, candidates): minimal culprit subset of candidates.

    ``delta_nonempty`` is True when the caller just moved facts into
    ``base``; only then can ``base`` alone have become inconsistent,
    which lets the trivial-consistency probe be skipped otherwise.
    """
    if delta_nonempty and not is_consistent(base, counters=counters):
        return []
    if len(candidates) == 1:
        return list(candidates)
    half = len(candidates) // 2
    left, right = candidates[:half], candidates[half:]
    # Minimal culprits within `right`, assuming all of `left` holds...
    in_right = _qx(base + left, bool(left), right, counters)
    # ...then minimal culprits within `left`, assuming those hold.
    in_left = _qx(base + in_right, bool(in_right), left, counters)
    return in_left + in_right


def verify_conflict(
    conflict: Sequence[Assertion],
    *,
    background: Sequence[Assertion] = (),
    counters: AnalysisCounters | None = None,
) -> bool:
    """Check a conflict set is sufficient *and* minimal (for tests/bench).

    Sufficient: background plus the whole set is inconsistent.  Minimal:
    dropping any one member restores consistency.
    """
    conflict = list(conflict)
    background = list(background)
    if not conflict and not background:
        return False
    if is_consistent(background + conflict, counters=counters):
        return False
    for index in range(len(conflict)):
        rest = conflict[:index] + conflict[index + 1 :]
        if not is_consistent(background + rest, counters=counters):
            return False
    return True
