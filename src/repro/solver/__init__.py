"""Constraint-propagation inference over assertion networks.

The batch counterpart of :mod:`repro.assertions`'s incremental path
consistency, in three pieces:

* :mod:`repro.solver.engine` — the five assertion kinds compiled onto
  finite relation domains and revised to the fixpoint by an AC-3-style
  worklist (:class:`ConstraintSolver`, :func:`explain_assertion`);
* :mod:`repro.solver.explain` — QuickXplain minimal conflict sets: which
  of the committed facts to retract when propagation finds a
  contradiction (:func:`minimal_conflict`, :func:`verify_conflict`);
* :mod:`repro.solver.suggest` — ranked, trial-propagated equivalence
  suggestions (:func:`suggest_equivalence_assertions`).

On conflict-free inputs the solver's derived-assertion set provably
equals the network's incremental closure (see ``tests/solver``); on
inconsistent inputs it raises :class:`~repro.errors.ConsistencyFailure`
with a verified-minimal conflict set instead of one derivation chain.
"""

from repro.errors import ConsistencyFailure
from repro.solver.engine import (
    AssertionExplanation,
    ConstraintSolver,
    Propagation,
    SolverSolution,
    explain_assertion,
    propagate,
)
from repro.solver.explain import (
    is_consistent,
    minimal_conflict,
    verify_conflict,
)
from repro.solver.suggest import (
    SolverSuggestion,
    suggest_equivalence_assertions,
)

__all__ = [
    "AssertionExplanation",
    "ConsistencyFailure",
    "ConstraintSolver",
    "Propagation",
    "SolverSolution",
    "SolverSuggestion",
    "explain_assertion",
    "is_consistent",
    "minimal_conflict",
    "propagate",
    "suggest_equivalence_assertions",
    "verify_conflict",
]
