"""The Attribute Class Similarity (ACS) matrix.

The paper: *"The tool maintains a structure called Attribute Class
Similarity (ACS) matrix, which maintains all the equivalence class
definitions given in this phase."*  We expose it as a queryable view over
the equivalence registry: one row/column per attribute of the two schemas
being integrated, each cell saying whether the two attributes are in the
same equivalence class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecr.attributes import AttributeRef
from repro.equivalence.registry import EquivalenceRegistry


@dataclass(frozen=True)
class AcsCell:
    """One cell of the ACS matrix: an attribute pair plus its status."""

    row: AttributeRef
    column: AttributeRef
    equivalent: bool

    def __str__(self) -> str:
        mark = "~" if self.equivalent else "/"
        return f"{self.row} {mark} {self.column}"


class AcsMatrix:
    """ACS matrix between two registered schemas.

    Rows are the attributes of ``first_schema``, columns those of
    ``second_schema``, both in schema declaration order.
    """

    def __init__(
        self,
        registry: EquivalenceRegistry,
        first_schema: str,
        second_schema: str,
    ) -> None:
        self._registry = registry
        self.first_schema = first_schema
        self.second_schema = second_schema
        self._rows = registry.schema(first_schema).all_attribute_refs()
        self._columns = registry.schema(second_schema).all_attribute_refs()

    @property
    def rows(self) -> list[AttributeRef]:
        """Attributes of the first schema, in declaration order."""
        return list(self._rows)

    @property
    def columns(self) -> list[AttributeRef]:
        """Attributes of the second schema, in declaration order."""
        return list(self._columns)

    def cell(self, row: AttributeRef, column: AttributeRef) -> AcsCell:
        """The cell for one attribute pair."""
        return AcsCell(
            row, column, self._registry.are_equivalent(row, column)
        )

    def equivalent_pairs(self) -> list[tuple[AttributeRef, AttributeRef]]:
        """All cross-schema attribute pairs currently marked equivalent."""
        pairs: list[tuple[AttributeRef, AttributeRef]] = []
        column_numbers = {
            column: self._registry.class_number(column) for column in self._columns
        }
        for row in self._rows:
            row_number = self._registry.class_number(row)
            for column, column_number in column_numbers.items():
                if row_number == column_number:
                    pairs.append((row, column))
        return pairs

    def as_booleans(self) -> list[list[bool]]:
        """Dense boolean matrix (row-major) for numeric consumers."""
        column_numbers = [
            self._registry.class_number(column) for column in self._columns
        ]
        matrix: list[list[bool]] = []
        for row in self._rows:
            row_number = self._registry.class_number(row)
            matrix.append([row_number == num for num in column_numbers])
        return matrix

    def render(self, max_width: int = 100) -> str:
        """Human-readable rendering used by the tool's debug view."""
        header = "ACS %s x %s" % (self.first_schema, self.second_schema)
        lines = [header, "=" * len(header)]
        for row, bools in zip(self._rows, self.as_booleans()):
            marks = "".join("X" if flag else "." for flag in bools)
            lines.append(f"{str(row):<40.40} {marks}")
        legend = "columns: " + ", ".join(str(column) for column in self._columns)
        lines.append(legend[:max_width])
        return "\n".join(lines) + "\n"
