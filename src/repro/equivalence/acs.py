"""The Attribute Class Similarity (ACS) matrix.

The paper: *"The tool maintains a structure called Attribute Class
Similarity (ACS) matrix, which maintains all the equivalence class
definitions given in this phase."*  We expose it as a queryable view over
the equivalence registry: one row/column per attribute of the two schemas
being integrated, each cell saying whether the two attributes are in the
same equivalence class.

Like the OCS, the ACS is a **memoized view**: the derived pair list and the
dense boolean matrix are cached and recomputed only after a registry change
that touched one of the two schemas.  Obtain matrices through
:meth:`EquivalenceRegistry.acs`; constructing :class:`AcsMatrix` directly
is deprecated (it still works, with its own unshared cache).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ecr.attributes import AttributeRef
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.equivalence.registry import EquivalenceRegistry, RegistryChange


@dataclass(frozen=True)
class AcsCell:
    """One cell of the ACS matrix: an attribute pair plus its status."""

    row: AttributeRef
    column: AttributeRef
    equivalent: bool

    def __str__(self) -> str:
        mark = "~" if self.equivalent else "/"
        return f"{self.row} {mark} {self.column}"


class AcsMatrix:
    """ACS matrix between two registered schemas.

    Rows are the attributes of ``first_schema``, columns those of
    ``second_schema``, both in schema declaration order.
    """

    def __init__(
        self,
        registry: "EquivalenceRegistry",
        first_schema: str,
        second_schema: str,
        *,
        _trusted: bool = False,
    ) -> None:
        if not _trusted:
            warnings.warn(
                "constructing AcsMatrix directly is deprecated; use "
                "registry.acs(first_schema, second_schema) to get the "
                "shared cached view",
                DeprecationWarning,
                stacklevel=2,
            )
        self._registry = registry
        self.first_schema = first_schema
        self.second_schema = second_schema
        self._rows = registry.schema(first_schema).all_attribute_refs()
        self._columns = registry.schema(second_schema).all_attribute_refs()
        self._dirty = False
        self._reselect_needed = False
        #: memoized derived views, rebuilt together after an invalidation
        self._pairs: list[tuple[AttributeRef, AttributeRef]] | None = None
        self._booleans: list[list[bool]] | None = None
        self._subscription = registry.subscribe(self._on_registry_change)

    def close(self) -> None:
        """Stop tracking registry changes (the view goes stale)."""
        self._subscription.cancel()

    def _on_registry_change(self, change: "RegistryChange") -> None:
        if not (
            change.touches_schema(self.first_schema)
            or change.touches_schema(self.second_schema)
        ):
            return
        self._dirty = True
        if self.first_schema in change.schemas or self.second_schema in change.schemas:
            self._reselect_needed = True

    def _refresh(self) -> None:
        """Recompute the memoized views if a relevant change occurred."""
        if self._pairs is not None and not self._dirty:
            self._registry.counters.acs_cache_hits += 1
            return
        with span("phase2.acs.recompute", counters=self._registry.counters):
            if self._reselect_needed:
                self._rows = self._registry.schema(
                    self.first_schema
                ).all_attribute_refs()
                self._columns = self._registry.schema(
                    self.second_schema
                ).all_attribute_refs()
                self._reselect_needed = False
            column_numbers = [
                (column, self._registry.class_number(column))
                for column in self._columns
            ]
            pairs: list[tuple[AttributeRef, AttributeRef]] = []
            booleans: list[list[bool]] = []
            for row in self._rows:
                row_number = self._registry.class_number(row)
                flags: list[bool] = []
                for column, column_number in column_numbers:
                    match = row_number == column_number
                    flags.append(match)
                    if match:
                        pairs.append((row, column))
                booleans.append(flags)
            self._pairs = pairs
            self._booleans = booleans
            self._dirty = False
            self._registry.counters.acs_rebuilds += 1

    @property
    def rows(self) -> list[AttributeRef]:
        """Attributes of the first schema, in declaration order."""
        self._refresh()
        return list(self._rows)

    @property
    def columns(self) -> list[AttributeRef]:
        """Attributes of the second schema, in declaration order."""
        self._refresh()
        return list(self._columns)

    def cell(self, row: AttributeRef, column: AttributeRef) -> AcsCell:
        """The cell for one attribute pair."""
        return AcsCell(
            row, column, self._registry.are_equivalent(row, column)
        )

    def equivalent_pairs(self) -> list[tuple[AttributeRef, AttributeRef]]:
        """All cross-schema attribute pairs currently marked equivalent."""
        self._refresh()
        assert self._pairs is not None
        return list(self._pairs)

    def as_booleans(self) -> list[list[bool]]:
        """Dense boolean matrix (row-major) for numeric consumers."""
        self._refresh()
        assert self._booleans is not None
        return [list(row) for row in self._booleans]

    def render(self, max_width: int = 100) -> str:
        """Human-readable rendering used by the tool's debug view."""
        header = "ACS %s x %s" % (self.first_schema, self.second_schema)
        lines = [header, "=" * len(header)]
        for row, bools in zip(self.rows, self.as_booleans()):
            marks = "".join("X" if flag else "." for flag in bools)
            lines.append(f"{str(row):<40.40} {marks}")
        legend = "columns: " + ", ".join(str(column) for column in self._columns)
        lines.append(legend[:max_width])
        return "\n".join(lines) + "\n"
