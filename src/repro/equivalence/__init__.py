"""Attribute equivalence and object-class resemblance (Phase 2).

This package implements the paper's schema-analysis machinery:

* an **equivalence registry** over fully qualified attributes, maintaining
  the equivalence classes the DDA creates on Screen 7 (using the simplified
  equivalent/non-equivalent form of Larson et al. 1987);
* the **Attribute Class Similarity (ACS) matrix** recording, per pair of
  object classes, which of their attributes are equivalent;
* the **Object Class Similarity (OCS) matrix** counting equivalent
  attributes for each cross-schema object pair, derived from the ACS;
* the **resemblance function** — attribute ratio — and the future-work
  extensions (name similarity, synonym dictionary, weighted combinations);
* **candidate ordering**: the ranked list of object pairs shown to the DDA
  on Screen 8;
* **suggestion heuristics** that propose candidate attribute equivalences
  automatically (the paper's "syntactic processing enhancements"); and
* the :class:`AnalysisSession` **facade**, the recommended entry point,
  which owns the registry, the memoized matrix views and the assertion
  networks, sharing one set of instrumentation counters.
"""

from repro.equivalence.union_find import DisjointSet
from repro.equivalence.registry import (
    EquivalenceRegistry,
    EquivalenceIssue,
    RegistryChange,
)
from repro.equivalence.acs import AcsMatrix, AcsCell
from repro.equivalence.ocs import OcsMatrix, OcsEntry
from repro.equivalence.resemblance import (
    attribute_ratio,
    AttributeRatio,
    NameResemblance,
    KeyResemblance,
    DomainResemblance,
    WeightedResemblance,
    name_similarity,
)
from repro.equivalence.ordering import CandidatePair, ordered_object_pairs
from repro.equivalence.synonyms import SynonymDictionary, DEFAULT_SYNONYMS
from repro.equivalence.constructs import (
    ConstructConflict,
    suggest_construct_conflicts,
)
from repro.equivalence.heuristics import (
    EquivalenceSuggestion,
    suggest_equivalences,
    apply_suggestions,
)
from repro.equivalence.session import AnalysisSession

__all__ = [
    "AnalysisSession",
    "DisjointSet",
    "EquivalenceRegistry",
    "EquivalenceIssue",
    "RegistryChange",
    "AcsMatrix",
    "AcsCell",
    "OcsMatrix",
    "OcsEntry",
    "attribute_ratio",
    "AttributeRatio",
    "NameResemblance",
    "KeyResemblance",
    "DomainResemblance",
    "WeightedResemblance",
    "name_similarity",
    "CandidatePair",
    "ordered_object_pairs",
    "SynonymDictionary",
    "DEFAULT_SYNONYMS",
    "ConstructConflict",
    "suggest_construct_conflicts",
    "EquivalenceSuggestion",
    "suggest_equivalences",
    "apply_suggestions",
]
