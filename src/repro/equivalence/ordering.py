"""Ordered candidate object pairs for assertion collection (Screen 8).

The OCS matrix "contains information to generate an ordered list of object
class pairs corresponding to their likelihood of being integrable with
stronger assertions".  We order pairs by descending attribute ratio, then
alphabetically by the qualified object names, so that the list is total and
deterministic — this reproduces Screen 8 exactly, where at equal ratio
``sc1.Department``/``sc2.Department`` precedes
``sc1.Student``/``sc2.Grad_student``.

The ranked list is memoized on the cached OCS matrix: repeated calls with
an unchanged registry return the cached list, and after a mutation only the
invalidated cells are recounted before the (cheap) re-sort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecr.objects import ObjectKind
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import attribute_ratio
from repro.obs.trace import span


@dataclass(frozen=True)
class CandidatePair:
    """One row of Screen 8: an object pair with its attribute ratio."""

    first: ObjectRef
    second: ObjectRef
    equivalent_attributes: int
    attribute_ratio: float

    def __str__(self) -> str:
        return f"{self.first}  {self.second}  {self.attribute_ratio:.4f}"


def ordered_object_pairs(
    registry: EquivalenceRegistry,
    first_schema: str,
    second_schema: str,
    *,
    kind_filter: ObjectKind | None = None,
    include_zero: bool = False,
) -> list[CandidatePair]:
    """The ranked candidate list for two schemas.

    Parameters
    ----------
    registry:
        The equivalence registry holding both schemas and the DDA's
        attribute equivalences.
    first_schema, second_schema:
        Names of the two schemas being integrated.
    kind_filter:
        Keyword-only.  ``None`` ranks object classes (entity sets and
        categories, the paper's first subphase); ``ObjectKind.RELATIONSHIP``
        ranks relationship sets (the second subphase).
    include_zero:
        Keyword-only.  Whether to include pairs with no equivalent
        attributes.  Screen 8 shows only genuine candidates, so the default
        is off; baselines that review every pair set it.
    """
    ocs = registry.ocs(first_schema, second_schema, kind_filter)
    cache_key = ("ranked", bool(include_zero))
    cached = ocs.view_cache.get(cache_key)
    if cached is not None:
        registry.counters.ordering_cache_hits += 1
        return list(cached)  # defensive copy: callers may sort/mutate
    with span("phase2.ordering.rank", counters=registry.counters):
        pairs: list[CandidatePair] = []
        for entry in ocs.entries(include_zero=include_zero):
            ratio = attribute_ratio(
                entry.equivalent_attributes,
                ocs.attribute_count(entry.row),
                ocs.attribute_count(entry.column),
            )
            pairs.append(
                CandidatePair(
                    entry.row, entry.column, entry.equivalent_attributes, ratio
                )
            )
        pairs.sort(
            key=lambda pair: (-pair.attribute_ratio, pair.first, pair.second)
        )
        ocs.view_cache[cache_key] = pairs
        registry.counters.ordering_rebuilds += 1
        return list(pairs)


def render_screen8_rows(pairs: list[CandidatePair]) -> str:
    """Render candidate pairs in the column layout of Screen 8."""
    lines = [
        f"{'Schema_Name1.Obj_Class1':<28}{'Schema_Name2.Obj_Class2':<28}"
        f"{'ATTRIBUTE RATIO':>16}"
    ]
    for pair in pairs:
        lines.append(
            f"{str(pair.first):<28}{str(pair.second):<28}"
            f"{pair.attribute_ratio:>16.4f}"
        )
    return "\n".join(lines) + "\n"
