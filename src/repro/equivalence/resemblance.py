"""Resemblance functions over object-class pairs.

The paper's core heuristic is the **attribute ratio**::

    ratio = e / (e + s)

where ``e`` is the number of equivalent attributes between the two object
classes and ``s`` the number of attributes of the smaller object class.
*"Thus a value of 0.5 for attribute ratio specifies that every attribute in
one object class has an equivalent attribute in the other object class."*
(Screen 8 shows 0.5000 for Department/Department and Student/Grad_student,
0.3333 for Student/Faculty.)

The future-work section sketches further resemblance functions in the style
of de Souza's SIS ("to have similar names", "to have identifiers with
similar names") combined as a weighted sum; we implement those too so the
ablation benchmarks can compare orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.ecr.objects import ObjectClass
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.synonyms import SynonymDictionary
from repro.errors import EquivalenceError


def attribute_ratio(equivalent: int, first_count: int, second_count: int) -> float:
    """The paper's attribute ratio for one object pair.

    Parameters
    ----------
    equivalent:
        Number of equivalent attributes between the two object classes
        (the OCS entry).
    first_count, second_count:
        Numbers of attributes of the two object classes.

    Returns 0.0 when either object class has no attributes.
    """
    if equivalent < 0:
        raise EquivalenceError(f"negative equivalent count {equivalent}")
    smaller = min(first_count, second_count)
    if equivalent > smaller:
        raise EquivalenceError(
            f"equivalent count {equivalent} exceeds the smaller "
            f"object's attribute count {smaller}"
        )
    if smaller == 0 or equivalent == 0:
        return 0.0
    return equivalent / (equivalent + smaller)


class ResemblanceFunction(Protocol):
    """A scorer of object-class pairs; higher means more resemblant."""

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        """Score the pair in [0, 1]."""
        ...  # pragma: no cover - protocol


@dataclass
class AttributeRatio:
    """The paper's resemblance function, computed from the registry."""

    registry: EquivalenceRegistry

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        equivalent = self.registry.equivalent_class_count(
            (first_ref.schema, first_ref.object_name),
            (second_ref.schema, second_ref.object_name),
        )
        return attribute_ratio(
            equivalent, len(first.attributes), len(second.attributes)
        )


def name_similarity(first: str, second: str) -> float:
    """Similarity of two identifiers in [0, 1].

    Uses a normalised Levenshtein distance over lower-cased names with
    underscores removed, so ``Grad_student`` vs ``GradStudent`` scores 1.0.
    This is the "string matching heuristic" of the future-work section.
    """
    a = first.lower().replace("_", "")
    b = second.lower().replace("_", "")
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    distance = _levenshtein(a, b)
    return 1.0 - distance / max(len(a), len(b))


def _levenshtein(a: str, b: str) -> int:
    """Classic two-row Levenshtein edit distance."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for row, char_a in enumerate(a, start=1):
        current = [row]
        for col, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[col] + 1, current[col - 1] + 1, previous[col - 1] + cost)
            )
        previous = current
    return previous[-1]


@dataclass
class NameResemblance:
    """Scores pairs by the string similarity of their names.

    With a synonym dictionary, names declared synonymous score 1.0
    regardless of spelling (``Worker`` vs ``Employee``).
    """

    synonyms: SynonymDictionary | None = None

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        if self.synonyms is not None:
            if self.synonyms.are_synonyms(first.name, second.name):
                return 1.0
            if self.synonyms.are_antonyms(first.name, second.name):
                return 0.0
        return name_similarity(first.name, second.name)


@dataclass
class KeyResemblance:
    """SIS's "identifiers with similar names": similarity of key attributes."""

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        keys_a = first.key_attributes()
        keys_b = second.key_attributes()
        if not keys_a or not keys_b:
            return 0.0
        best = 0.0
        for key_a in keys_a:
            for key_b in keys_b:
                best = max(best, name_similarity(key_a.name, key_b.name))
        return best


@dataclass
class DomainResemblance:
    """Fraction of attributes (of the smaller side) with a same-kind partner."""

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        if not first.attributes or not second.attributes:
            return 0.0
        smaller, larger = first.attributes, second.attributes
        if len(larger) < len(smaller):
            smaller, larger = larger, smaller
        kinds = [attribute.domain.kind for attribute in larger]
        matched = 0
        pool = list(kinds)
        for attribute in smaller:
            if attribute.domain.kind in pool:
                pool.remove(attribute.domain.kind)
                matched += 1
        return matched / len(smaller)


@dataclass
class WeightedResemblance:
    """Weighted sum of resemblance functions (the future-work combination).

    Weights are normalised, so only their relative sizes matter.
    """

    functions: Sequence[ResemblanceFunction]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.functions) != len(self.weights):
            raise EquivalenceError(
                f"{len(self.functions)} functions but {len(self.weights)} weights"
            )
        if not self.functions:
            raise EquivalenceError("weighted resemblance needs at least one function")
        total = float(sum(self.weights))
        if total <= 0:
            raise EquivalenceError("weights must sum to a positive value")
        self.weights = [weight / total for weight in self.weights]

    def score(
        self,
        first_ref: ObjectRef,
        first: ObjectClass,
        second_ref: ObjectRef,
        second: ObjectClass,
    ) -> float:
        return sum(
            weight * function.score(first_ref, first, second_ref, second)
            for function, weight in zip(self.functions, self.weights)
        )
