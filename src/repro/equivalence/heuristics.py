"""Automatic suggestion of attribute equivalences.

The paper's tool requires the DDA to declare every attribute equivalence by
hand; its future-work section proposes "syntactic processing enhancements":
string-matching heuristics and a synonym/antonym dictionary that surface
*candidate* pairs of equivalent attributes.  This module implements those
enhancements.  Suggestions are exactly that — the DDA (or an oracle in the
benchmarks) still accepts or rejects each one; ``apply_suggestions`` exists
for fully automatic pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecr.attributes import AttributeRef
from repro.ecr.domains import domains_compatible
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import name_similarity
from repro.equivalence.synonyms import SynonymDictionary


@dataclass(frozen=True)
class EquivalenceSuggestion:
    """A proposed attribute equivalence with its evidence score."""

    first: AttributeRef
    second: AttributeRef
    score: float
    reason: str

    def __str__(self) -> str:
        return f"{self.first} ~ {self.second} ({self.score:.2f}: {self.reason})"


def suggest_equivalences(
    registry: EquivalenceRegistry,
    first_schema: str,
    second_schema: str,
    synonyms: SynonymDictionary | None = None,
    threshold: float = 0.75,
) -> list[EquivalenceSuggestion]:
    """Propose cross-schema attribute equivalences above ``threshold``.

    Scoring combines, per attribute pair:

    * name similarity (normalised edit distance), raised to 1.0 for
      dictionary synonyms and vetoed for antonyms;
    * a small bonus when both attributes are keys (the "identifiers with
      similar names" resemblance of SIS); and
    * a veto when the domains are incompatible (equivalent attributes must
      hold comparable values).

    Already-equivalent pairs are skipped.  Results are ordered by
    descending score, then by reference order, so the review list is
    deterministic.
    """
    suggestions: list[EquivalenceSuggestion] = []
    rows = registry.schema(first_schema).all_attribute_refs()
    columns = registry.schema(second_schema).all_attribute_refs()
    for row in rows:
        attr_a = registry.resolve(row)
        for column in columns:
            attr_b = registry.resolve(column)
            if registry.are_equivalent(row, column):
                continue
            if not domains_compatible(attr_a.domain, attr_b.domain):
                continue
            if synonyms is not None and synonyms.are_antonyms(
                attr_a.name, attr_b.name
            ):
                continue
            if synonyms is not None and synonyms.are_synonyms(
                attr_a.name, attr_b.name
            ):
                score, reason = 1.0, "synonym"
            else:
                score = name_similarity(attr_a.name, attr_b.name)
                reason = "name similarity"
            if attr_a.is_key and attr_b.is_key and score > 0:
                score = min(1.0, score + 0.1)
                reason += " + both keys"
            if score >= threshold:
                suggestions.append(
                    EquivalenceSuggestion(row, column, round(score, 4), reason)
                )
    suggestions.sort(key=lambda s: (-s.score, s.first, s.second))
    return suggestions


def apply_suggestions(
    registry: EquivalenceRegistry,
    suggestions: list[EquivalenceSuggestion],
    min_score: float = 1.0,
) -> int:
    """Accept every suggestion scoring at least ``min_score``.

    Returns the number of equivalences actually declared.  Intended for
    fully automatic pipelines and benchmarks; interactive use should route
    suggestions through the DDA instead.
    """
    applied = 0
    for suggestion in suggestions:
        if suggestion.score >= min_score:
            registry.declare_equivalent(suggestion.first, suggestion.second)
            applied += 1
    return applied
