"""The :class:`AnalysisSession` facade — the recommended Phase 2/3 entry point.

One ``AnalysisSession`` owns everything the paper's interactive loop
(Screens 7–9) mutates: the attribute-equivalence registry, the memoized
ACS/OCS views and ranked candidate lists, and the two assertion networks
(object classes and relationship sets).  All components share one
:class:`~repro.obs.metrics.AnalysisCounters`, so a benchmark can reset
the counters, replay a DDA script and read exactly how much incremental
work each action cost — and one :class:`~repro.kernel.kernel.Kernel`,
whose event bus every mutation is committed to: the audit log taps it,
the cached views subscribe to it, and :meth:`Kernel.undo` /
:meth:`Kernel.redo` / :meth:`Kernel.checkout` time-travel over it.

Compared to wiring :class:`EquivalenceRegistry`, :class:`OcsMatrix` and
:class:`AssertionNetwork` together by hand, the facade

* keeps the cached matrices subscribed to the registry's change events, so
  an equivalence declared on Screen 7 invalidates exactly the object pairs
  it touched;
* routes assertions to the right network (``relationships=True`` selects
  the relationship-set subphase);
* accepts dotted-string references everywhere an ``ObjectRef`` or
  ``AttributeRef`` is expected; and
* exposes :meth:`integrate` for Phase 4 without constructing an
  :class:`~repro.integration.integrator.Integrator` manually.

Example::

    from repro import AnalysisSession, AssertionKind

    session = AnalysisSession([sc1, sc2])
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    for pair in session.candidate_pairs("sc1", "sc2"):
        print(pair)
    session.specify("sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS)
    result = session.integrate("sc1", "sc2")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.attributes import AttributeRef
from repro.ecr.objects import ObjectKind
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.ordering import CandidatePair, ordered_object_pairs
from repro.equivalence.registry import EquivalenceIssue, EquivalenceRegistry
from repro.errors import EquivalenceError
from repro.kernel.bus import EventEmitter
from repro.kernel.kernel import Kernel
from repro.obs.metrics import AnalysisCounters

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.equivalence.acs import AcsMatrix
    from repro.equivalence.ocs import OcsMatrix
    from repro.evolution.edits import SchemaEdit
    from repro.evolution.repair import EditOutcome
    from repro.integration.options import IntegrationOptions
    from repro.integration.result import IntegrationResult
    from repro.kernel.bus import Subscription
    from repro.obs.audit import AuditLog


class AnalysisSession:
    """Registry + cached matrices + assertion networks behind one handle."""

    def __init__(
        self,
        schemas: Iterable[Schema] = (),
        *,
        registry: EquivalenceRegistry | None = None,
        object_network: AssertionNetwork | None = None,
        relationship_network: AssertionNetwork | None = None,
        counters: AnalysisCounters | None = None,
        audit: "AuditLog | None" = None,
        kernel: Kernel | None = None,
    ) -> None:
        schemas = list(schemas)
        if registry is not None and schemas:
            raise EquivalenceError(
                "pass either schemas or a pre-built registry, not both"
            )
        self.counters = counters if counters is not None else AnalysisCounters()
        if kernel is None:
            # a pre-built registry brings its own bus (and its event
            # pre-history); otherwise the kernel creates a fresh one
            kernel = Kernel(bus=registry.bus) if registry is not None else Kernel()
        #: the event kernel every mutation is committed through
        self.kernel = kernel
        kernel.bind(self)
        if registry is None:
            registry = EquivalenceRegistry(
                counters=self.counters, bus=kernel.bus
            )
        else:
            registry.counters = self.counters
            registry.bus = kernel.bus
        self.registry = registry
        if object_network is None:
            object_network = AssertionNetwork(counters=self.counters)
        else:
            object_network.counters = self.counters
        if relationship_network is None:
            relationship_network = AssertionNetwork(counters=self.counters)
        else:
            relationship_network.counters = self.counters
        self.object_network = object_network
        self.relationship_network = relationship_network
        self._bind_emitters()
        #: the attached audit log, if any (see :meth:`attach_audit`)
        self.audit_log: "AuditLog | None" = None
        self._audit_subscription: "Subscription | None" = None
        if audit is not None:
            self.attach_audit(audit)
        for schema in schemas:
            self.add_schema(schema)

    def _bind_emitters(self) -> None:
        """Give both networks their scoped handles on the kernel bus."""
        self.object_network.events = EventEmitter(
            self.kernel.bus, "object_network"
        )
        self.relationship_network.events = EventEmitter(
            self.kernel.bus, "relationship_network"
        )

    # -- schema management ----------------------------------------------------

    def add_schema(self, schema: Schema) -> None:
        """Register a schema everywhere: registry, networks, implicit edges."""
        with self.kernel.group():
            self.registry.register_schema(schema)
            self.object_network.seed_schema(schema)
            for relationship in schema.relationship_sets():
                self.relationship_network.add_object(
                    ObjectRef(schema.name, relationship.name)
                )

    def refresh_schema(
        self, schema_name: str, replacement: Schema | None = None
    ) -> None:
        """Re-sync the registry and reseed the networks after schema edits.

        ``replacement`` swaps in a new :class:`Schema` object under the
        same name first (audit replay uses this to reproduce in-place
        edits it cannot observe).
        """
        with self.kernel.group():
            self.registry.refresh_schema(schema_name, replacement=replacement)
            self.reseed_networks()

    def apply_edit(self, schema_name: str, edit: "SchemaEdit") -> "EditOutcome":
        """Apply one typed schema edit with localized downstream repair.

        The edit enters as a single :class:`Kernel` transaction and is
        committed as one ``evolution.apply_edit`` event; every downstream
        layer repairs only what the edit touched:

        * the schema itself mutates validate-then-apply (a failed edit is
          a no-op);
        * the registry applies the precise attribute deltas
          (:meth:`EquivalenceRegistry.evolve_schema`) — renames keep their
          equivalence class, so the cached OCS/ACS views invalidate only
          the touched owners' cells;
        * dropped structures leave the assertion networks through
          :meth:`AssertionNetwork.remove_object` (retract + support-index
          repair of just the dependent closure); added categories seed
          their implicit containment edges exactly as ``add_schema`` would;
        * the batch solver re-propagates a worklist seeded with only the
          affected pairs, cross-checking the localized repair.

        Dropping a class or relationship that still carries specified DDA
        assertions is refused with a
        :class:`~repro.errors.ConsistencyFailure` listing them (pass
        ``cascade=True`` on the drop to retract them as part of the
        repair).  Destructive edits — retracted assertions, equivalence
        memberships lost with a dropped attribute — record no event
        inverse, so undo falls back to a snapshot checkout; everything
        else undoes by applying the inverse edit.

        Returns an :class:`~repro.evolution.repair.EditOutcome` carrying
        the inverse edit and the :class:`~repro.evolution.repair.RepairScope`.
        """
        from repro.errors import ConsistencyFailure
        from repro.evolution.repair import (
            EditOutcome,
            RepairScope,
            scoped_repropagation,
        )
        from repro.kernel.apply import schema_fingerprint
        from repro.kernel.events import NO_CHANGE
        from repro.obs.trace import span

        schema = self.registry.schema(schema_name)
        scope = RepairScope(schema=schema_name, edit_kind=edit.kind)
        with span(
            "evolution.apply",
            counters=self.counters,
            schema=schema_name,
            kind=edit.kind,
        ):
            conflict = self._edit_conflict(schema_name, edit)
            if conflict:
                self.counters.evolution_edits_rejected += 1
                with self.kernel.group():
                    self.kernel.bus.publish(
                        "evolution",
                        "edit_rejected",
                        {"schema": schema_name, "edit": edit.to_payload()},
                        inverse=NO_CHANGE,
                    )
                raise ConsistencyFailure(conflict, subject=conflict[0].pair)
            with self.kernel.transaction():
                delta = edit.apply(schema)
                added = [
                    AttributeRef(schema_name, obj, attr)
                    for obj, attr in delta.added_refs
                ]
                dropped = [
                    AttributeRef(schema_name, obj, attr)
                    for obj, attr in delta.dropped_refs
                ]
                renamed = [
                    (
                        AttributeRef(schema_name, obj, old),
                        AttributeRef(schema_name, obj, new),
                    )
                    for obj, old, new in delta.renamed_refs
                ]
                # memberships that cannot be restored by the inverse edit
                lost_memberships = any(
                    len(self.registry.class_members(ref)) > 1
                    for ref in dropped
                )
                retracted: list[Assertion] = []
                with self.kernel.bus.replaying():
                    for name in delta.dropped_objects:
                        retracted.extend(
                            self.object_network.remove_object(
                                ObjectRef(schema_name, name)
                            )
                        )
                    for name in delta.dropped_relationships:
                        retracted.extend(
                            self.relationship_network.remove_object(
                                ObjectRef(schema_name, name)
                            )
                        )
                    for name in delta.added_objects:
                        self.object_network.add_object(
                            ObjectRef(schema_name, name)
                        )
                        structure = schema.get(name)
                        if (
                            structure.is_category
                            and len(structure.parents) == 1
                        ):
                            self.object_network.specify(
                                ObjectRef(schema_name, name),
                                ObjectRef(schema_name, structure.parents[0]),
                                AssertionKind.CONTAINED_IN,
                                source=Source.IMPLICIT,
                                note="category structure",
                            )
                    for name in delta.added_relationships:
                        self.relationship_network.add_object(
                            ObjectRef(schema_name, name)
                        )
                    for name in delta.reseeded_objects:
                        # category structure changed: the implicit
                        # containment assertions follow the schema, so
                        # re-derive them (DDA assertions are left alone)
                        ref = ObjectRef(schema_name, name)
                        for stale in [
                            assertion
                            for assertion in (
                                self.object_network.specified_assertions()
                            )
                            if assertion.source is Source.IMPLICIT
                            and assertion.first == ref
                        ]:
                            self.object_network.retract(
                                stale.first, stale.second
                            )
                        structure = schema.get(name)
                        if (
                            structure.is_category
                            and len(structure.parents) == 1
                        ):
                            parent = ObjectRef(
                                schema_name, structure.parents[0]
                            )
                            specified = any(
                                {assertion.first, assertion.second}
                                == {ref, parent}
                                for assertion in (
                                    self.object_network.specified_assertions()
                                )
                            )
                            if not specified:
                                self.object_network.specify(
                                    ref,
                                    parent,
                                    AssertionKind.CONTAINED_IN,
                                    source=Source.IMPLICIT,
                                    note="category structure",
                                )
                    self.registry.evolve_schema(
                        schema_name,
                        added=added,
                        dropped=dropped,
                        renamed=renamed,
                        touched=[
                            (schema_name, name)
                            for name in delta.all_touched()
                        ],
                        structural=delta.structural,
                    )
                    affected = [
                        ObjectRef(schema_name, name)
                        for name in delta.all_touched()
                    ]
                    scoped_repropagation(
                        self.object_network, affected, scope=scope
                    )
                    scoped_repropagation(
                        self.relationship_network, affected, scope=scope
                    )
                destructive = bool(retracted) or lost_memberships
                scope.assertions_retracted = len(retracted)
                scope.registry_classes_touched = (
                    len(added) + len(dropped) + len(renamed)
                )
                scope.ocs_cells_total = self.registry.view_cell_capacity()
                self.counters.evolution_edits_applied += 1
                self.counters.evolution_assertions_retracted += len(retracted)
                self.counters.evolution_pairs_repropagated += (
                    scope.pairs_repropagated
                )
                event_inverse = None
                if not destructive:
                    event_inverse = (
                        "evolution",
                        "apply_edit",
                        {
                            "schema": schema_name,
                            "edit": delta.inverse.to_payload(),
                        },
                    )
                self.kernel.bus.publish(
                    "evolution",
                    "apply_edit",
                    {
                        "schema": schema_name,
                        "edit": edit.to_payload(),
                        "inverse": delta.inverse.to_payload(),
                        "fingerprint": schema_fingerprint(schema),
                    },
                    schemas=frozenset({schema_name}),
                    inverse=event_inverse,
                )
        return EditOutcome(
            edit=edit,
            inverse=delta.inverse,
            scope=scope,
            retracted=tuple(retracted),
            destructive=destructive,
        )

    def _edit_conflict(
        self, schema_name: str, edit: "SchemaEdit"
    ) -> tuple[Assertion, ...]:
        """Specified DDA assertions a non-cascade drop would orphan."""
        from repro.evolution.edits import DropClass, DropRelationship

        if isinstance(edit, DropClass) and not edit.cascade:
            network = self.object_network
            ref = ObjectRef(schema_name, edit.object_name)
        elif isinstance(edit, DropRelationship) and not edit.cascade:
            network = self.relationship_network
            ref = ObjectRef(schema_name, edit.relationship)
        else:
            return ()
        return tuple(
            assertion
            for assertion in network.specified_assertions()
            if ref in assertion.pair and assertion.source is not Source.IMPLICIT
        )

    def reseed_networks(self) -> None:
        """Rebuild both assertion networks from the registered schemas.

        Assertions are the DDA's statements about the *current* shape of
        the schemas; after a structural edit they are re-collected, exactly
        as the tool's screens do.
        """
        self.object_network = AssertionNetwork(counters=self.counters)
        self.relationship_network = AssertionNetwork(counters=self.counters)
        self._bind_emitters()
        for schema in self.registry.schemas():
            self.object_network.seed_schema(schema)
            for relationship in schema.relationship_sets():
                self.relationship_network.add_object(
                    ObjectRef(schema.name, relationship.name)
                )

    def reset_to(self, schemas: Iterable[Schema]) -> None:
        """Rebuild this session in place over a new schema list.

        The old registry's cached views are disposed (their bus
        subscriptions cancelled), fresh components are created on the
        *same* kernel bus, and the schemas are re-added.  The kernel's
        checkout/rollback paths and the tool's Delete Schema both run
        through here.
        """
        self.registry.dispose_views()
        self.registry = EquivalenceRegistry(
            counters=self.counters, bus=self.kernel.bus
        )
        self.object_network = AssertionNetwork(counters=self.counters)
        self.relationship_network = AssertionNetwork(counters=self.counters)
        self._bind_emitters()
        for schema in schemas:
            self.add_schema(schema)

    # -- audit recording --------------------------------------------------------

    def attach_audit(self, log: "AuditLog | None" = None) -> "AuditLog":
        """Start recording every mutation into an audit log.

        The log becomes a **live-only tap on the kernel bus**: every event
        committed from now on — registry mutations, assertions, conflicts,
        integrations, federated queries — is appended in the same JSONL
        vocabulary as always, no matter which surface drives the mutation
        (this facade, the interactive tool's screens, or direct component
        calls).  If the session already has state, a ``session.snapshot``
        event capturing it is recorded first, so a replay of the log
        starts from the same point.  Returns the log (a fresh one is
        created when ``log`` is omitted).
        """
        from repro.obs.audit import AuditLog

        if self._audit_subscription is not None:
            self._audit_subscription.cancel()
            self._audit_subscription = None
        if log is None:
            log = AuditLog()
        self.audit_log = log
        if (
            self.registry.schemas()
            or self.object_network.specified_assertions()
            or self.relationship_network.specified_assertions()
        ):
            log.emit("session", "snapshot", self.state_payload())
        self._audit_subscription = self.kernel.bus.subscribe(
            lambda event: log.emit(event.scope, event.action, event.payload),
            live_only=True,
        )
        return log

    def detach_audit(self) -> "AuditLog | None":
        """Stop recording; returns the previously attached log, if any."""
        log = self.audit_log
        self.audit_log = None
        if self._audit_subscription is not None:
            self._audit_subscription.cancel()
            self._audit_subscription = None
        return log

    def resnapshot_audit(self) -> None:
        """Re-anchor the attached audit log after time travel.

        The audit tap is live-only — replayed events never reach it — so
        after an undo/redo/checkout/rollback the kernel appends a fresh
        absolute ``session.snapshot``, keeping the log replayable to the
        session's actual state.
        """
        if self.audit_log is not None:
            self.audit_log.emit("session", "snapshot", self.state_payload())

    def state_payload(self) -> dict:
        """The session's current state, in canonical replayable form.

        Class member order and assertion order are sorted: they are
        history-dependent in the live registry (merge order, retract +
        respecify), but two sessions holding the same partition and the
        same assertions must fingerprint identically.
        """
        from repro.ecr.json_io import schema_to_dict

        assertions = []
        for relationships, network in (
            (False, self.object_network),
            (True, self.relationship_network),
        ):
            for assertion in network.specified_assertions():
                if assertion.source is Source.IMPLICIT:
                    continue  # re-seeded by add_schema on replay
                assertions.append(
                    {
                        "first": str(assertion.first),
                        "second": str(assertion.second),
                        "kind": assertion.kind.code,
                        "source": assertion.source.name,
                        "note": assertion.note,
                        "relationships": relationships,
                    }
                )
        return {
            "schemas": [
                schema_to_dict(schema) for schema in self.registry.schemas()
            ],
            "equivalences": sorted(
                sorted(str(ref) for ref in members)
                for members in self.registry.nontrivial_classes()
            ),
            "assertions": sorted(
                assertions,
                key=lambda entry: (
                    entry["relationships"],
                    entry["first"],
                    entry["second"],
                ),
            ),
        }

    def schema(self, name: str) -> Schema:
        """One registered schema by name."""
        return self.registry.schema(name)

    def schemas(self) -> list[Schema]:
        """All registered schemas, in registration order."""
        return self.registry.schemas()

    # -- Phase 2: equivalences and similarity views ----------------------------

    def declare_equivalent(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> list[EquivalenceIssue]:
        """Screen 7 Add: merge two attributes' equivalence classes."""
        with self.kernel.group():
            return self.registry.declare_equivalent(first, second)

    def remove_from_class(self, ref: AttributeRef | str) -> None:
        """Screen 7 Delete: move an attribute back to a singleton class."""
        with self.kernel.group():
            self.registry.remove_from_class(ref)

    def ocs(
        self,
        first_schema: str,
        second_schema: str,
        kind_filter: ObjectKind | None = None,
    ) -> "OcsMatrix":
        """The memoized OCS matrix for a schema pair."""
        return self.registry.ocs(first_schema, second_schema, kind_filter)

    def acs(self, first_schema: str, second_schema: str) -> "AcsMatrix":
        """The memoized ACS matrix for a schema pair."""
        return self.registry.acs(first_schema, second_schema)

    def candidate_pairs(
        self,
        first_schema: str,
        second_schema: str,
        *,
        relationships: bool = False,
        include_zero: bool = False,
    ) -> list[CandidatePair]:
        """The ranked Screen 8 list (memoized; incrementally invalidated)."""
        kind = ObjectKind.RELATIONSHIP if relationships else None
        return ordered_object_pairs(
            self.registry,
            first_schema,
            second_schema,
            kind_filter=kind,
            include_zero=include_zero,
        )

    # -- Phase 3: assertions ----------------------------------------------------

    def network_for(self, relationships: bool = False) -> AssertionNetwork:
        """The object-class or relationship-set assertion network."""
        return self.relationship_network if relationships else self.object_network

    def specify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        *,
        relationships: bool = False,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Record a Screen 8 assertion (deriving and conflict-checking)."""
        with self.kernel.group():
            return self.network_for(relationships).specify(
                first, second, kind, source, note
            )

    def respecify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        *,
        relationships: bool = False,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Screen 9 review-and-modify: replace the assertion on a pair.

        The retract + specify pair commits as **one** kernel group, so a
        single undo reverts the whole review-and-modify action.
        """
        with self.kernel.group():
            return self.network_for(relationships).respecify(
                first, second, kind, source, note
            )

    def retract(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> None:
        """Withdraw an assertion; the network repairs incrementally."""
        with self.kernel.group():
            self.network_for(relationships).retract(first, second)

    def feasible(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> frozenset[Relation]:
        """Feasible relations between two objects, oriented first→second."""
        return self.network_for(relationships).feasible(first, second)

    def assertion_for(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> Assertion | None:
        """The specified or derived assertion on a pair, if any."""
        return self.network_for(relationships).assertion_for(first, second)

    def explain(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> list[Assertion]:
        """The Screen 9 support chain behind a pair's current state."""
        return self.network_for(relationships).explain(first, second)

    # -- Phase 3½: solver-backed suggestions and what-if explanations -----------

    def suggest_assertions(
        self,
        first_schema: str,
        second_schema: str,
        *,
        relationships: bool = False,
        limit: int = 10,
    ):
        """Ranked, trial-propagated EQUALS candidates (the Screen 10 list).

        Each suggestion is labelled ``safe`` or ``conflicting`` by the
        batch solver; see
        :func:`repro.solver.suggest_equivalence_assertions`.
        """
        from repro.solver.suggest import suggest_equivalence_assertions

        return suggest_equivalence_assertions(
            self.registry,
            self.network_for(relationships),
            first_schema,
            second_schema,
            relationships=relationships,
            limit=limit,
            counters=self.counters,
        )

    def explain_assertion(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        *,
        relationships: bool = False,
    ):
        """What specifying ``kind`` on a pair would do, without doing it.

        Returns an :class:`repro.solver.AssertionExplanation`: consistent
        or not, the minimal conflict set when not, the newly derived
        consequences when it is.  The network is never mutated.
        """
        from repro.solver.engine import explain_assertion

        return explain_assertion(
            self.network_for(relationships), first, second, kind
        )

    # -- Phase 4: integration ----------------------------------------------------

    def integrate(
        self,
        first_schema: str,
        second_schema: str,
        *,
        result_name: str = "integrated",
        options: "IntegrationOptions | None" = None,
        merge_memo=None,
    ) -> "IntegrationResult":
        """Integrate two registered schemas using the session's state.

        Commits a ``session.integrate`` event carrying the options and
        the result schema's SHA-256 fingerprint — the audit tap records
        it, replay verifies bitwise-identical reproduction against it,
        and redo re-runs the integration from it.  ``merge_memo`` (a
        :class:`~repro.integration.patching.MergeMemo`) warms the
        attribute-merge cache evolution patching reuses; it never changes
        the result.
        """
        from dataclasses import asdict

        from repro.integration.integrator import Integrator
        from repro.integration.options import IntegrationOptions
        from repro.kernel.apply import schema_fingerprint

        resolved = options if options is not None else IntegrationOptions()
        integrator = Integrator(
            self.registry,
            self.object_network,
            self.relationship_network,
            resolved,
            merge_memo=merge_memo,
        )
        with self.kernel.group():
            result = integrator.integrate(
                first_schema, second_schema, result_name
            )
            event = self.kernel.bus.publish(
                "session",
                "integrate",
                {
                    "first": first_schema,
                    "second": second_schema,
                    "result_name": result_name,
                    "options": asdict(resolved),
                    "fingerprint": schema_fingerprint(result.schema),
                },
            )
            if event.offset:
                self.kernel.record_result(event.offset, result)
        return result

    # -- instrumentation ----------------------------------------------------------

    def counters_snapshot(self) -> dict[str, int]:
        """The shared work counters as a plain dict."""
        return self.counters.snapshot()

    def reset_counters(self) -> None:
        """Zero the shared work counters (benchmarks call this between phases)."""
        self.counters.reset()
