"""The :class:`AnalysisSession` facade — the recommended Phase 2/3 entry point.

One ``AnalysisSession`` owns everything the paper's interactive loop
(Screens 7–9) mutates: the attribute-equivalence registry, the memoized
ACS/OCS views and ranked candidate lists, and the two assertion networks
(object classes and relationship sets).  All components share one
:class:`~repro.instrumentation.AnalysisCounters`, so a benchmark can reset
the counters, replay a DDA script and read exactly how much incremental
work each action cost.

Compared to wiring :class:`EquivalenceRegistry`, :class:`OcsMatrix` and
:class:`AssertionNetwork` together by hand, the facade

* keeps the cached matrices subscribed to the registry's change events, so
  an equivalence declared on Screen 7 invalidates exactly the object pairs
  it touched;
* routes assertions to the right network (``relationships=True`` selects
  the relationship-set subphase);
* accepts dotted-string references everywhere an ``ObjectRef`` or
  ``AttributeRef`` is expected; and
* exposes :meth:`integrate` for Phase 4 without constructing an
  :class:`~repro.integration.integrator.Integrator` manually.

Example::

    from repro import AnalysisSession, AssertionKind

    session = AnalysisSession([sc1, sc2])
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    for pair in session.candidate_pairs("sc1", "sc2"):
        print(pair)
    session.specify("sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS)
    result = session.integrate("sc1", "sc2")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.attributes import AttributeRef
from repro.ecr.objects import ObjectKind
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.ordering import CandidatePair, ordered_object_pairs
from repro.equivalence.registry import EquivalenceIssue, EquivalenceRegistry
from repro.errors import EquivalenceError
from repro.instrumentation import AnalysisCounters

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.equivalence.acs import AcsMatrix
    from repro.equivalence.ocs import OcsMatrix
    from repro.integration.options import IntegrationOptions
    from repro.integration.result import IntegrationResult
    from repro.obs.audit import AuditLog


class AnalysisSession:
    """Registry + cached matrices + assertion networks behind one handle."""

    def __init__(
        self,
        schemas: Iterable[Schema] = (),
        *,
        registry: EquivalenceRegistry | None = None,
        object_network: AssertionNetwork | None = None,
        relationship_network: AssertionNetwork | None = None,
        counters: AnalysisCounters | None = None,
        audit: "AuditLog | None" = None,
    ) -> None:
        schemas = list(schemas)
        if registry is not None and schemas:
            raise EquivalenceError(
                "pass either schemas or a pre-built registry, not both"
            )
        self.counters = counters if counters is not None else AnalysisCounters()
        if registry is None:
            registry = EquivalenceRegistry(counters=self.counters)
        else:
            registry.counters = self.counters
        self.registry = registry
        if object_network is None:
            object_network = AssertionNetwork(counters=self.counters)
        else:
            object_network.counters = self.counters
        if relationship_network is None:
            relationship_network = AssertionNetwork(counters=self.counters)
        else:
            relationship_network.counters = self.counters
        self.object_network = object_network
        self.relationship_network = relationship_network
        #: the attached audit log, if any (see :meth:`attach_audit`)
        self.audit_log: "AuditLog | None" = None
        if audit is not None:
            self.attach_audit(audit)
        for schema in schemas:
            self.add_schema(schema)

    # -- schema management ----------------------------------------------------

    def add_schema(self, schema: Schema) -> None:
        """Register a schema everywhere: registry, networks, implicit edges."""
        self.registry.register_schema(schema)
        self.object_network.seed_schema(schema)
        for relationship in schema.relationship_sets():
            self.relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )

    def refresh_schema(
        self, schema_name: str, replacement: Schema | None = None
    ) -> None:
        """Re-sync the registry and reseed the networks after schema edits.

        ``replacement`` swaps in a new :class:`Schema` object under the
        same name first (audit replay uses this to reproduce in-place
        edits it cannot observe).
        """
        self.registry.refresh_schema(schema_name, replacement=replacement)
        self.reseed_networks()

    def reseed_networks(self) -> None:
        """Rebuild both assertion networks from the registered schemas.

        Assertions are the DDA's statements about the *current* shape of
        the schemas; after a structural edit they are re-collected, exactly
        as the tool's screens do.
        """
        self.object_network = AssertionNetwork(counters=self.counters)
        self.relationship_network = AssertionNetwork(counters=self.counters)
        self._bind_audit_sinks()
        for schema in self.registry.schemas():
            self.object_network.seed_schema(schema)
            for relationship in schema.relationship_sets():
                self.relationship_network.add_object(
                    ObjectRef(schema.name, relationship.name)
                )

    # -- audit recording --------------------------------------------------------

    def attach_audit(self, log: "AuditLog | None" = None) -> "AuditLog":
        """Start recording every mutation into an audit log.

        Binds :class:`~repro.obs.audit.AuditSink` handles to the registry
        and both networks, so the log sees mutations no matter which
        surface drives them (this facade, the interactive tool's screens,
        or direct component calls).  If the session already has state, a
        ``session.snapshot`` event capturing it is recorded first, so a
        replay of the log starts from the same point.  Returns the log
        (a fresh one is created when ``log`` is omitted).
        """
        from repro.obs.audit import AuditLog

        if log is None:
            log = AuditLog()
        self.audit_log = log
        if (
            self.registry.schemas()
            or self.object_network.specified_assertions()
            or self.relationship_network.specified_assertions()
        ):
            log.emit("session", "snapshot", self._snapshot_payload())
        self._bind_audit_sinks()
        return log

    def detach_audit(self) -> "AuditLog | None":
        """Stop recording; returns the previously attached log, if any."""
        log = self.audit_log
        self.audit_log = None
        self._bind_audit_sinks()
        return log

    def _bind_audit_sinks(self) -> None:
        """(Re)bind component sinks to :attr:`audit_log` (or unbind)."""
        log = self.audit_log
        if log is None:
            self.registry.audit = None
            self.object_network.audit = None
            self.relationship_network.audit = None
            return
        from repro.obs.audit import AuditSink

        self.registry.audit = AuditSink(log, "registry")
        self.object_network.audit = AuditSink(log, "object_network")
        self.relationship_network.audit = AuditSink(log, "relationship_network")

    def _snapshot_payload(self) -> dict:
        """The session's current state, in replayable form."""
        from repro.ecr.json_io import schema_to_dict

        assertions = []
        for relationships, network in (
            (False, self.object_network),
            (True, self.relationship_network),
        ):
            for assertion in network.specified_assertions():
                if assertion.source is Source.IMPLICIT:
                    continue  # re-seeded by add_schema on replay
                assertions.append(
                    {
                        "first": str(assertion.first),
                        "second": str(assertion.second),
                        "kind": assertion.kind.code,
                        "source": assertion.source.name,
                        "note": assertion.note,
                        "relationships": relationships,
                    }
                )
        return {
            "schemas": [
                schema_to_dict(schema) for schema in self.registry.schemas()
            ],
            "equivalences": [
                [str(ref) for ref in members]
                for members in self.registry.nontrivial_classes()
            ],
            "assertions": assertions,
        }

    def schema(self, name: str) -> Schema:
        """One registered schema by name."""
        return self.registry.schema(name)

    def schemas(self) -> list[Schema]:
        """All registered schemas, in registration order."""
        return self.registry.schemas()

    # -- Phase 2: equivalences and similarity views ----------------------------

    def declare_equivalent(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> list[EquivalenceIssue]:
        """Screen 7 Add: merge two attributes' equivalence classes."""
        return self.registry.declare_equivalent(first, second)

    def remove_from_class(self, ref: AttributeRef | str) -> None:
        """Screen 7 Delete: move an attribute back to a singleton class."""
        self.registry.remove_from_class(ref)

    def ocs(
        self,
        first_schema: str,
        second_schema: str,
        kind_filter: ObjectKind | None = None,
    ) -> "OcsMatrix":
        """The memoized OCS matrix for a schema pair."""
        return self.registry.ocs(first_schema, second_schema, kind_filter)

    def acs(self, first_schema: str, second_schema: str) -> "AcsMatrix":
        """The memoized ACS matrix for a schema pair."""
        return self.registry.acs(first_schema, second_schema)

    def candidate_pairs(
        self,
        first_schema: str,
        second_schema: str,
        *,
        relationships: bool = False,
        include_zero: bool = False,
    ) -> list[CandidatePair]:
        """The ranked Screen 8 list (memoized; incrementally invalidated)."""
        kind = ObjectKind.RELATIONSHIP if relationships else None
        return ordered_object_pairs(
            self.registry,
            first_schema,
            second_schema,
            kind_filter=kind,
            include_zero=include_zero,
        )

    # -- Phase 3: assertions ----------------------------------------------------

    def network_for(self, relationships: bool = False) -> AssertionNetwork:
        """The object-class or relationship-set assertion network."""
        return self.relationship_network if relationships else self.object_network

    def specify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        *,
        relationships: bool = False,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Record a Screen 8 assertion (deriving and conflict-checking)."""
        return self.network_for(relationships).specify(
            first, second, kind, source, note
        )

    def respecify(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        *,
        relationships: bool = False,
        source: Source = Source.DDA,
        note: str = "",
    ) -> Assertion:
        """Screen 9 review-and-modify: replace the assertion on a pair."""
        return self.network_for(relationships).respecify(
            first, second, kind, source, note
        )

    def retract(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> None:
        """Withdraw an assertion; the network repairs incrementally."""
        self.network_for(relationships).retract(first, second)

    def feasible(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> frozenset[Relation]:
        """Feasible relations between two objects, oriented first→second."""
        return self.network_for(relationships).feasible(first, second)

    def assertion_for(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> Assertion | None:
        """The specified or derived assertion on a pair, if any."""
        return self.network_for(relationships).assertion_for(first, second)

    def explain(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        *,
        relationships: bool = False,
    ) -> list[Assertion]:
        """The Screen 9 support chain behind a pair's current state."""
        return self.network_for(relationships).explain(first, second)

    # -- Phase 4: integration ----------------------------------------------------

    def integrate(
        self,
        first_schema: str,
        second_schema: str,
        *,
        result_name: str = "integrated",
        options: "IntegrationOptions | None" = None,
    ) -> "IntegrationResult":
        """Integrate two registered schemas using the session's state."""
        from repro.integration.integrator import Integrator
        from repro.integration.options import IntegrationOptions

        resolved = options if options is not None else IntegrationOptions()
        integrator = Integrator(
            self.registry,
            self.object_network,
            self.relationship_network,
            resolved,
        )
        result = integrator.integrate(first_schema, second_schema, result_name)
        if self.audit_log is not None:
            from dataclasses import asdict

            from repro.obs.replay import schema_fingerprint

            self.audit_log.emit(
                "session",
                "integrate",
                {
                    "first": first_schema,
                    "second": second_schema,
                    "result_name": result_name,
                    "options": asdict(resolved),
                    "fingerprint": schema_fingerprint(result.schema),
                },
            )
        return result

    # -- instrumentation ----------------------------------------------------------

    def counters_snapshot(self) -> dict[str, int]:
        """The shared work counters as a plain dict."""
        return self.counters.snapshot()

    def reset_counters(self) -> None:
        """Zero the shared work counters (benchmarks call this between phases)."""
        self.counters.reset()
