"""The attribute-equivalence registry behind Screen 7.

The registry assigns every attribute of every registered schema an
``Eq_class #`` exactly as the tool's Equivalence Class Creation and Deletion
Screen displays: initially each attribute sits in its own class; when the
DDA declares two attributes equivalent, the class number of one becomes the
class number of the other (we keep the smaller number so renumbering is
deterministic).  Deleting an attribute from its class moves it back into a
fresh singleton class.

Declaring an equivalence never fails for semantic reasons — equivalence is
the DDA's subjective judgement — but the registry reports *issues* (domain
incompatibility, key-flag mismatch) the tool surfaces as warnings, following
the characteristics Larson et al. (1987) compare.

The registry is also a **publisher on the event-sourced kernel bus**:
every mutation bumps a monotonically increasing :attr:`version` and is
committed as a ``registry.*`` event on :attr:`bus` (an
:class:`~repro.kernel.bus.EventBus`, created standalone or shared with an
:class:`~repro.kernel.kernel.Kernel`).  The cached OCS/ACS views obtained
through :meth:`ocs` / :meth:`acs` subscribe through :meth:`subscribe`,
which delivers the classic :class:`RegistryChange` view of each event, and
invalidate only the object pairs a change actually touched, so the
interactive loop never rebuilds a matrix from scratch per keystroke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.ecr.attributes import Attribute, AttributeRef
from repro.ecr.coerce import coerce_attribute_ref
from repro.ecr.domains import domains_compatible
from repro.ecr.schema import Schema
from repro.errors import DuplicateNameError, EquivalenceError, UnknownNameError
from repro.kernel.bus import EventBus, Subscription
from repro.kernel.events import NO_CHANGE
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.ecr.objects import ObjectKind
    from repro.equivalence.acs import AcsMatrix
    from repro.equivalence.ocs import OcsMatrix
    from repro.kernel.events import Event


@dataclass(frozen=True)
class EquivalenceIssue:
    """A non-fatal observation about a declared equivalence."""

    first: AttributeRef
    second: AttributeRef
    message: str

    def __str__(self) -> str:
        return f"{self.first} ~ {self.second}: {self.message}"


@dataclass(frozen=True)
class RegistryChange:
    """One mutation of the registry, as seen by the cached views.

    ``objects`` lists the ``(schema, object)`` owners whose equivalence
    structure changed — a view only needs to drop cells whose row or column
    is one of these.  ``schemas`` lists schemas whose *shape* changed
    (structures or attributes added/removed), which forces the affected
    views to re-derive their rows and columns entirely.
    """

    kind: str
    version: int
    objects: frozenset[tuple[str, str]] = frozenset()
    schemas: frozenset[str] = frozenset()

    def touches_schema(self, name: str) -> bool:
        """Whether this change affects anything inside ``name``."""
        return name in self.schemas or any(
            schema == name for schema, _ in self.objects
        )


class EquivalenceRegistry:
    """Equivalence classes over the attributes of registered schemas."""

    #: event action -> the ``RegistryChange.kind`` subscribers have always seen
    _CHANGE_KINDS = {
        "register_schema": "register",
        "refresh_schema": "refresh",
        "declare_equivalent": "declare",
        "remove_from_class": "remove",
        "restore_classes": "restore",
        "evolve_schema": "evolve",
    }

    def __init__(
        self,
        schemas: Iterable[Schema] = (),
        *,
        counters: AnalysisCounters | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self._schemas: dict[str, Schema] = {}
        self._class_of: dict[AttributeRef, int] = {}
        self._members: dict[int, list[AttributeRef]] = {}
        self._next_class = 1
        self._version = 0
        #: the kernel bus every mutation is committed to (a standalone
        #: registry gets its own; an :class:`AnalysisSession` shares its
        #: kernel's bus so the audit tap, views and undo all see one log)
        self.bus = bus if bus is not None else EventBus()
        #: shared work counters (an :class:`AnalysisSession` injects its own)
        self.counters = counters if counters is not None else AnalysisCounters()
        self._ocs_cache: dict[tuple[str, str, object], "OcsMatrix"] = {}
        self._acs_cache: dict[tuple[str, str], "AcsMatrix"] = {}
        for schema in schemas:
            self.register_schema(schema)

    # -- versioning and change events ---------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter."""
        return self._version

    def subscribe(
        self, listener: Callable[[RegistryChange], None]
    ) -> Subscription:
        """Deliver future mutations to ``listener`` as :class:`RegistryChange`s.

        The listener is backed by a bus subscription on the ``registry``
        scope; the returned :class:`~repro.kernel.bus.Subscription` handle
        cancels it.  Events that changed nothing (a re-declared
        equivalence, a removal from a singleton class) are filtered out,
        matching the old direct-notification behaviour.
        """

        def adapter(event: "Event") -> None:
            if not event.objects and not event.schemas:
                return  # no-op mutation: nothing to invalidate
            kind = self._CHANGE_KINDS.get(event.action)
            if kind is None:
                return
            listener(
                RegistryChange(
                    kind, self._version, event.objects, event.schemas
                )
            )

        return self.bus.subscribe(adapter, scopes=("registry",))

    def _emit(
        self,
        action: str,
        payload: dict[str, Any],
        *,
        objects: frozenset = frozenset(),
        schemas: frozenset = frozenset(),
        inverse: object = None,
        bump: bool = True,
    ) -> None:
        """Commit one mutation as a ``registry.*`` event on the bus.

        ``bump=False`` publishes without advancing :attr:`version` — used
        for no-op mutations that stay in the history (the audit tap
        records the DDA's attempt) but must not trigger invalidation.
        """
        if bump:
            self._version += 1
            self.counters.registry_mutations += 1
        self.bus.publish(
            "registry",
            action,
            payload,
            objects=objects,
            schemas=schemas,
            inverse=inverse,
        )

    @staticmethod
    def _owners(members: Iterable[AttributeRef]) -> frozenset[tuple[str, str]]:
        return frozenset(ref.owner for ref in members)

    # -- schema registration -------------------------------------------------

    def register_schema(self, schema: Schema) -> None:
        """Register a schema, numbering each of its attributes.

        Class numbers are assigned in schema/structure/attribute order, which
        reproduces the numbering a DDA sees when walking Screen 7.
        """
        if schema.name in self._schemas:
            raise DuplicateNameError("schema", schema.name)
        from repro.ecr.json_io import schema_to_dict

        with span(
            "phase1.registry.register_schema",
            counters=self.counters,
            schema=schema.name,
        ):
            self._schemas[schema.name] = schema
            for ref in schema.all_attribute_refs():
                self._class_of[ref] = self._next_class
                self._members[self._next_class] = [ref]
                self._next_class += 1
            self._emit(
                "register_schema",
                {"schema": schema_to_dict(schema)},
                schemas=frozenset({schema.name}),
            )

    def schemas(self) -> list[Schema]:
        """The registered schemas, in registration order."""
        return list(self._schemas.values())

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownNameError("schema", name) from None

    def resolve(self, ref: AttributeRef) -> Attribute:
        """Dereference a qualified attribute (validating every level)."""
        return self.schema(ref.schema).resolve_attribute(ref)

    def refresh_schema(
        self, schema_name: str, replacement: Schema | None = None
    ) -> None:
        """Re-scan a registered schema after external edits.

        Newly added attributes get fresh singleton classes; attributes that
        disappeared are dropped from their classes.  Existing class
        memberships are preserved.  ``replacement`` swaps in a new
        :class:`Schema` object under the same name first (the audit replay
        uses this to reproduce in-place edits it cannot observe).
        """
        self.schema(schema_name)  # validate the name before mutating
        if replacement is not None:
            if replacement.name != schema_name:
                raise EquivalenceError(
                    f"replacement schema is named {replacement.name!r}, "
                    f"not {schema_name!r}"
                )
            self._schemas[schema_name] = replacement
        from repro.ecr.json_io import schema_to_dict

        with span(
            "phase2.registry.refresh_schema",
            counters=self.counters,
            schema=schema_name,
        ):
            schema = self._schemas[schema_name]
            current = set(schema.all_attribute_refs())
            known = {ref for ref in self._class_of if ref.schema == schema_name}
            for ref in sorted(known - current):
                self._detach(ref)
                del self._class_of[ref]
            for ref in schema.all_attribute_refs():
                if ref not in self._class_of:
                    self._class_of[ref] = self._next_class
                    self._members[self._next_class] = [ref]
                    self._next_class += 1
            self._emit(
                "refresh_schema",
                {"schema": schema_to_dict(schema)},
                schemas=frozenset({schema_name}),
            )

    def evolve_schema(
        self,
        schema_name: str,
        *,
        added: Iterable[AttributeRef | str] = (),
        dropped: Iterable[AttributeRef | str] = (),
        renamed: Iterable[tuple] = (),
        touched: Iterable[tuple[str, str]] = (),
        structural: bool = False,
    ) -> None:
        """Apply the precise attribute deltas of one schema edit.

        Unlike :meth:`refresh_schema` — which re-scans the whole schema and
        *loses* class membership on a rename (the old ref vanishes, the new
        one arrives as a fresh singleton) — this applies exactly the deltas
        a :class:`~repro.evolution.edits.SchemaEdit` computed: renamed
        attributes keep their equivalence class (and their position inside
        it, so an inverse rename restores the registry bit-for-bit),
        dropped attributes leave their class, added attributes arrive as
        singletons.  ``touched`` lists extra ``(schema, object)`` owners
        whose definition changed without any attribute delta (key flags,
        cardinalities, retargets) so the cached views invalidate their
        cells; ``structural`` marks class/relationship-set membership
        changes, which force the views to re-derive rows and columns.
        """
        self.schema(schema_name)  # validate the name before mutating
        added = [coerce_attribute_ref(ref) for ref in added]
        dropped = [coerce_attribute_ref(ref) for ref in dropped]
        renamed = [
            (coerce_attribute_ref(old), coerce_attribute_ref(new))
            for old, new in renamed
        ]
        with span(
            "evolution.registry.evolve_schema",
            counters=self.counters,
            schema=schema_name,
        ):
            affected: set[tuple[str, str]] = set(touched)
            for old, new in renamed:
                number = self._class_of.pop(old, None)
                if number is None:
                    raise EquivalenceError(f"unregistered attribute {old}")
                members = self._members[number]
                members[members.index(old)] = new
                self._class_of[new] = number
                affected.add(old.owner)
                affected.add(new.owner)
            for ref in dropped:
                if ref not in self._class_of:
                    continue
                affected.update(self._owners(self._members[self._class_of[ref]]))
                self._detach(ref)
                del self._class_of[ref]
            for ref in added:
                if ref in self._class_of:
                    continue
                self._class_of[ref] = self._next_class
                self._members[self._next_class] = [ref]
                self._next_class += 1
                affected.add(ref.owner)
            self._emit(
                "evolve_schema",
                {
                    "schema": schema_name,
                    "added": [str(ref) for ref in added],
                    "dropped": [str(ref) for ref in dropped],
                    "renamed": [[str(old), str(new)] for old, new in renamed],
                    "touched": sorted(f"{s}.{o}" for s, o in touched),
                },
                objects=frozenset(affected),
                schemas=frozenset({schema_name}) if structural else frozenset(),
            )

    # -- cached views ---------------------------------------------------------

    def ocs(
        self,
        first_schema: str,
        second_schema: str,
        kind_filter: "ObjectKind | None" = None,
    ) -> "OcsMatrix":
        """The memoized OCS matrix between two registered schemas.

        Repeated calls with the same arguments return the *same* matrix
        object; its cells are cached and invalidated per object pair as the
        registry mutates.  This is the recommended way to obtain a matrix —
        direct :class:`~repro.equivalence.ocs.OcsMatrix` construction is
        deprecated.
        """
        from repro.equivalence.ocs import OcsMatrix

        key = (first_schema, second_schema, kind_filter)
        matrix = self._ocs_cache.get(key)
        if matrix is None:
            self.schema(first_schema)
            self.schema(second_schema)
            matrix = OcsMatrix(
                self,
                first_schema,
                second_schema,
                kind_filter=kind_filter,
                _trusted=True,
            )
            self._ocs_cache[key] = matrix
        return matrix

    def acs(self, first_schema: str, second_schema: str) -> "AcsMatrix":
        """The memoized ACS matrix between two registered schemas.

        Like :meth:`ocs`, returns one long-lived cached view per schema
        pair; direct :class:`~repro.equivalence.acs.AcsMatrix` construction
        is deprecated.
        """
        from repro.equivalence.acs import AcsMatrix

        key = (first_schema, second_schema)
        matrix = self._acs_cache.get(key)
        if matrix is None:
            self.schema(first_schema)
            self.schema(second_schema)
            matrix = AcsMatrix(self, first_schema, second_schema, _trusted=True)
            self._acs_cache[key] = matrix
        return matrix

    # -- equivalence editing -------------------------------------------------

    def declare_equivalent(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> list[EquivalenceIssue]:
        """Merge the classes of two attributes; returns advisory issues.

        Raises
        ------
        EquivalenceError
            If either reference does not resolve, or both name the same
            attribute.
        """
        first = coerce_attribute_ref(first)
        second = coerce_attribute_ref(second)
        if first == second:
            raise EquivalenceError(
                f"cannot declare {first} equivalent to itself"
            )
        attr_a = self._checked_resolve(first)
        attr_b = self._checked_resolve(second)
        with span("phase2.registry.declare_equivalent", counters=self.counters):
            issues = self._inspect_pair(first, attr_a, second, attr_b)
            class_a = self._class_of[first]
            class_b = self._class_of[second]
            payload = {"first": str(first), "second": str(second)}
            if class_a != class_b:
                groups = [
                    [number, [str(ref) for ref in self._members[number]]]
                    for number in (class_a, class_b)
                ]
                keep, drop = sorted((class_a, class_b))
                for ref in self._members.pop(drop):
                    self._class_of[ref] = keep
                    self._members[keep].append(ref)
                self._emit(
                    "declare_equivalent",
                    payload,
                    objects=self._owners(self._members[keep]),
                    inverse=("registry", "restore_classes", {"groups": groups}),
                )
            else:
                # already merged: record the attempt, invalidate nothing
                self._emit(
                    "declare_equivalent", payload,
                    inverse=NO_CHANGE, bump=False,
                )
        return issues

    def remove_from_class(self, ref: AttributeRef | str) -> None:
        """Move an attribute back into a fresh singleton class (Screen 7 Delete)."""
        ref = coerce_attribute_ref(ref)
        self._checked_resolve(ref)
        old_class = self._class_of[ref]
        old_members = self._members[old_class]
        if len(old_members) == 1:
            # already alone: record the attempt, invalidate nothing
            self._emit(
                "remove_from_class", {"ref": str(ref)},
                inverse=NO_CHANGE, bump=False,
            )
            return
        with span("phase2.registry.remove_from_class", counters=self.counters):
            touched = self._owners(old_members)
            groups = [[old_class, [str(member) for member in old_members]]]
            self._detach(ref)
            self._class_of[ref] = self._next_class
            self._members[self._next_class] = [ref]
            self._next_class += 1
            self._emit(
                "remove_from_class",
                {"ref": str(ref)},
                objects=touched,
                inverse=("registry", "restore_classes", {"groups": groups}),
            )

    def restore_classes(self, groups: Iterable) -> None:
        """Reassign exact class numbers/memberships (inverse application).

        ``groups`` is ``[[class_number, [attribute refs]], ...]`` — the
        pre-mutation membership captured by :meth:`declare_equivalent` /
        :meth:`remove_from_class` as their inverse descriptor.  Every
        listed attribute is detached from wherever it currently sits and
        reattached to its recorded class.
        """
        resolved = [
            (int(number), [coerce_attribute_ref(ref) for ref in refs])
            for number, refs in groups
        ]
        touched: set[tuple[str, str]] = set()
        with span("phase2.registry.restore_classes", counters=self.counters):
            for _, refs in resolved:
                for ref in refs:
                    if ref in self._class_of:
                        self._detach(ref)
            for number, refs in resolved:
                members = self._members.setdefault(number, [])
                for ref in refs:
                    self._class_of[ref] = number
                    members.append(ref)
                    touched.add(ref.owner)
                self._next_class = max(self._next_class, number + 1)
            self._emit(
                "restore_classes",
                {
                    "groups": [
                        [number, [str(ref) for ref in refs]]
                        for number, refs in resolved
                    ]
                },
                objects=frozenset(touched),
            )

    def view_cell_capacity(self) -> int:
        """Total cell count across the live cached OCS views.

        The denominator of the evolution repair-scope report ("recomputed
        14/2,400 OCS cells"): how many cells a full invalidation would
        eventually recompute, versus how many a localized repair did.
        """
        return sum(
            len(matrix.rows) * len(matrix.columns)
            for matrix in self._ocs_cache.values()
        )

    def dispose_views(self) -> None:
        """Cancel the cached matrices' bus subscriptions and drop them.

        Called when a session rebuilds onto a fresh registry sharing the
        same bus (``reset_to``): the old views must stop reacting to
        events that now describe a registry they no longer belong to.
        """
        for matrix in (*self._ocs_cache.values(), *self._acs_cache.values()):
            matrix.close()
        self._ocs_cache.clear()
        self._acs_cache.clear()

    def _detach(self, ref: AttributeRef) -> None:
        old_class = self._class_of[ref]
        members = self._members[old_class]
        members.remove(ref)
        if not members:
            del self._members[old_class]

    # -- queries ----------------------------------------------------------------

    def class_number(self, ref: AttributeRef | str) -> int:
        """The ``Eq_class #`` shown on Screen 7 for this attribute."""
        ref = coerce_attribute_ref(ref)
        try:
            return self._class_of[ref]
        except KeyError:
            raise EquivalenceError(f"unregistered attribute {ref}") from None

    def class_members(self, ref: AttributeRef | str) -> list[AttributeRef]:
        """All attributes equivalent to ``ref`` (including itself)."""
        return list(self._members[self.class_number(ref)])

    def are_equivalent(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> bool:
        """Whether two attributes are currently in the same class."""
        return self.class_number(first) == self.class_number(second)

    def classes(self) -> list[list[AttributeRef]]:
        """All equivalence classes, ordered by class number."""
        return [list(self._members[num]) for num in sorted(self._members)]

    def nontrivial_classes(self) -> list[list[AttributeRef]]:
        """Classes with at least two members — the DDA's actual declarations."""
        return [members for members in self.classes() if len(members) > 1]

    def equivalent_class_count(
        self, first_object: tuple[str, str], second_object: tuple[str, str]
    ) -> int:
        """Number of equivalence classes spanning both object classes.

        This is the count the OCS matrix stores: classes that contain at
        least one attribute of each object.
        """
        numbers_a = self._object_class_numbers(first_object)
        numbers_b = self._object_class_numbers(second_object)
        return len(numbers_a & numbers_b)

    def shared_classes(
        self, first_object: tuple[str, str], second_object: tuple[str, str]
    ) -> list[list[AttributeRef]]:
        """The equivalence classes spanning both object classes."""
        shared = self._object_class_numbers(first_object) & self._object_class_numbers(
            second_object
        )
        return [list(self._members[num]) for num in sorted(shared)]

    def _object_class_numbers(self, owner: tuple[str, str]) -> set[int]:
        schema_name, object_name = owner
        schema = self.schema(schema_name)
        structure = schema.get(object_name)
        return {
            self._class_of[AttributeRef(schema_name, object_name, attribute.name)]
            for attribute in structure.attributes
        }

    # -- helpers ------------------------------------------------------------------

    def _coerce(self, ref: AttributeRef | str) -> AttributeRef:
        """Deprecated spelling of :func:`repro.ecr.coerce.coerce_attribute_ref`."""
        return coerce_attribute_ref(ref)

    def _checked_resolve(self, ref: AttributeRef) -> Attribute:
        try:
            attribute = self.resolve(ref)
        except UnknownNameError as exc:
            raise EquivalenceError(str(exc)) from exc
        if ref not in self._class_of:
            self._class_of[ref] = self._next_class
            self._members[self._next_class] = [ref]
            self._next_class += 1
        return attribute

    def _inspect_pair(
        self,
        first: AttributeRef,
        attr_a: Attribute,
        second: AttributeRef,
        attr_b: Attribute,
    ) -> list[EquivalenceIssue]:
        issues: list[EquivalenceIssue] = []
        if not domains_compatible(attr_a.domain, attr_b.domain):
            issues.append(
                EquivalenceIssue(
                    first,
                    second,
                    f"domains {attr_a.domain} and {attr_b.domain} are incompatible",
                )
            )
        if attr_a.domain.unit != attr_b.domain.unit:
            issues.append(
                EquivalenceIssue(
                    first,
                    second,
                    f"units differ ({attr_a.domain.unit or 'none'} vs "
                    f"{attr_b.domain.unit or 'none'})",
                )
            )
        if attr_a.is_key != attr_b.is_key:
            issues.append(
                EquivalenceIssue(
                    first, second, "key property differs between the attributes"
                )
            )
        return issues
