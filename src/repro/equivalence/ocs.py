"""The Object Class Similarity (OCS) matrix.

The paper: *"Upon exiting this phase, the tool derives an Object Class
Similarity (OCS) matrix from the ACS matrix, where each element of the
matrix specifies the number of equivalent attributes between two objects
specified by the row and column order."*

An entry counts the equivalence classes that span both objects (one class
containing an attribute of each side counts once, so three-way classes do
not double-count).  The OCS drives the ordered candidate list of Screen 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecr.objects import ObjectClass, ObjectKind
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry


@dataclass(frozen=True)
class OcsEntry:
    """One entry of the OCS matrix: an object pair plus its similarity count."""

    row: ObjectRef
    column: ObjectRef
    equivalent_attributes: int

    def __str__(self) -> str:
        return f"{self.row} x {self.column}: {self.equivalent_attributes}"


class OcsMatrix:
    """OCS matrix between two registered schemas.

    ``kind_filter`` selects which structures form the rows/columns:
    by default object classes (entity sets and categories), matching the
    paper's first subphase; pass ``ObjectKind.RELATIONSHIP`` for the
    relationship-set subphase.
    """

    def __init__(
        self,
        registry: EquivalenceRegistry,
        first_schema: str,
        second_schema: str,
        kind_filter: ObjectKind | None = None,
    ) -> None:
        self._registry = registry
        self.first_schema = first_schema
        self.second_schema = second_schema
        self.kind_filter = kind_filter
        self._rows = self._select(first_schema)
        self._columns = self._select(second_schema)

    def _select(self, schema_name: str) -> list[ObjectRef]:
        schema = self._registry.schema(schema_name)
        if self.kind_filter is ObjectKind.RELATIONSHIP:
            chosen: list[ObjectClass] = list(schema.relationship_sets())
        elif self.kind_filter is None:
            chosen = list(schema.object_classes())
        else:
            chosen = [
                structure
                for structure in schema.object_classes()
                if structure.kind is self.kind_filter
            ]
        return [ObjectRef(schema_name, structure.name) for structure in chosen]

    @property
    def rows(self) -> list[ObjectRef]:
        """Structures of the first schema, in declaration order."""
        return list(self._rows)

    @property
    def columns(self) -> list[ObjectRef]:
        """Structures of the second schema, in declaration order."""
        return list(self._columns)

    def count(self, row: ObjectRef, column: ObjectRef) -> int:
        """Equivalent-attribute count for one object pair."""
        return self._registry.equivalent_class_count(
            (row.schema, row.object_name), (column.schema, column.object_name)
        )

    def entry(self, row: ObjectRef, column: ObjectRef) -> OcsEntry:
        return OcsEntry(row, column, self.count(row, column))

    def entries(self, include_zero: bool = False) -> list[OcsEntry]:
        """All matrix entries row-major; zero-similarity pairs are skipped
        unless ``include_zero`` is set (Screen 8 only shows candidates)."""
        found: list[OcsEntry] = []
        for row in self._rows:
            for column in self._columns:
                entry = self.entry(row, column)
                if entry.equivalent_attributes > 0 or include_zero:
                    found.append(entry)
        return found

    def as_counts(self) -> list[list[int]]:
        """Dense count matrix (row-major) for numeric consumers."""
        return [
            [self.count(row, column) for column in self._columns]
            for row in self._rows
        ]

    def render(self) -> str:
        """Human-readable rendering used by the tool's debug view."""
        header = "OCS %s x %s" % (self.first_schema, self.second_schema)
        lines = [header, "=" * len(header)]
        column_names = [column.object_name[:12] for column in self._columns]
        lines.append(" " * 22 + " ".join(f"{name:>12.12}" for name in column_names))
        for row, counts in zip(self._rows, self.as_counts()):
            cells = " ".join(f"{count:>12}" for count in counts)
            lines.append(f"{str(row):<22.22}{cells}")
        return "\n".join(lines) + "\n"
