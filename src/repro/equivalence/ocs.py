"""The Object Class Similarity (OCS) matrix.

The paper: *"Upon exiting this phase, the tool derives an Object Class
Similarity (OCS) matrix from the ACS matrix, where each element of the
matrix specifies the number of equivalent attributes between two objects
specified by the row and column order."*

An entry counts the equivalence classes that span both objects (one class
containing an attribute of each side counts once, so three-way classes do
not double-count).  The OCS drives the ordered candidate list of Screen 8.

The matrix is a **memoized view** over the registry: cell values are cached
and, via the registry's change events, only the cells whose row or column
was touched by a mutation are invalidated.  Obtain matrices through
:meth:`EquivalenceRegistry.ocs` — that returns one long-lived cached view
per schema pair; constructing :class:`OcsMatrix` directly is deprecated
(it still works, and still invalidates correctly, but each construction
builds a fresh unshared cache).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ecr.objects import ObjectClass, ObjectKind
from repro.ecr.schema import ObjectRef
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - types only, avoids an import cycle
    from repro.equivalence.registry import EquivalenceRegistry, RegistryChange


@dataclass(frozen=True)
class OcsEntry:
    """One entry of the OCS matrix: an object pair plus its similarity count."""

    row: ObjectRef
    column: ObjectRef
    equivalent_attributes: int

    def __str__(self) -> str:
        return f"{self.row} x {self.column}: {self.equivalent_attributes}"


class OcsMatrix:
    """OCS matrix between two registered schemas.

    ``kind_filter`` selects which structures form the rows/columns:
    by default object classes (entity sets and categories), matching the
    paper's first subphase; pass ``ObjectKind.RELATIONSHIP`` for the
    relationship-set subphase.
    """

    def __init__(
        self,
        registry: "EquivalenceRegistry",
        first_schema: str,
        second_schema: str,
        *,
        kind_filter: ObjectKind | None = None,
        _trusted: bool = False,
    ) -> None:
        if not _trusted:
            warnings.warn(
                "constructing OcsMatrix directly is deprecated; use "
                "registry.ocs(first_schema, second_schema, kind_filter) "
                "to get the shared cached view",
                DeprecationWarning,
                stacklevel=2,
            )
        self._registry = registry
        self.first_schema = first_schema
        self.second_schema = second_schema
        self.kind_filter = kind_filter
        #: memoized cell values, dropped selectively on registry changes
        self._cells: dict[tuple[ObjectRef, ObjectRef], int] = {}
        #: memoized per-object attribute counts (shape-stable between refreshes)
        self._attribute_counts: dict[ObjectRef, int] = {}
        #: bumped on every invalidation that touched this matrix
        self._generation = 0
        #: derived-view memo (e.g. the ranked Screen 8 list); cleared whenever
        #: any cell of this matrix is invalidated
        self.view_cache: dict[object, object] = {}
        self._reselect()
        self._subscription = registry.subscribe(self._on_registry_change)

    def close(self) -> None:
        """Stop tracking registry changes (the view goes stale)."""
        self._subscription.cancel()

    def _reselect(self) -> None:
        self._rows = self._select(self.first_schema)
        self._columns = self._select(self.second_schema)
        self._row_set = set(self._rows)
        self._column_set = set(self._columns)

    def _select(self, schema_name: str) -> list[ObjectRef]:
        schema = self._registry.schema(schema_name)
        if self.kind_filter is ObjectKind.RELATIONSHIP:
            chosen: list[ObjectClass] = list(schema.relationship_sets())
        elif self.kind_filter is None:
            chosen = list(schema.object_classes())
        else:
            chosen = [
                structure
                for structure in schema.object_classes()
                if structure.kind is self.kind_filter
            ]
        return [ObjectRef(schema_name, structure.name) for structure in chosen]

    # -- invalidation ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Bumped whenever a registry change invalidated part of this view."""
        return self._generation

    def _on_registry_change(self, change: "RegistryChange") -> None:
        structural = (
            self.first_schema in change.schemas
            or self.second_schema in change.schemas
        )
        if structural and change.kind != "evolve":
            # the schema's shape changed wholesale: rows/columns must be
            # re-derived and nothing cached can be trusted
            self._reselect()
            self._cells.clear()
            self._attribute_counts.clear()
            self.view_cache.clear()
            self._generation += 1
            return
        if structural:
            # an evolution edit added/dropped a structure: re-derive the
            # rows/columns, but only the listed objects' cells can differ
            self._reselect()
        affected = {ObjectRef(schema, name) for schema, name in change.objects}
        dirty_rows = affected & self._row_set
        dirty_columns = affected & self._column_set
        if not structural and not dirty_rows and not dirty_columns:
            return
        self._cells = {
            key: value
            for key, value in self._cells.items()
            if key[0] in self._row_set
            and key[1] in self._column_set
            and key[0] not in dirty_rows
            and key[1] not in dirty_columns
        }
        for ref in affected:
            # attribute add/drop changes the per-object count memo too
            self._attribute_counts.pop(ref, None)
        self.view_cache.clear()
        self._generation += 1

    # -- structure ------------------------------------------------------------

    @property
    def rows(self) -> list[ObjectRef]:
        """Structures of the first schema, in declaration order."""
        return list(self._rows)

    @property
    def columns(self) -> list[ObjectRef]:
        """Structures of the second schema, in declaration order."""
        return list(self._columns)

    def attribute_count(self, ref: ObjectRef) -> int:
        """Number of attributes of one row/column object (memoized)."""
        cached = self._attribute_counts.get(ref)
        if cached is None:
            cached = len(
                self._registry.schema(ref.schema).get(ref.object_name).attributes
            )
            self._attribute_counts[ref] = cached
        return cached

    # -- cells ----------------------------------------------------------------

    def count(self, row: ObjectRef, column: ObjectRef) -> int:
        """Equivalent-attribute count for one object pair."""
        key = (row, column)
        cached = self._cells.get(key)
        if cached is not None:
            self._registry.counters.ocs_cache_hits += 1
            return cached
        value = self._registry.equivalent_class_count(
            (row.schema, row.object_name), (column.schema, column.object_name)
        )
        self._registry.counters.ocs_cells_recomputed += 1
        self._cells[key] = value
        return value

    def entry(self, row: ObjectRef, column: ObjectRef) -> OcsEntry:
        return OcsEntry(row, column, self.count(row, column))

    def entries(self, include_zero: bool = False) -> list[OcsEntry]:
        """All matrix entries row-major; zero-similarity pairs are skipped
        unless ``include_zero`` is set (Screen 8 only shows candidates)."""
        with span("phase2.ocs.recompute", counters=self._registry.counters):
            found: list[OcsEntry] = []
            for row in self._rows:
                for column in self._columns:
                    entry = self.entry(row, column)
                    if entry.equivalent_attributes > 0 or include_zero:
                        found.append(entry)
            return found

    def as_counts(self) -> list[list[int]]:
        """Dense count matrix (row-major) for numeric consumers."""
        with span("phase2.ocs.recompute", counters=self._registry.counters):
            return [
                [self.count(row, column) for column in self._columns]
                for row in self._rows
            ]

    def render(self) -> str:
        """Human-readable rendering used by the tool's debug view."""
        header = "OCS %s x %s" % (self.first_schema, self.second_schema)
        lines = [header, "=" * len(header)]
        column_names = [column.object_name[:12] for column in self._columns]
        lines.append(" " * 22 + " ".join(f"{name:>12.12}" for name in column_names))
        for row, counts in zip(self._rows, self.as_counts()):
            cells = " ".join(f"{count:>12}" for count in counts)
            lines.append(f"{str(row):<22.22}{cells}")
        return "\n".join(lines) + "\n"
