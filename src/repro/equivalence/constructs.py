"""Cross-construct conflict detection (the future-work "marriage" case).

The paper: *"in one schema, a marriage between two people may be
represented as an entity set, while in another schema a marriage may be
represented as a relationship... the entity set marriage and the
relationship set marriage could be identified as equivalent if they both
have attributes marriage-date, marriage-location, number of children,
etc.  We feel that in many cases, common attributes indicate that
constructs of different types may have corresponding roles."*

:func:`suggest_construct_conflicts` implements that heuristic: it scores
every (object class, relationship set) pair across two schemas by shared
equivalent attributes and name similarity, and reports the candidates a
DDA should consider re-representing (with
:mod:`repro.ecr.refactor` operations) before integration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import name_similarity


@dataclass(frozen=True)
class ConstructConflict:
    """An entity/relationship pair that may model the same concept."""

    object_class: ObjectRef
    relationship_set: ObjectRef
    shared_attributes: int
    name_score: float
    score: float

    def __str__(self) -> str:
        return (
            f"{self.object_class} (object) ~ {self.relationship_set} "
            f"(relationship): {self.shared_attributes} shared attribute(s), "
            f"name similarity {self.name_score:.2f}"
        )


def suggest_construct_conflicts(
    registry: EquivalenceRegistry,
    first_schema: str,
    second_schema: str,
    min_shared: int = 1,
    min_score: float = 0.3,
) -> list[ConstructConflict]:
    """Candidate entity/relationship correspondences across two schemas.

    Scored as ``shared_ratio/2 + name_similarity/2`` where ``shared_ratio``
    is the fraction of the smaller attribute set covered by shared
    equivalence classes.  Pairs below ``min_shared`` shared attributes or
    ``min_score`` total are dropped.  Both orientations are checked
    (object in the first schema vs. relationship in the second, and the
    reverse).
    """
    conflicts: list[ConstructConflict] = []
    for object_home, relationship_home in (
        (first_schema, second_schema),
        (second_schema, first_schema),
    ):
        object_side = registry.schema(object_home)
        relationship_side = registry.schema(relationship_home)
        for structure in object_side.object_classes():
            for relationship in relationship_side.relationship_sets():
                if not structure.attributes or not relationship.attributes:
                    continue
                shared = registry.equivalent_class_count(
                    (object_home, structure.name),
                    (relationship_home, relationship.name),
                )
                if shared < min_shared:
                    continue
                smaller = min(
                    len(structure.attributes), len(relationship.attributes)
                )
                shared_ratio = shared / smaller
                name_score = name_similarity(structure.name, relationship.name)
                score = shared_ratio / 2 + name_score / 2
                if score < min_score:
                    continue
                conflicts.append(
                    ConstructConflict(
                        ObjectRef(object_home, structure.name),
                        ObjectRef(relationship_home, relationship.name),
                        shared,
                        round(name_score, 4),
                        round(score, 4),
                    )
                )
    conflicts.sort(
        key=lambda conflict: (
            -conflict.score,
            conflict.object_class,
            conflict.relationship_set,
        )
    )
    return conflicts
