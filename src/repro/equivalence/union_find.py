"""A deterministic disjoint-set (union-find) structure.

Used by the equivalence registry to maintain attribute equivalence classes
and by the integration phase to cluster object classes.  Iteration order is
deterministic (insertion order), which keeps every screen, report and
benchmark reproducible.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet(Generic[T]):
    """Union-find with path compression and union by size.

    Items are added explicitly or implicitly on first use.  ``find`` returns
    a canonical representative; representatives are stable under path
    compression but may change after a union (the larger side wins; ties go
    to the earlier-inserted root, keeping behaviour deterministic).
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        self._order: dict[T, int] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)

    def add(self, item: T) -> None:
        """Register an item as its own singleton class (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._order[item] = len(self._order)

    def find(self, item: T) -> T:
        """Canonical representative of the item's class (adds if missing)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: T, second: T) -> T:
        """Merge the classes of two items; returns the surviving root."""
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        size_a, size_b = self._size[root_a], self._size[root_b]
        if (size_a, -self._order[root_a]) < (size_b, -self._order[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] = size_a + size_b
        return root_a

    def connected(self, first: T, second: T) -> bool:
        """Whether two items are currently in the same class."""
        if first not in self._parent or second not in self._parent:
            return False
        return self.find(first) == self.find(second)

    def class_of(self, item: T) -> list[T]:
        """All members of the item's class, in insertion order."""
        root = self.find(item)
        return [other for other in self._parent if self.find(other) == root]

    def classes(self) -> list[list[T]]:
        """All classes, each in insertion order, ordered by first member."""
        by_root: dict[T, list[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return sorted(by_root.values(), key=lambda members: self._order[members[0]])

    def class_count(self) -> int:
        """Number of distinct classes."""
        return sum(1 for item in self._parent if self.find(item) == item)
