"""A dictionary of synonyms and antonyms for identifier matching.

The paper's future-work section: *"A dictionary of synonyms and antonyms
would also be useful in detecting candidate pairs of equivalent
attributes."*  This module provides that dictionary: synonym groups are
equivalence classes of lower-cased words; antonym pairs veto a candidate.
"""

from __future__ import annotations

from typing import Iterable

from repro.equivalence.union_find import DisjointSet
from repro.errors import EquivalenceError


def _normalise(word: str) -> str:
    return word.strip().lower().replace("_", "").replace("-", "")


class SynonymDictionary:
    """Synonym groups plus antonym pairs over normalised identifiers."""

    def __init__(
        self,
        synonym_groups: Iterable[Iterable[str]] = (),
        antonym_pairs: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._synonyms: DisjointSet[str] = DisjointSet()
        self._antonyms: set[frozenset[str]] = set()
        for group in synonym_groups:
            self.add_synonyms(*group)
        for first, second in antonym_pairs:
            self.add_antonyms(first, second)

    def add_synonyms(self, *words: str) -> None:
        """Declare all the given words synonymous with one another."""
        if len(words) < 2:
            raise EquivalenceError("a synonym group needs at least two words")
        normalised = [_normalise(word) for word in words]
        for word in normalised[1:]:
            self._synonyms.union(normalised[0], word)

    def add_antonyms(self, first: str, second: str) -> None:
        """Declare two words antonymous (vetoes any candidate match)."""
        pair = frozenset({_normalise(first), _normalise(second)})
        if len(pair) != 2:
            raise EquivalenceError(f"{first!r} cannot be its own antonym")
        self._antonyms.add(pair)

    def are_synonyms(self, first: str, second: str) -> bool:
        """Whether two words are in the same synonym group (or identical)."""
        a, b = _normalise(first), _normalise(second)
        if a == b:
            return True
        return self._synonyms.connected(a, b)

    def are_antonyms(self, first: str, second: str) -> bool:
        """Whether two words (or their synonyms) are declared antonyms."""
        a, b = _normalise(first), _normalise(second)
        group_a = set(self._synonyms.class_of(a)) if a in self._synonyms else {a}
        group_b = set(self._synonyms.class_of(b)) if b in self._synonyms else {b}
        for word_a in group_a:
            for word_b in group_b:
                if frozenset({word_a, word_b}) in self._antonyms:
                    return True
        return False

    def synonyms_of(self, word: str) -> list[str]:
        """All known synonyms of a word (normalised, excluding itself)."""
        normalised = _normalise(word)
        if normalised not in self._synonyms:
            return []
        return [
            other
            for other in self._synonyms.class_of(normalised)
            if other != normalised
        ]


#: A small default dictionary covering the vocabulary of the paper's and the
#: bundled workloads' schemas.  Real deployments would load a domain
#: dictionary instead.
DEFAULT_SYNONYMS = SynonymDictionary(
    synonym_groups=[
        ("employee", "worker", "staff"),
        ("department", "dept", "division"),
        ("student", "pupil"),
        ("instructor", "teacher", "lecturer"),
        ("faculty", "professor"),
        ("salary", "pay", "wage", "compensation"),
        ("name", "fullname"),
        ("ssn", "socialsecuritynumber", "soc_sec_no"),
        ("id", "identifier", "number", "no", "num"),
        ("phone", "telephone", "phoneno"),
        ("address", "location", "addr"),
        ("birthdate", "dateofbirth", "dob"),
        ("grade", "mark", "score"),
        ("course", "class", "subject"),
        ("doctor", "physician"),
        ("patient", "case"),
        ("flight", "leg"),
    ],
    antonym_pairs=[
        ("undergraduate", "graduate"),
        ("parttime", "fulltime"),
        ("domestic", "international"),
        ("arrival", "departure"),
    ],
)
