"""Request rewriting through schema mappings (both integration contexts).

``rewrite_to_integrated`` converts a component-schema (user-view) request
into an integrated-schema request — the logical-database-design direction.
``rewrite_to_components`` maps an integrated-schema (global) request onto
each component database that contributes data — the federation direction;
the legs it produces are executed and merged by the federated query
engine in :mod:`repro.federation` (sequential reference semantics:
:func:`repro.data.federated_answer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.integration.mappings import SchemaMapping
from repro.query.ast import Comparison, Join, Request


def rewrite_to_integrated(request: Request, mapping: SchemaMapping) -> Request:
    """Rewrite a component-schema request against the integrated schema.

    Every referenced object class, attribute and relationship set is
    replaced by its integrated counterpart.

    Raises
    ------
    MappingError
        If any referenced element has no integrated counterpart (the
        request does not belong to this component schema).
    """
    target_object = mapping.map_object(request.object_name)
    attributes = tuple(
        mapping.map_attribute(request.object_name, name)[1]
        for name in request.attributes
    )
    conditions = tuple(
        Comparison(
            mapping.map_attribute(request.object_name, condition.attribute)[1],
            condition.operator,
            condition.value,
        )
        for condition in request.conditions
    )
    joins = tuple(
        Join(mapping.map_object(join.relationship), mapping.map_object(join.target))
        for join in request.joins
    )
    return Request(target_object, attributes, conditions, joins)


@dataclass
class ComponentRequest:
    """One leg of a federated request: the component schema, the rewritten
    request, and global attributes that component cannot supply."""

    schema: str
    request: Request
    missing_attributes: list[str] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """Whether this component can answer the whole projection."""
        return not self.missing_attributes

    def __str__(self) -> str:
        missing = (
            f"  -- missing: {', '.join(self.missing_attributes)}"
            if self.missing_attributes
            else ""
        )
        return f"[{self.schema}] {self.request}{missing}"


def rewrite_to_components(
    request: Request,
    mappings: dict[str, SchemaMapping],
    integrated_schema=None,
) -> list[ComponentRequest]:
    """Rewrite a global request onto every contributing component schema.

    For each component schema whose mapping covers the request's object
    class, the global names are replaced by that component's names.  A
    global attribute the component lacks is recorded in
    ``missing_attributes`` (its values come from other components or are
    null-padded by the federation layer).  A condition on a missing
    attribute disqualifies the component: it cannot evaluate the filter,
    so it contributes no certain answers.

    With ``integrated_schema`` (a :class:`~repro.ecr.schema.Schema`) given,
    components whose objects map onto *subclasses* of the requested class
    also contribute — their instances are members of the requested class
    by the IS-A semantics.  Without it, only direct coverage is routed.

    Raises
    ------
    MappingError
        If no component schema covers the requested object class, or if
        components cover the class but every one of them is disqualified
        by a ``via`` traversal it cannot perform — the latter names the
        offending join element precisely.
    """
    targets = [request.object_name]
    if integrated_schema is not None:
        from repro.ecr.walk import subclass_closure

        targets += subclass_closure(integrated_schema, request.object_name)
    legs: list[ComponentRequest] = []
    join_rejections: list[str] = []
    for schema_name in sorted(mappings):
        mapping = mappings[schema_name]
        for target in targets:
            for local_object in mapping.objects_mapping_to(target):
                leg = _component_leg(
                    request, mapping, local_object, target, join_rejections
                )
                if leg is not None:
                    legs.append(leg)
    if not legs:
        if join_rejections:
            raise MappingError(
                f"request on {request.object_name!r} cannot be routed: "
                + "; ".join(join_rejections)
            )
        raise MappingError(
            f"no component schema covers object class {request.object_name!r}"
        )
    return legs


def _component_leg(
    request: Request,
    mapping: SchemaMapping,
    local_object: str,
    target: str | None = None,
    join_rejections: list[str] | None = None,
) -> ComponentRequest | None:
    target = target or request.object_name
    attributes: list[str] = []
    missing: list[str] = []
    for name in request.attributes:
        local = _local_attribute(mapping, local_object, target, name)
        if local is None:
            missing.append(name)
        else:
            attributes.append(local)
    conditions: list[Comparison] = []
    for condition in request.conditions:
        local = _local_attribute(
            mapping, local_object, target, condition.attribute
        )
        if local is None:
            return None  # cannot evaluate the filter here
        conditions.append(Comparison(local, condition.operator, condition.value))
    joins: list[Join] = []
    for join in request.joins:
        local_relationships = mapping.objects_mapping_to(join.relationship)
        local_targets = mapping.objects_mapping_to(join.target)
        if not local_relationships or not local_targets:
            # the component cannot perform the traversal; record precisely
            # which join element is absent so the no-legs error names it
            if join_rejections is not None:
                element = (
                    f"relationship set {join.relationship!r}"
                    if not local_relationships
                    else f"join target {join.target!r}"
                )
                join_rejections.append(
                    f"{element} of 'via {join}' has no counterpart in "
                    f"component schema {mapping.component_schema!r}"
                )
            return None
        joins.append(Join(local_relationships[0], local_targets[0]))
    return ComponentRequest(
        mapping.component_schema,
        Request(local_object, tuple(attributes), tuple(conditions), tuple(joins)),
        missing,
    )


def _local_attribute(
    mapping: SchemaMapping,
    local_object: str,
    integrated_object: str,
    integrated_attribute: str,
) -> str | None:
    """The component attribute behind an integrated attribute, if any.

    Integration may absorb a contained class's attribute into an *ancestor*
    of the class's own integrated node (``Grad_student.Name`` ends up as
    ``Student.D_Name``); the integrated class then reaches it by
    inheritance.  So an exact (object, attribute) target match is preferred,
    but a match on the integrated attribute name within the same local
    object — necessarily an absorbed-to-ancestor attribute — also counts.
    """
    fallback = None
    for (object_name, attribute), target in mapping.attributes.items():
        if object_name != local_object:
            continue
        if target == (integrated_object, integrated_attribute):
            return attribute
        if target[1] == integrated_attribute and fallback is None:
            fallback = attribute
    return fallback
