"""Abstract syntax of ECR requests.

A request is a conjunctive select over one object class::

    select Name, GPA from Student where GPA >= 3.5 via Majors(Department)

* ``from`` names an object class (entity set or category);
* the projection lists attributes of that class (inherited ones allowed);
* ``where`` holds zero or more comparisons ANDed together; and
* ``via`` traverses relationship sets to other object classes (a join).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ecr.schema import Schema
from repro.ecr.walk import inherited_attributes
from repro.errors import QueryError

#: Comparison operators a condition may use.
OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


@dataclass(frozen=True)
class Comparison:
    """One conjunct of the where clause: ``attribute op value``."""

    attribute: str
    operator: str
    value: str

    def __post_init__(self) -> None:
        if self.operator not in OPERATORS:
            raise QueryError(
                f"unknown operator {self.operator!r}; expected one of {OPERATORS}"
            )

    def __str__(self) -> str:
        return f"{self.attribute} {self.operator} {self.value}"


@dataclass(frozen=True)
class Join:
    """A relationship traversal: ``via Relationship(Target)``."""

    relationship: str
    target: str

    def __str__(self) -> str:
        return f"{self.relationship}({self.target})"


@dataclass(frozen=True)
class Request:
    """A conjunctive select over one object class."""

    object_name: str
    attributes: tuple[str, ...] = ()
    conditions: tuple[Comparison, ...] = ()
    joins: tuple[Join, ...] = ()

    def __str__(self) -> str:
        text = "select " + (", ".join(self.attributes) or "*")
        text += f" from {self.object_name}"
        if self.conditions:
            text += " where " + " and ".join(str(c) for c in self.conditions)
        for join in self.joins:
            text += f" via {join}"
        return text

    def referenced_attributes(self) -> list[str]:
        """Projection plus condition attributes, deduplicated in order."""
        names = list(self.attributes) + [c.attribute for c in self.conditions]
        return list(dict.fromkeys(names))

    def with_object(self, object_name: str) -> "Request":
        return replace(self, object_name=object_name)

    def validate_against(self, schema: Schema) -> None:
        """Check every referenced element exists in ``schema``.

        Raises
        ------
        QueryError
            Naming a missing object class, attribute (inherited attributes
            count), relationship set or join target.
        """
        try:
            schema.object_class(self.object_name)
        except Exception as exc:
            raise QueryError(
                f"request is over unknown object class "
                f"{self.object_name!r} in schema {schema.name!r}"
            ) from exc
        available = {
            attribute.name
            for attribute in inherited_attributes(schema, self.object_name)
        }
        for name in self.referenced_attributes():
            if name not in available:
                raise QueryError(
                    f"{self.object_name!r} has no attribute {name!r} "
                    f"in schema {schema.name!r}"
                )
        for join in self.joins:
            try:
                relationship = schema.relationship_set(join.relationship)
            except Exception as exc:
                raise QueryError(
                    f"unknown relationship set {join.relationship!r} "
                    f"in schema {schema.name!r}"
                ) from exc
            participants = set(relationship.participant_names())
            if join.target not in participants:
                raise QueryError(
                    f"{join.relationship!r} does not connect {join.target!r}"
                )
