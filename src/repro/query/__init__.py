"""Requests over ECR schemas and their translation through mappings.

Phase 4 of the methodology generates mappings that "are used to translate
requests in an operational system after integration":

* logical database design — requests against component schemas (user
  views) are converted into requests against the integrated schema
  (:func:`rewrite_to_integrated`); and
* global schema design — requests against the integrated (global) schema
  are mapped into requests against the component databases
  (:func:`rewrite_to_components`).

The request language is a small conjunctive select over one object class
with optional relationship traversals — enough to exercise every mapping
direction without building a full query engine.
"""

from repro.query.ast import Comparison, Join, Request
from repro.query.parser import parse_request
from repro.query.rewrite import (
    ComponentRequest,
    rewrite_to_components,
    rewrite_to_integrated,
)

__all__ = [
    "Comparison",
    "Join",
    "Request",
    "parse_request",
    "ComponentRequest",
    "rewrite_to_components",
    "rewrite_to_integrated",
]
