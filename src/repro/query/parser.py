"""Parser for the textual request form.

Grammar::

    request   := "select" projection "from" NAME [where] {via}
    projection:= "*" | NAME {"," NAME}
    where     := "where" comparison {"and" comparison}
    comparison:= NAME OP VALUE          (OP in <=, >=, !=, =, <, >)
    via       := "via" NAME "(" NAME ")"

Values run to the next ``and``/``via`` keyword; quotes around string values
are optional and stripped.
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.query.ast import OPERATORS, Comparison, Join, Request

_VIA_RE = re.compile(r"via\s+(\w+)\s*\(\s*(\w+)\s*\)", re.IGNORECASE)
_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<projection>.+?)\s+from\s+(?P<object>\w+)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


def parse_request(text: str) -> Request:
    """Parse a textual request into a :class:`~repro.query.ast.Request`.

    Raises
    ------
    QueryError
        On any syntax error.
    """
    working = text.strip()
    if not working:
        raise QueryError("empty request")
    joins: list[Join] = []

    def capture_join(match: re.Match) -> str:
        joins.append(Join(match.group(1), match.group(2)))
        return " "

    working = _VIA_RE.sub(capture_join, working)
    match = _SELECT_RE.match(working)
    if not match:
        raise QueryError(
            f"request must be 'select ... from ... [where ...]', got {text!r}"
        )
    projection_text = match.group("projection").strip()
    if projection_text == "*":
        attributes: tuple[str, ...] = ()
    else:
        attributes = tuple(
            name.strip() for name in projection_text.split(",") if name.strip()
        )
        for name in attributes:
            if not re.fullmatch(r"\w+", name):
                raise QueryError(f"bad projection attribute {name!r}")
    conditions = _parse_where(match.group("where"))
    return Request(match.group("object"), attributes, conditions, tuple(joins))


def _parse_where(where_text: str | None) -> tuple[Comparison, ...]:
    if not where_text:
        return ()
    conditions: list[Comparison] = []
    for conjunct in re.split(r"\band\b", where_text, flags=re.IGNORECASE):
        conjunct = conjunct.strip()
        if not conjunct:
            raise QueryError("empty conjunct in where clause")
        for operator in OPERATORS:  # longest operators first
            if operator in conjunct:
                attribute, _, value = conjunct.partition(operator)
                attribute = attribute.strip()
                value = value.strip().strip("'\"")
                if not re.fullmatch(r"\w+", attribute):
                    raise QueryError(f"bad condition attribute {attribute!r}")
                if not value:
                    raise QueryError(f"missing value in condition {conjunct!r}")
                conditions.append(Comparison(attribute, operator, value))
                break
        else:
            raise QueryError(f"no comparison operator in {conjunct!r}")
    return tuple(conditions)
