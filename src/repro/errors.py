"""Exception hierarchy for the schema-integration library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation on it is invalid."""


class DuplicateNameError(SchemaError):
    """An object, attribute or schema name collides with an existing one."""

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"duplicate {kind} name {name!r}{where}")


class UnknownNameError(SchemaError):
    """A referenced object, attribute or schema does not exist."""

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"unknown {kind} {name!r}{where}")


class ValidationError(SchemaError):
    """A schema failed well-formedness validation."""

    def __init__(self, issues) -> None:
        self.issues = list(issues)
        lines = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"schema validation failed: {lines}")


class DdlError(ReproError):
    """The ECR data-description-language text could not be parsed."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)


class EquivalenceError(ReproError):
    """An attribute-equivalence operation is invalid."""


class AssertionSpecError(ReproError):
    """An assertion between object classes is invalid or ill-typed."""


class ConflictError(AssertionSpecError):
    """A new assertion contradicts previously specified or derived ones.

    Carries the :class:`~repro.assertions.conflicts.ConflictReport` that
    explains which assertions clash and how the derived side was obtained.
    """

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(str(report))


class IntegrationError(ReproError):
    """Schema integration could not be performed."""


class MappingError(ReproError):
    """A request could not be rewritten through a schema mapping."""


class QueryError(ReproError):
    """A request over an ECR schema is syntactically or semantically invalid."""


class TranslationError(ReproError):
    """A source-model schema could not be translated to the ECR model."""


class FederationError(ReproError):
    """A federated query could not be executed.

    Raised by the execution engine when partial-result mode is off and a
    component failed, or when no component produced an answer and the
    caller demanded a total one.  Carries the
    :class:`~repro.federation.health.FederationHealth` report describing
    what each component did, when available.
    """

    def __init__(self, message: str, health=None) -> None:
        self.health = health
        super().__init__(message)


class BackendError(FederationError):
    """A component backend failed to answer a subrequest.

    The fault-injection wrapper raises this for simulated faults; real
    backends wrap their driver errors in it so the executor's retry and
    circuit-breaker logic treats every backend uniformly.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


class ToolError(ReproError):
    """The interactive tool was driven into an invalid state."""


class ScriptError(ToolError):
    """A tool-driving script is malformed or refers to missing state."""


class ReplayError(ReproError):
    """Replaying an audit log diverged from the recorded session."""


class KernelError(ReproError):
    """An event-kernel operation is invalid.

    Raised for checkouts outside the log's bounds, undo past the session
    baseline, redo with no undone history, and commands that do not map
    to a known mutation.
    """
