"""Exception hierarchy for the schema-integration library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing the subsystem that failed.

Every class also carries a stable, machine-readable :attr:`ReproError.code`
(lower_snake strings such as ``"dictionary_not_found"``).  Codes are part of
the public API: remote clients branch on them, and the HTTP service
(:mod:`repro.service`) maps codes to response statuses in one table instead
of catching concrete classes per route.  Once published a code never changes
meaning; new error classes add new codes.  :meth:`ReproError.to_wire` renders
any library error in the JSON shape the service returns.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    #: stable machine-readable identifier; subclasses override.  Part of
    #: the wire protocol — never reuse or rename a published code.
    code = "repro_error"

    def to_wire(self) -> dict[str, Any]:
        """The error in JSON-friendly wire form: code, message, details."""
        wire: dict[str, Any] = {"code": self.code, "message": str(self)}
        details = self.wire_details()
        if details:
            wire["details"] = details
        return wire

    def wire_details(self) -> dict[str, Any]:
        """Structured extras for :meth:`to_wire`; subclasses override."""
        return {}


class SchemaError(ReproError):
    """A schema is malformed or an operation on it is invalid."""

    code = "schema_invalid"


class DuplicateNameError(SchemaError):
    """An object, attribute or schema name collides with an existing one."""

    code = "duplicate_name"

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"duplicate {kind} name {name!r}{where}")

    def wire_details(self):
        return {"kind": self.kind, "name": self.name, "scope": self.scope}


class UnknownNameError(SchemaError):
    """A referenced object, attribute or schema does not exist."""

    code = "unknown_name"

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"unknown {kind} {name!r}{where}")

    def wire_details(self):
        return {"kind": self.kind, "name": self.name, "scope": self.scope}


class ValidationError(SchemaError):
    """A schema failed well-formedness validation."""

    code = "schema_validation_failed"

    def __init__(self, issues) -> None:
        self.issues = list(issues)
        lines = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"schema validation failed: {lines}")


class DdlError(ReproError):
    """The ECR data-description-language text could not be parsed."""

    code = "ddl_parse_error"

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)


class EquivalenceError(ReproError):
    """An attribute-equivalence operation is invalid."""

    code = "equivalence_invalid"


class AssertionSpecError(ReproError):
    """An assertion between object classes is invalid or ill-typed."""

    code = "assertion_invalid"


class ConflictError(AssertionSpecError):
    """A new assertion contradicts previously specified or derived ones.

    Carries the :class:`~repro.assertions.conflicts.ConflictReport` that
    explains which assertions clash and how the derived side was obtained.
    """

    code = "assertion_conflict"

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(str(report))

    def wire_details(self):
        to_wire = getattr(self.report, "to_wire", None)
        if to_wire is None:  # a bare/legacy report object
            return {}
        return to_wire()


class ConsistencyFailure(AssertionSpecError):
    """Constraint propagation found the asserted facts inconsistent.

    Raised by :class:`repro.solver.ConstraintSolver` when no relation
    remains feasible between some pair.  Unlike :class:`ConflictError`
    (one derivation chain), it carries a **minimal conflict set** over
    the asserted facts: asserting exactly these facts reproduces the
    contradiction, and retracting any single one of them restores
    consistency.  ``subject`` is the canonical pair whose feasible set
    became empty, when known.
    """

    code = "solver_inconsistent"

    def __init__(self, conflict, subject=None) -> None:
        self.conflict = tuple(conflict)
        self.subject = subject
        where = (
            f" between {subject[0]} and {subject[1]}"
            if subject is not None
            else ""
        )
        listed = "; ".join(str(member) for member in self.conflict)
        super().__init__(
            f"no relation remains feasible{where}; "
            f"minimal conflict set: {listed or '(empty)'}"
        )

    def wire_details(self):
        details = {
            "conflict_set": [member.to_wire() for member in self.conflict]
        }
        if self.subject is not None:
            details["subject"] = {
                "first": str(self.subject[0]),
                "second": str(self.subject[1]),
            }
        return details


class IntegrationError(ReproError):
    """Schema integration could not be performed."""

    code = "integration_failed"


class MappingError(ReproError):
    """A request could not be rewritten through a schema mapping."""

    code = "mapping_failed"


class QueryError(ReproError):
    """A request over an ECR schema is syntactically or semantically invalid."""

    code = "query_invalid"


class TranslationError(ReproError):
    """A source-model schema could not be translated to the ECR model."""

    code = "translation_failed"


class FederationError(ReproError):
    """A federated query could not be executed.

    Raised by the execution engine when partial-result mode is off and a
    component failed, or when no component produced an answer and the
    caller demanded a total one.  Carries the
    :class:`~repro.federation.health.FederationHealth` report describing
    what each component did, when available.
    """

    code = "federation_failed"

    def __init__(self, message: str, health=None) -> None:
        self.health = health
        super().__init__(message)


class BackendError(FederationError):
    """A component backend failed to answer a subrequest.

    The fault-injection wrapper raises this for simulated faults; real
    backends wrap their driver errors in it so the executor's retry and
    circuit-breaker logic treats every backend uniformly.
    """

    code = "backend_failed"

    def __init__(self, message: str) -> None:
        super().__init__(message)


class DictionaryError(ReproError):
    """A data-dictionary save could not be read or written.

    Subclasses distinguish the three load failures callers handle
    differently: the file is missing (start fresh), the file is corrupt
    (fall back to WAL recovery), or the format is from a build this one
    cannot read (neither).
    """

    code = "dictionary_error"

    def __init__(self, message: str, path=None) -> None:
        self.path = path
        where = f" ({path})" if path is not None else ""
        super().__init__(message + where)

    def wire_details(self):
        return {"path": str(self.path)} if self.path is not None else {}


class DictionaryNotFoundError(DictionaryError):
    """The dictionary file does not exist."""

    code = "dictionary_not_found"

    def __init__(self, path) -> None:
        super().__init__("no dictionary save at this path", path)


class CorruptDictionaryError(DictionaryError):
    """The dictionary file is damaged: bad JSON, bad checksum, truncated.

    ``detail`` says which integrity check failed.  When a write-ahead
    log sits next to the save, recovery can still restore the session
    from it (see :mod:`repro.kernel.recovery`).
    """

    code = "dictionary_corrupt"

    def __init__(self, detail: str, path=None) -> None:
        self.detail = detail
        super().__init__(f"corrupt dictionary save: {detail}", path)


class DictionaryFormatError(DictionaryError):
    """The dictionary's ``format`` marker is unknown to this build."""

    code = "dictionary_format_unsupported"

    def __init__(self, version, readable, path=None) -> None:
        self.version = version
        self.readable = tuple(readable)
        super().__init__(
            f"unsupported dictionary format {version!r} "
            f"(this build reads {', '.join(map(str, self.readable))})",
            path,
        )


class WalError(ReproError):
    """A write-ahead-log operation is invalid (misuse, not disk damage).

    Disk-level damage — torn tails, checksum mismatches — never raises:
    the WAL opener truncates or quarantines and reports instead.
    """

    code = "wal_misuse"


class ToolError(ReproError):
    """The interactive tool was driven into an invalid state."""

    code = "tool_invalid_state"


class ScriptError(ToolError):
    """A tool-driving script is malformed or refers to missing state."""

    code = "tool_script_invalid"


class ReplayError(ReproError):
    """Replaying an audit log diverged from the recorded session."""

    code = "replay_diverged"


class KernelError(ReproError):
    """An event-kernel operation is invalid.

    Raised for checkouts outside the log's bounds, undo past the session
    baseline, redo with no undone history, and commands that do not map
    to a known mutation.
    """

    code = "kernel_invalid"
