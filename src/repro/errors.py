"""Exception hierarchy for the schema-integration library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation on it is invalid."""


class DuplicateNameError(SchemaError):
    """An object, attribute or schema name collides with an existing one."""

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"duplicate {kind} name {name!r}{where}")


class UnknownNameError(SchemaError):
    """A referenced object, attribute or schema does not exist."""

    def __init__(self, kind: str, name: str, scope: str = "") -> None:
        self.kind = kind
        self.name = name
        self.scope = scope
        where = f" in {scope}" if scope else ""
        super().__init__(f"unknown {kind} {name!r}{where}")


class ValidationError(SchemaError):
    """A schema failed well-formedness validation."""

    def __init__(self, issues) -> None:
        self.issues = list(issues)
        lines = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"schema validation failed: {lines}")


class DdlError(ReproError):
    """The ECR data-description-language text could not be parsed."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)


class EquivalenceError(ReproError):
    """An attribute-equivalence operation is invalid."""


class AssertionSpecError(ReproError):
    """An assertion between object classes is invalid or ill-typed."""


class ConflictError(AssertionSpecError):
    """A new assertion contradicts previously specified or derived ones.

    Carries the :class:`~repro.assertions.conflicts.ConflictReport` that
    explains which assertions clash and how the derived side was obtained.
    """

    def __init__(self, report) -> None:
        self.report = report
        super().__init__(str(report))


class IntegrationError(ReproError):
    """Schema integration could not be performed."""


class MappingError(ReproError):
    """A request could not be rewritten through a schema mapping."""


class QueryError(ReproError):
    """A request over an ECR schema is syntactically or semantically invalid."""


class TranslationError(ReproError):
    """A source-model schema could not be translated to the ECR model."""


class FederationError(ReproError):
    """A federated query could not be executed.

    Raised by the execution engine when partial-result mode is off and a
    component failed, or when no component produced an answer and the
    caller demanded a total one.  Carries the
    :class:`~repro.federation.health.FederationHealth` report describing
    what each component did, when available.
    """

    def __init__(self, message: str, health=None) -> None:
        self.health = health
        super().__init__(message)


class BackendError(FederationError):
    """A component backend failed to answer a subrequest.

    The fault-injection wrapper raises this for simulated faults; real
    backends wrap their driver errors in it so the executor's retry and
    circuit-breaker logic treats every backend uniformly.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


class DictionaryError(ReproError):
    """A data-dictionary save could not be read or written.

    Subclasses distinguish the three load failures callers handle
    differently: the file is missing (start fresh), the file is corrupt
    (fall back to WAL recovery), or the format is from a build this one
    cannot read (neither).
    """

    def __init__(self, message: str, path=None) -> None:
        self.path = path
        where = f" ({path})" if path is not None else ""
        super().__init__(message + where)


class DictionaryNotFoundError(DictionaryError):
    """The dictionary file does not exist."""

    def __init__(self, path) -> None:
        super().__init__("no dictionary save at this path", path)


class CorruptDictionaryError(DictionaryError):
    """The dictionary file is damaged: bad JSON, bad checksum, truncated.

    ``detail`` says which integrity check failed.  When a write-ahead
    log sits next to the save, recovery can still restore the session
    from it (see :mod:`repro.kernel.recovery`).
    """

    def __init__(self, detail: str, path=None) -> None:
        self.detail = detail
        super().__init__(f"corrupt dictionary save: {detail}", path)


class DictionaryFormatError(DictionaryError):
    """The dictionary's ``format`` marker is unknown to this build."""

    def __init__(self, version, readable, path=None) -> None:
        self.version = version
        self.readable = tuple(readable)
        super().__init__(
            f"unsupported dictionary format {version!r} "
            f"(this build reads {', '.join(map(str, self.readable))})",
            path,
        )


class WalError(ReproError):
    """A write-ahead-log operation is invalid (misuse, not disk damage).

    Disk-level damage — torn tails, checksum mismatches — never raises:
    the WAL opener truncates or quarantines and reports instead.
    """


class ToolError(ReproError):
    """The interactive tool was driven into an invalid state."""


class ScriptError(ToolError):
    """A tool-driving script is malformed or refers to missing state."""


class ReplayError(ReproError):
    """Replaying an audit log diverged from the recorded session."""


class KernelError(ReproError):
    """An event-kernel operation is invalid.

    Raised for checkouts outside the log's bounds, undo past the session
    baseline, redo with no undone history, and commands that do not map
    to a known mutation.
    """
