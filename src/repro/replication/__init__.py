"""`repro.replication` — WAL shipping, replica apply, fencing, failover.

The durability layer doubled as a replication stream (see
``docs/REPLICATION.md``): a leader's CRC-framed write-ahead log is
tailed read-only by a :class:`WalShipper`, shipped as wire frames in the
same framing (:mod:`repro.replication.frames`), and folded into follower
state by a :class:`ReplicaApplier` through the *same* convergent,
duplicate-skipping merge crash recovery uses — so "replica" is just
"continuous recovery from someone else's log", and every damage case
(torn frame, quarantined segment, generation gap) already has defined
semantics.

:class:`ReplicationCoordinator` persists the node's role and fencing
epoch (a revived stale leader refuses writes);
:class:`ReplicaClient` is the reference read-routing / write-failover
client.  The service wiring — ``--replica-of``, lag-bounded reads,
promotion endpoints — lives in :mod:`repro.service`.
"""

from repro.replication.applier import ReplicaApplier, payload_fingerprint
from repro.replication.client import ReplicaClient
from repro.replication.coordinator import ROLES, ReplicationCoordinator
from repro.replication.errors import (
    FencedError,
    NotLeaderError,
    ReplicaLagError,
    ReplicationError,
    ReplicationGapError,
)
from repro.replication.frames import decode_frames, encode_frames
from repro.replication.shipper import ShipCursor, Shipment, WalShipper

__all__ = [
    "FencedError",
    "NotLeaderError",
    "ROLES",
    "ReplicaApplier",
    "ReplicaClient",
    "ReplicaLagError",
    "ReplicationCoordinator",
    "ReplicationError",
    "ReplicationGapError",
    "ShipCursor",
    "Shipment",
    "WalShipper",
    "decode_frames",
    "encode_frames",
    "payload_fingerprint",
]
