"""Typed errors for the replication layer.

All derive from :class:`ReplicationError` (itself a
:class:`~repro.errors.ReproError`), so the service maps them onto HTTP
statuses through the same one-table discipline as every other subsystem:
routing failures (``replication_not_leader``, ``replication_fenced``,
``replica_lagging``) surface as **503** with enough structure for a
client to redirect or back off, stream failures
(``replication_gap``, generic ``replication_error``) as **500**.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError


class ReplicationError(ReproError):
    """A replication operation failed (transport, protocol or state)."""

    code = "replication_error"


class NotLeaderError(ReplicationError):
    """A write reached a node that is not the leader.

    Carries the follower's current belief about where the leader is, so
    clients (and the :class:`~repro.replication.client.ReplicaClient`)
    can redirect instead of guessing.
    """

    code = "replication_not_leader"

    def __init__(self, role: str, leader_url: str | None = None) -> None:
        self.role = role
        self.leader_url = leader_url
        where = f"; leader is {leader_url}" if leader_url else ""
        super().__init__(
            f"writes rejected: this node is a {role}{where}"
        )

    def wire_details(self) -> dict[str, Any]:
        details: dict[str, Any] = {"role": self.role}
        if self.leader_url:
            details["leader_url"] = self.leader_url
        return details


class FencedError(ReplicationError):
    """A fenced ex-leader refused a write.

    After a promotion the old leader observes a higher fencing epoch and
    must refuse writes forever (until an operator re-seats it), so a
    resurrected stale leader cannot fork history.
    """

    code = "replication_fenced"

    def __init__(self, epoch: int, fenced_by: int) -> None:
        self.epoch = epoch
        self.fenced_by = fenced_by
        super().__init__(
            f"writes rejected: leader epoch {epoch} was fenced by "
            f"epoch {fenced_by}"
        )

    def wire_details(self) -> dict[str, Any]:
        return {"epoch": self.epoch, "fenced_by": self.fenced_by}


class ReplicaLagError(ReplicationError):
    """A read-your-writes guard could not be satisfied on a replica.

    Raised when the replica is behind the requested
    ``X-Repro-Min-Offset`` or outside the configured ``max_lag_s``
    bound.  ``retry_after`` is the suggested back-off in seconds; the
    service surfaces it as a ``Retry-After`` header on the 503.
    """

    code = "replica_lagging"

    def __init__(
        self,
        reason: str,
        *,
        lag_s: float | None = None,
        applied_offset: int | None = None,
        min_offset: int | None = None,
        retry_after: float = 1.0,
    ) -> None:
        self.lag_s = lag_s
        self.applied_offset = applied_offset
        self.min_offset = min_offset
        self.retry_after = retry_after
        super().__init__(f"replica lagging: {reason}")

    def wire_details(self) -> dict[str, Any]:
        details: dict[str, Any] = {"retry_after": self.retry_after}
        if self.lag_s is not None:
            details["lag_s"] = round(self.lag_s, 3)
        if self.applied_offset is not None:
            details["applied_offset"] = self.applied_offset
        if self.min_offset is not None:
            details["min_offset"] = self.min_offset
        return details


class ReplicationGapError(ReplicationError):
    """Shipped records do not extend the replica's log.

    The convergent merge stopped (``replay_stopped``): the follower's
    state and the shipped stream no longer line up — typically after a
    missed generation reset.  The pump recovers by fetching a full
    snapshot and resyncing; anything else risks divergence.
    """

    code = "replication_gap"

    def __init__(self, detail: str) -> None:
        self.detail = detail
        super().__init__(f"replication stream gap: {detail}")

    def wire_details(self) -> dict[str, Any]:
        return {"detail": self.detail}


__all__ = [
    "FencedError",
    "NotLeaderError",
    "ReplicaLagError",
    "ReplicationError",
    "ReplicationGapError",
]
