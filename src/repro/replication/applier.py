"""Follower-side continuous replay of a shipped WAL stream.

A :class:`ReplicaApplier` holds one session's replica state as the
**serialised kernel dict** (``export_state`` shape) and folds every
shipped record into it through the same convergent, duplicate-skipping
merge crash recovery uses
(:func:`repro.kernel.recovery.merge_wal_records`).  The expensive live
:class:`~repro.tool.session.ToolSession` is rebuilt lazily, only when a
read actually needs it — applying is cheap data manipulation.

Crash discipline: records commit into :attr:`_state` **one at a time**,
so a follower death mid-batch (the ``repl.apply.record`` crashpoint)
leaves a state that is exactly some committed prefix of the leader's
history.  The cursor only advances after the whole shipment lands;
re-shipped records on restart are skipped by the merge's duplicate
discipline, so replay after any crash converges.

A shipment that does not *extend* the replica's log raises
:class:`~repro.replication.errors.ReplicationGapError`; the pump
recovers by fetching a full leader snapshot and calling :meth:`resync`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import TYPE_CHECKING, Any

from repro import faults
from repro.kernel.recovery import RecoveryReport, merge_wal_records
from repro.replication.errors import ReplicationGapError
from repro.replication.shipper import ShipCursor, Shipment

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.tool.session import ToolSession


def payload_fingerprint(payload: dict[str, Any]) -> str:
    """SHA-256 over a canonical ``state_payload`` dict.

    The history-independent divergence proof used everywhere: the
    session manager's rehydration check, the replica parity check and
    the chaos property all compare states through this one function.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ReplicaApplier:
    """Continuously merge shipped WAL records into a live read replica."""

    def __init__(
        self,
        *,
        state: dict[str, Any] | None = None,
        cursor: ShipCursor | None = None,
    ) -> None:
        self._lock = threading.RLock()
        self._state = state
        self._cursor = cursor
        self._session: "ToolSession | None" = None
        self._session_dirty = True
        #: cumulative view of everything replication repaired/replayed,
        #: shaped like a crash-recovery report so the recovery endpoint
        #: can surface leader-side quarantine to follower operators
        self.report = RecoveryReport(source="replica")
        #: leader's log length, as last observed by the pump
        self.leader_offset = 0
        #: wall-clock instant the replica was last known caught up
        self.caught_up_at: float | None = None
        #: wall-clock instant of the last successful apply call
        self.last_apply_wall: float | None = None

    # -- applying ------------------------------------------------------------

    @property
    def cursor(self) -> ShipCursor | None:
        return self._cursor

    def applied_offset(self) -> int:
        """The replica log's length — the offset reads are served at."""
        with self._lock:
            if self._state is None:
                return 0
            return len(self._state.get("events", ()))

    def apply(self, shipment: Shipment) -> int:
        """Fold one shipment in; returns the records applied."""
        with self._lock:
            for name in shipment.quarantined:
                if name not in self.report.segments_quarantined:
                    self.report.segments_quarantined.append(name)
            # a restarted stream replays its generation from the base
            # record: adopt from scratch, exactly as recovery would
            state = None if shipment.restarted else self._state
            applied = 0
            for record in shipment.records:
                faults.crashpoint("repl.apply.record")
                step = RecoveryReport(source="replica")
                state = merge_wal_records(state, [record], step)
                if step.replay_stopped is not None:
                    self.report.replay_stopped = step.replay_stopped
                    raise ReplicationGapError(step.replay_stopped)
                # commit record-by-record: a crash between records
                # leaves a consistent applied prefix behind
                self._state = state
                self._session_dirty = True
                self.report.events_replayed += step.events_replayed
                self.report.head = step.head
                applied += 1
            self._cursor = shipment.cursor
            self.last_apply_wall = time.monotonic()
            return applied

    def resync(
        self,
        state: dict[str, Any],
        *,
        cursor: ShipCursor | None = None,
    ) -> None:
        """Adopt a full leader snapshot (gap recovery / bootstrap).

        With ``cursor=None`` the next poll re-ships the generation from
        its start; the duplicate-skipping merge absorbs the overlap.
        """
        with self._lock:
            self._state = json.loads(json.dumps(state))
            self._cursor = cursor
            self._session_dirty = True
            self.report.replay_stopped = None
            self.last_apply_wall = time.monotonic()

    def observe_leader_offset(self, offset: int) -> None:
        """Record the leader's log length for lag accounting."""
        with self._lock:
            # plain assignment: a leader-side truncate (undo + branch)
            # legitimately shrinks the log length
            self.leader_offset = int(offset)
            if self.applied_offset() >= self.leader_offset:
                self.caught_up_at = time.monotonic()

    def offset_behind(self) -> int:
        with self._lock:
            return max(0, self.leader_offset - self.applied_offset())

    # -- serving -------------------------------------------------------------

    def session(self) -> "ToolSession | None":
        """The live read-only session, rebuilt lazily after each apply."""
        from repro.tool.session import ToolSession

        with self._lock:
            if self._state is None:
                return None
            if self._session is None or self._session_dirty:
                # deep-copy through JSON: the rebuilt kernel must never
                # alias the applier's committed state
                self._session = ToolSession.from_kernel_state(
                    json.loads(json.dumps(self._state))
                )
                self._session.last_recovery = self.report
                self._session_dirty = False
            return self._session

    def state(self) -> dict[str, Any] | None:
        """A detached copy of the committed serialised state."""
        with self._lock:
            if self._state is None:
                return None
            return json.loads(json.dumps(self._state))

    def fingerprint(self) -> str | None:
        """The replica's ``state_payload`` fingerprint (parity proof)."""
        session = self.session()
        if session is None:
            return None
        return payload_fingerprint(session.analysis.state_payload())


__all__ = ["ReplicaApplier", "payload_fingerprint"]
