"""Role and fencing-epoch bookkeeping for one node.

A :class:`ReplicationCoordinator` answers two questions: *may this node
accept writes?* and *which leader epoch is it living in?*  The answers
are persisted (atomic tmp-write + rename to ``replication.json`` under
the service root) so they survive a restart — the property that makes
fencing work: a crashed ex-leader that comes back up reads its own
``fenced`` role from disk and keeps refusing writes, even before it
talks to anyone.

Epochs are the fencing tokens.  Promotion bumps the epoch
(:meth:`promote`); a node that observes a higher epoch than its own —
via a fence request or any replication exchange — demotes itself to
``fenced`` permanently (:meth:`fence`).  Ties go to the incumbent:
only a *strictly* higher epoch fences.

Roles: ``leader`` (writable), ``replica`` (read-only, following),
``fenced`` (read-only, refuses writes with a typed error forever).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro import faults
from repro.replication.errors import FencedError, NotLeaderError

ROLES = ("leader", "replica", "fenced")


class ReplicationCoordinator:
    """Persisted (role, epoch) state machine with fencing."""

    def __init__(
        self,
        state_path: str | Path,
        *,
        role: str = "leader",
        leader_url: str | None = None,
    ) -> None:
        if role not in ROLES:
            raise ValueError(f"unknown replication role {role!r}")
        self.state_path = Path(state_path)
        self._lock = threading.RLock()
        self.role = role
        self.epoch = 1
        self.leader_url = leader_url
        self.fenced_by = 0
        if self.state_path.exists():
            self._load()
        else:
            self._persist()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        data = json.loads(self.state_path.read_text("utf-8"))
        self.role = str(data.get("role", self.role))
        self.epoch = int(data.get("epoch", self.epoch))
        self.fenced_by = int(data.get("fenced_by", 0))
        loaded_leader = data.get("leader_url")
        if loaded_leader is not None:
            self.leader_url = str(loaded_leader)

    def _persist(self) -> None:
        payload = json.dumps(
            {
                "role": self.role,
                "epoch": self.epoch,
                "fenced_by": self.fenced_by,
                "leader_url": self.leader_url,
            },
            sort_keys=True,
        )
        tmp = self.state_path.with_suffix(".tmp")
        self.state_path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(payload, "utf-8")
        os.replace(tmp, self.state_path)

    # -- queries -------------------------------------------------------------

    def is_leader(self) -> bool:
        with self._lock:
            return self.role == "leader"

    def require_writable(self) -> None:
        """Raise the typed refusal unless this node is the leader."""
        with self._lock:
            if self.role == "leader":
                return
            if self.role == "fenced":
                raise FencedError(self.epoch, self.fenced_by)
            raise NotLeaderError(self.role, self.leader_url)

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "role": self.role,
                "epoch": self.epoch,
                "fenced_by": self.fenced_by,
                "leader_url": self.leader_url,
            }

    # -- transitions ---------------------------------------------------------

    def promote(self) -> int:
        """Become the leader of a strictly higher epoch; returns it.

        The ``repl.promote.persist`` crashpoint sits between deciding
        and persisting: a crash there resurrects the node in its *old*
        role — the stale-generation-resurrection window the chaos
        harness exercises.
        """
        with self._lock:
            if self.role == "fenced":
                raise FencedError(self.epoch, self.fenced_by)
            faults.crashpoint("repl.promote.persist")
            self.epoch += 1
            self.role = "leader"
            self.leader_url = None
            self._persist()
            return self.epoch

    def follow(self, leader_url: str | None = None) -> None:
        """Adopt the replica role (startup under ``--replica-of``).

        A fenced node stays fenced — its refusal to write is permanent
        until an operator deletes the persisted state on purpose.
        """
        with self._lock:
            if self.role == "fenced":
                return
            self.role = "replica"
            if leader_url is not None:
                self.leader_url = leader_url
            self._persist()

    def fence(self, epoch: int, *, leader_url: str | None = None) -> bool:
        """Observe a claimed leader epoch; demote if strictly higher.

        Returns True when this call fenced a leader.  A *replica*
        observing a higher epoch is not fenced — it adopts the epoch as
        the stream it now follows (so a later :meth:`promote` always
        yields a strictly higher token than anything it has seen).  An
        already-fenced node just records the highest fencing epoch.
        """
        with self._lock:
            epoch = int(epoch)
            if epoch <= self.epoch:
                return False
            if leader_url is not None:
                self.leader_url = leader_url
            if self.role == "leader":
                self.fenced_by = epoch
                self.role = "fenced"
                self._persist()
                return True
            if self.role == "fenced":
                self.fenced_by = max(self.fenced_by, epoch)
            else:  # replica: follow the newer epoch
                self.epoch = epoch
            self._persist()
            return False

    def observe_epoch(
        self, epoch: int, *, leader_url: str | None = None
    ) -> None:
        """Fold an epoch seen on any replication exchange into state."""
        self.fence(epoch, leader_url=leader_url)


__all__ = ["ROLES", "ReplicationCoordinator"]
