"""Leader-side WAL tailing: turn the durability log into a stream.

A :class:`WalShipper` reads a live WAL directory **read-only** — it
never repairs, truncates or quarantines; that is the owning process's
job on open — and answers "what happened since this cursor?" with a
:class:`Shipment` of records.

Positions are logical, not physical: a :class:`ShipCursor` is
``(generation, records shipped so far)``.  Segment boundaries are the
shipper's problem — records are counted across the whole sorted
``wal-*.seg`` chain, so a snapshot-triggered rotation hands off from
``wal-N.seg`` to ``wal-N+1.seg`` without skipping or duplicating the
straddling record.  The *generation* identifies one WAL lifetime: a
checkpoint ``reset`` starts a new first segment with a new ``base``
record, which changes the generation id and tells the follower to adopt
the stream from scratch rather than append to stale state.

Damage discipline on read:

* a torn tail on the **final** segment is an append racing the read —
  the intact prefix ships, the remainder ships on a later poll;
* damage **before** the final segment is real corruption the owner has
  not noticed yet — the shipment stops at the longest intact prefix and
  is flagged ``damaged`` so the follower can alert rather than replay
  past a hole;
* ``*.corrupt`` segments already quarantined by the owner are reported
  by name, so operators on the follower side can see damage that
  happened on the leader (surfaced through the recovery endpoint).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import faults
from repro.kernel.wal import scan_records

_SEGMENT_GLOB = "wal-*.seg"
_CORRUPT_GLOB = "wal-*.corrupt"


class _SegmentScanCache:
    """Memoized ``scan_records`` per segment file, keyed by stat.

    Without this, every poll of every follower re-reads and CRC-decodes
    every byte of every segment — O(total WAL bytes × followers) per
    round.  WAL segments are append-only while live and immutable once
    rotated, so ``(size, mtime_ns)`` identifies a segment's content: an
    append changes both, a rotation or checkpoint reset replaces the
    file.  The stat is taken *before* the read — a write racing the
    read can at worst cache newer content under the older key, which
    the next append invalidates; it can never pin stale content.

    Cached record dicts are shared by reference; every consumer
    (``encode_frames``, ``merge_wal_records``) treats records as
    immutable, copying before keeping.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._max_entries = max_entries
        self._lock = threading.Lock()
        #: path -> ((size, mtime_ns), (records, good, damage))
        self._entries: dict[
            Path, tuple[tuple[int, int], tuple[Any, ...]]
        ] = {}

    def scan(self, segment: Path) -> tuple[Any, ...]:
        stat = segment.stat()
        key = (stat.st_size, stat.st_mtime_ns)
        with self._lock:
            entry = self._entries.get(segment)
            if entry is not None and entry[0] == key:
                return entry[1]
        result = scan_records(segment.read_bytes())
        with self._lock:
            # FIFO bound: rotated-away and quarantined paths age out
            while (
                len(self._entries) >= self._max_entries
                and segment not in self._entries
            ):
                self._entries.pop(next(iter(self._entries)))
            self._entries[segment] = (key, result)
        return result


_SCAN_CACHE = _SegmentScanCache()


@dataclass(frozen=True)
class ShipCursor:
    """A follower's logical position in a leader's WAL stream."""

    #: identifies one WAL generation (changes at every checkpoint reset)
    generation: str
    #: records already shipped within this generation
    records: int

    def to_wire(self) -> dict[str, Any]:
        return {"generation": self.generation, "records": self.records}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ShipCursor":
        return cls(
            generation=str(wire.get("generation", "")),
            records=int(wire.get("records", 0)),
        )


@dataclass(frozen=True)
class Shipment:
    """One poll's worth of WAL records, plus stream bookkeeping."""

    #: the records after the cursor (every record when ``restarted``)
    records: tuple[dict[str, Any], ...]
    #: position after applying this shipment; feed to the next poll
    cursor: ShipCursor
    #: the generation changed (or the cursor was unusable): the follower
    #: must adopt this stream from scratch, not append to old state
    restarted: bool
    #: mid-generation corruption stopped the scan before the end
    damaged: bool
    #: ``*.corrupt`` segment names quarantined on the leader
    quarantined: tuple[str, ...]


class WalShipper:
    """Tail a WAL directory and hand out incremental shipments."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def poll(self, cursor: ShipCursor | None = None) -> Shipment:
        """Everything after ``cursor`` (or everything, when it is stale)."""
        faults.crashpoint("repl.ship.read")
        records: list[dict[str, Any]] = []
        damaged = False
        first_segment: Path | None = None
        segments = sorted(self.directory.glob(_SEGMENT_GLOB))
        for position, segment in enumerate(segments):
            if first_segment is None:
                first_segment = segment
            scanned, _good, damage = _SCAN_CACHE.scan(segment)
            records.extend(scanned)
            if damage:
                # final segment: an append racing this read — the rest
                # ships next poll.  Earlier: corruption; never ship past.
                damaged = position != len(segments) - 1
                break
        quarantined = tuple(
            sorted(p.name for p in self.directory.glob(_CORRUPT_GLOB))
        )
        generation = self._generation(first_segment, records)
        restarted = (
            cursor is None
            or cursor.generation != generation
            or cursor.records > len(records)
        )
        start = 0 if restarted else cursor.records
        fresh = tuple(records[start:])
        return Shipment(
            records=fresh,
            cursor=ShipCursor(generation, start + len(fresh)),
            restarted=restarted,
            damaged=damaged,
            quarantined=quarantined,
        )

    @staticmethod
    def _generation(
        first_segment: Path | None, records: list[dict[str, Any]]
    ) -> str:
        """A stable id for one WAL lifetime.

        Hash of the first segment's *name* and first record: a
        checkpoint ``reset`` deletes every segment and writes a fresh
        ``wal-0000000001.seg`` whose base record names the new offset
        (or embeds state), so either component — and hence the id —
        changes.  An empty directory is the empty generation.
        """
        if first_segment is None or not records:
            return ""
        seed = first_segment.name + "|" + json.dumps(
            records[0], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]


__all__ = ["ShipCursor", "Shipment", "WalShipper"]
