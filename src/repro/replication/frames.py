"""Wire framing for shipped WAL records.

Records travel between leader and follower in exactly the on-disk WAL
framing — an 8-byte ``<II`` (length, crc32) header per JSON-line payload
— so the follower re-verifies every checksum with the same decoder the
crash scanner uses (:func:`repro.kernel.wal.scan_records`).  A frame
torn in transit therefore means the same thing as a frame torn on disk:
the intact prefix is trustworthy, everything after it is not.

The encoder passes each frame through
:func:`repro.faults.torn_buffer` at the ``repl.ship.frame`` crashpoint,
so the chaos harness can deterministically sever a connection mid-frame;
the partial prefix rides on the :class:`~repro.faults.InjectedCrash` as
what "made it onto the wire".
"""

from __future__ import annotations

from typing import Any

from repro import faults
from repro.kernel.wal import encode_record, scan_records


def encode_frames(records: list[dict[str, Any]]) -> bytes:
    """Frame ``records`` for the wire; torn-crash aware.

    When the active fault plan tears ``repl.ship.frame``, the raised
    :class:`~repro.faults.InjectedCrash` carries, in ``partial``, every
    fully-encoded earlier frame plus the torn prefix of the current one
    — the bytes a real connection would have delivered before dying.
    """
    out = bytearray()
    for record in records:
        frame = encode_record(record)
        try:
            out += faults.torn_buffer(frame, "repl.ship.frame")
        except faults.InjectedCrash as crash:
            crash.partial = bytes(out) + (crash.partial or b"")
            raise
    return bytes(out)


def decode_frames(
    data: bytes,
) -> tuple[list[dict[str, Any]], int, bool]:
    """``(records, intact bytes, damaged?)`` for a received buffer.

    CRC re-verification happens here, on the follower, regardless of
    what the leader claimed to send.
    """
    return scan_records(data)


__all__ = ["decode_frames", "encode_frames"]
