"""A replication-aware service client: route reads, fail over writes.

:class:`ReplicaClient` is the client half of the read-scaling story —
the piece the benchmark and smoke tests drive, and the reference for
how external clients are expected to behave:

* **reads** go to a replica, carrying ``X-Repro-Min-Offset`` for every
  session the client has written to (read-your-writes); a ``503`` from
  the replica (lagging, not yet bootstrapped) falls back to the leader;
* **writes** go to the leader; when the leader is unreachable or
  answers ``replication_not_leader`` / ``replication_fenced``, the
  client probes its known nodes' ``/v1/replication/status`` and adopts
  whichever now claims leadership — automatic client-visible failover
  after a promotion.

Stdlib-only (``http.client``), with one keep-alive connection per host.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any

from repro.replication.errors import ReplicationError


class ReplicaClient:
    """Route reads to followers and writes to the leader, with failover."""

    def __init__(
        self,
        leader_url: str,
        replica_urls: list[str] | tuple[str, ...] = (),
        *,
        token: str,
        timeout: float = 10.0,
    ) -> None:
        self.leader_url = leader_url.rstrip("/")
        self.replica_urls = [url.rstrip("/") for url in replica_urls]
        self.token = token
        self.timeout = timeout
        self._connections: dict[str, http.client.HTTPConnection] = {}
        #: leader log length per session id, from this client's writes
        self._written_offsets: dict[str, int] = {}

    # -- transport -----------------------------------------------------------

    def _connection(self, base_url: str) -> http.client.HTTPConnection:
        connection = self._connections.get(base_url)
        if connection is None:
            parsed = urllib.parse.urlsplit(base_url)
            factory = (
                http.client.HTTPSConnection
                if parsed.scheme == "https"
                else http.client.HTTPConnection
            )
            connection = factory(
                parsed.hostname, parsed.port, timeout=self.timeout
            )
            self._connections[base_url] = connection
        return connection

    def _drop_connection(self, base_url: str) -> None:
        connection = self._connections.pop(base_url, None)
        if connection is not None:
            connection.close()

    def request(
        self,
        base_url: str,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One HTTP exchange; returns (status, headers, decoded body)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        send_headers = {"Authorization": f"Bearer {self.token}"}
        if payload is not None:
            send_headers["Content-Type"] = "application/json"
        if headers:
            send_headers.update(headers)
        connection = self._connection(base_url)
        try:
            connection.request(method, path, body=payload,
                               headers=send_headers)
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            self._drop_connection(base_url)
            raise
        decoded: Any = None
        if raw:
            try:
                decoded = json.loads(raw)
            except ValueError:
                decoded = raw.decode("utf-8", "replace")
        return response.status, dict(response.getheaders()), decoded

    # -- bookkeeping ---------------------------------------------------------

    def note_offset(self, sid: str, offset: int) -> None:
        """Record the leader log length a write left behind for ``sid``."""
        current = self._written_offsets.get(sid, 0)
        self._written_offsets[sid] = max(current, int(offset))

    def min_offset(self, sid: str) -> int:
        return self._written_offsets.get(sid, 0)

    # -- routed operations ---------------------------------------------------

    def read(
        self,
        path: str,
        *,
        sid: str | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """GET from a replica (leader fallback), read-your-writes safe."""
        headers = {}
        if sid is not None and sid in self._written_offsets:
            headers["X-Repro-Min-Offset"] = str(self._written_offsets[sid])
        for base_url in self.replica_urls:
            try:
                status, hdrs, decoded = self.request(
                    base_url, "GET", path, headers=headers
                )
            except (http.client.HTTPException, OSError):
                continue
            if status != 503:
                return status, hdrs, decoded
        return self.request(self.leader_url, "GET", path, headers=headers)

    def write(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        sid: str | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """Send a write to the leader; fail over once after a promotion."""
        for attempt in (1, 2):
            try:
                status, headers, decoded = self.request(
                    self.leader_url, method, path, body=body
                )
            except (http.client.HTTPException, OSError):
                if attempt == 2 or not self._failover():
                    raise
                continue
            code = (
                decoded.get("error", {}).get("code")
                if isinstance(decoded, dict)
                else None
            )
            if code in ("replication_not_leader", "replication_fenced"):
                if attempt == 2 or not self._failover(decoded):
                    return status, headers, decoded
                continue
            if sid is not None and isinstance(decoded, dict):
                offset = decoded.get("events")
                if isinstance(offset, int):
                    self.note_offset(sid, offset)
            return status, headers, decoded
        raise ReplicationError("write failed after failover")

    def _failover(self, rejection: Any = None) -> bool:
        """Find the new leader among known nodes; True when adopted.

        A ``replication_not_leader`` rejection names the leader
        directly; otherwise every known node is asked for its role.
        """
        if isinstance(rejection, dict):
            details = rejection.get("error", {}).get("details", {})
            named = details.get("leader_url")
            if named:
                self.leader_url = named.rstrip("/")
                return True
        candidates = [
            url for url in self.replica_urls if url != self.leader_url
        ]
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            for base_url in candidates:
                try:
                    status, _headers, decoded = self.request(
                        base_url, "GET", "/v1/replication/status"
                    )
                except (http.client.HTTPException, OSError):
                    continue
                if (
                    status == 200
                    and isinstance(decoded, dict)
                    and decoded.get("role") == "leader"
                ):
                    self.leader_url = base_url
                    return True
            time.sleep(0.05)
        return False

    def close(self) -> None:
        for base_url in list(self._connections):
            self._drop_connection(base_url)


__all__ = ["ReplicaClient"]
