"""Deprecated shim — the counters moved to :mod:`repro.obs.metrics`.

:class:`AnalysisCounters` is owned by the observability subsystem
(:mod:`repro.obs`), where it plugs into the
:class:`~repro.obs.metrics.MetricsRegistry` and the span tracer.  This
module now warns on import and will be removed in the next release;
import from :mod:`repro.obs.metrics` (or use the :mod:`repro.analysis`
re-export) instead.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import AnalysisCounters

warnings.warn(
    "repro.instrumentation is deprecated and will be removed; import "
    "AnalysisCounters from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["AnalysisCounters"]
