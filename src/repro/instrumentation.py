"""Lightweight instrumentation counters for the incremental analysis engine.

The Phase 2/3 hot paths — OCS cell computation, candidate ordering and
assertion-closure propagation — are memoized and repaired incrementally.
:class:`AnalysisCounters` records how much work each path actually did so
tests and benchmarks can *assert* the win instead of eyeballing timings:
a cache hit increments one counter, a recomputation another.

This module deliberately imports nothing from :mod:`repro` so that the
low-level engines (:mod:`repro.equivalence.registry`,
:mod:`repro.assertions.network`) can depend on it without import cycles.
The counters are re-exported from :mod:`repro.analysis`, which is where
experiment code should import them from.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class AnalysisCounters:
    """Work counters shared by a registry, its cached views and networks.

    Every :class:`~repro.equivalence.registry.EquivalenceRegistry` and
    :class:`~repro.assertions.network.AssertionNetwork` owns one (or shares
    one through an :class:`~repro.equivalence.AnalysisSession`).
    """

    #: registry mutations that bumped the version counter
    registry_mutations: int = 0
    #: OCS cells computed from the registry (cache misses)
    ocs_cells_recomputed: int = 0
    #: OCS cells served from the memoized matrix
    ocs_cache_hits: int = 0
    #: ACS views recomputed after an invalidation
    acs_rebuilds: int = 0
    #: ACS views served from cache
    acs_cache_hits: int = 0
    #: ranked candidate lists rebuilt (re-sorted) after an invalidation
    ordering_rebuilds: int = 0
    #: ranked candidate lists served from cache
    ordering_cache_hits: int = 0
    #: individual narrowing compositions performed during path consistency
    propagation_steps: int = 0
    #: retracts/respecifies repaired incrementally (affected region only)
    closure_incremental_retracts: int = 0
    #: retracts/respecifies served by a full network rebuild
    closure_full_rebuilds: int = 0
    #: pairs reset and re-derived by incremental closure repair
    closure_pairs_recomputed: int = 0

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between phases)."""
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def snapshot(self) -> dict[str, int]:
        """The current counter values as a plain dict (JSON-friendly)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={value}" for name, value in self.snapshot().items() if value
        )
        return f"AnalysisCounters({parts})"
