"""Compatibility shim — the counters moved to :mod:`repro.obs.metrics`.

:class:`AnalysisCounters` is now owned by the observability subsystem
(:mod:`repro.obs`), where it plugs into the
:class:`~repro.obs.metrics.MetricsRegistry` and the span tracer.  This
module keeps the historical import path working; new code should import
from :mod:`repro.obs.metrics` (or keep using the :mod:`repro.analysis`
re-export).
"""

from __future__ import annotations

from repro.obs.metrics import AnalysisCounters

__all__ = ["AnalysisCounters"]
