"""Repair-scope accounting and the scoped solver re-propagation.

Every applied edit produces a :class:`RepairScope` — the tool's
"recomputed 14/2,400 OCS cells, 2 clusters, 1 plan" report — by measuring
exactly what each downstream layer recomputed: the delta of the analysis
counters around the repair (OCS cells, closure pairs), the assertions the
network retracted, the clusters/merge groups the integration patch
rebuilt, and the plans the federation cache dropped.

:func:`scoped_repropagation` is the solver-side verification step: after a
destructive edit's localized network repair, the batch engine
(:func:`repro.solver.engine.propagate`) is re-run over a worklist seeded
with only the facts that involve the affected objects.  Retraction only
loosens constraints and fresh structures arrive unconstrained, so this can
never fail on a well-formed repair — it is the cheap cross-engine check
that the localized repair left the neighborhood at the same fixpoint the
batch engine reaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.ecr.schema import ObjectRef
from repro.errors import ConsistencyFailure
from repro.obs.trace import span
from repro.solver.engine import Propagation, propagate

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.assertions.assertion import Assertion
    from repro.assertions.network import AssertionNetwork
    from repro.evolution.edits import SchemaEdit


@dataclass
class RepairScope:
    """How much of each layer one edit's repair actually touched."""

    schema: str = ""
    edit_kind: str = ""
    ocs_cells_recomputed: int = 0
    ocs_cells_total: int = 0
    registry_classes_touched: int = 0
    assertions_retracted: int = 0
    pairs_repropagated: int = 0
    solver_steps: int = 0
    clusters_changed: int = 0
    clusters_total: int = 0
    merge_groups_recomputed: int = 0
    merge_groups_total: int = 0
    plans_invalidated: int = 0
    plans_total: int = 0
    integrated_patched: bool = False

    def summary(self) -> str:
        """The one-line repair report shown on the evolution screen."""
        parts = [
            f"recomputed {self.ocs_cells_recomputed:,}/"
            f"{self.ocs_cells_total:,} OCS cells"
        ]
        if self.assertions_retracted:
            parts.append(f"retracted {self.assertions_retracted} assertions")
        if self.pairs_repropagated:
            parts.append(f"re-propagated {self.pairs_repropagated} pairs")
        if self.integrated_patched:
            parts.append(
                f"{self.clusters_changed}/{self.clusters_total} clusters"
            )
            parts.append(
                f"{self.merge_groups_recomputed}/"
                f"{self.merge_groups_total} merge groups"
            )
        if self.plans_total:
            parts.append(
                f"{self.plans_invalidated}/{self.plans_total} plans"
            )
        return ", ".join(parts)

    def to_wire(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "edit_kind": self.edit_kind,
            "ocs_cells_recomputed": self.ocs_cells_recomputed,
            "ocs_cells_total": self.ocs_cells_total,
            "registry_classes_touched": self.registry_classes_touched,
            "assertions_retracted": self.assertions_retracted,
            "pairs_repropagated": self.pairs_repropagated,
            "solver_steps": self.solver_steps,
            "clusters_changed": self.clusters_changed,
            "clusters_total": self.clusters_total,
            "merge_groups_recomputed": self.merge_groups_recomputed,
            "merge_groups_total": self.merge_groups_total,
            "plans_invalidated": self.plans_invalidated,
            "plans_total": self.plans_total,
            "integrated_patched": self.integrated_patched,
            "summary": self.summary(),
        }


@dataclass(frozen=True)
class EditOutcome:
    """The result of :meth:`AnalysisSession.apply_edit`.

    ``edit`` is the applied edit, ``inverse`` the edit that undoes it,
    ``retracted`` the specified assertions a destructive edit withdrew,
    and ``scope`` the repair accounting.  ``destructive`` marks edits
    whose inverse edit alone cannot restore the prior state (retracted
    assertions, lost equivalence memberships) — the kernel records no
    event inverse for those and undo falls back to a snapshot checkout.
    """

    edit: "SchemaEdit"
    inverse: "SchemaEdit"
    scope: RepairScope
    retracted: tuple["Assertion", ...] = ()
    destructive: bool = False

    def to_wire(self) -> dict[str, Any]:
        return {
            "edit": self.edit.to_payload(),
            "inverse": self.inverse.to_payload(),
            "destructive": self.destructive,
            "retracted": [member.to_wire() for member in self.retracted],
            "scope": self.scope.to_wire(),
        }


def affected_facts(
    network: "AssertionNetwork", objects: Iterable[ObjectRef]
) -> list["Assertion"]:
    """The specified assertions that involve any of the given objects."""
    wanted = set(objects)
    return [
        assertion
        for assertion in network.specified_assertions()
        if assertion.pair[0] in wanted or assertion.pair[1] in wanted
    ]


def scoped_repropagation(
    network: "AssertionNetwork",
    objects: Iterable[ObjectRef],
    *,
    scope: RepairScope | None = None,
) -> Propagation:
    """Re-run the batch engine over only the affected pairs' facts.

    Raises
    ------
    ConsistencyFailure
        If the affected neighborhood is inconsistent.  Unreachable after
        a well-formed localized repair (retraction only loosens), so a
        raise here means the repair itself is broken.
    """
    facts = affected_facts(network, objects)
    with span(
        "evolution.repair.solver",
        counters=network.counters,
        facts=len(facts),
    ):
        outcome = propagate(facts, counters=network.counters)
    if scope is not None:
        scope.pairs_repropagated += len(outcome.domains)
        scope.solver_steps += outcome.steps
    if outcome.culprit is not None:  # pragma: no cover - repair invariant
        from repro.solver.explain import minimal_conflict

        conflict = minimal_conflict(facts, counters=network.counters)
        raise ConsistencyFailure(conflict, subject=outcome.culprit)
    return outcome


__all__ = [
    "EditOutcome",
    "RepairScope",
    "affected_facts",
    "scoped_repropagation",
]
