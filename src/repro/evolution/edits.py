"""The typed schema-edit vocabulary of the evolution subsystem.

A :class:`SchemaEdit` is a single declarative change to one component
schema: add/drop/rename an attribute, add/drop an object class, add/drop/
retarget a relationship set, or change a key flag / cardinality constraint.
Edits are the *only* supported mutation entry point for registered schemas
(ad-hoc in-place edits followed by ``refresh_after_edit`` are deprecated):
they validate before mutating, so a failed edit leaves the schema exactly
as it was, and :meth:`SchemaEdit.apply` returns an :class:`EditDelta`
describing precisely what changed — which attribute refs appeared,
vanished or moved, and whether the schema's structure membership changed —
plus the inverse edit that undoes it.

The payload form (:meth:`SchemaEdit.to_payload` / :func:`edit_from_payload`)
is the wire/event format: it is what ``evolution.apply_edit`` kernel events
carry, what the service's ``POST .../edits`` endpoint accepts, and what the
audit replay re-drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

from repro.ecr.attributes import Attribute, AttributeRef, check_identifier
from repro.ecr.json_io import (
    attribute_from_dict,
    attribute_to_dict,
    participation_from_dict,
    participation_to_dict,
    structure_from_dict,
    structure_to_dict,
)
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


@dataclass(frozen=True)
class EditDelta:
    """What one applied edit changed, in registry/network terms.

    ``added_refs``/``dropped_refs`` are unqualified ``(object, attribute)``
    name pairs (the session qualifies them with the schema name);
    ``renamed_refs`` pairs old with new.  ``added_objects`` /
    ``dropped_objects`` list object classes that joined or left the
    assertion network; relationship sets are listed separately because
    they live in the relationship network.  ``touched_objects`` are
    structures whose definition changed in place without any attribute
    delta.  ``structural`` marks changes to the schema's structure
    membership, which force row/column re-derivation in the matrix views.
    """

    inverse: "SchemaEdit"
    added_refs: tuple[tuple[str, str], ...] = ()
    dropped_refs: tuple[tuple[str, str], ...] = ()
    renamed_refs: tuple[tuple[str, str, str], ...] = ()  # (object, old, new)
    added_objects: tuple[str, ...] = ()
    dropped_objects: tuple[str, ...] = ()
    added_relationships: tuple[str, ...] = ()
    dropped_relationships: tuple[str, ...] = ()
    touched_objects: tuple[str, ...] = ()
    #: objects whose implicit (category-structure) assertions must be
    #: re-derived because their parent connections changed
    reseeded_objects: tuple[str, ...] = ()
    structural: bool = False

    def all_touched(self) -> tuple[str, ...]:
        """Every structure name the edit affected, in a stable order."""
        names: list[str] = []
        for name in (
            *self.touched_objects,
            *self.added_objects,
            *self.dropped_objects,
            *self.added_relationships,
            *self.dropped_relationships,
            *(owner for owner, _ in self.added_refs),
            *(owner for owner, _ in self.dropped_refs),
            *(owner for owner, _, _ in self.renamed_refs),
        ):
            if name not in names:
                names.append(name)
        return tuple(names)


@dataclass(frozen=True)
class SchemaEdit:
    """Base class of the edit vocabulary; subclasses define one verb each."""

    kind: ClassVar[str] = ""

    def apply(self, schema: Schema) -> EditDelta:
        """Validate against ``schema``, then mutate it; return the delta.

        Raises a :class:`~repro.errors.ReproError` subclass *before* any
        mutation when the edit is invalid, so a failed apply is a no-op.
        """
        raise NotImplementedError

    def to_payload(self) -> dict[str, Any]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description for screens and the audit log."""
        raise NotImplementedError


@dataclass(frozen=True)
class AddAttribute(SchemaEdit):
    """Add an attribute to an object class or relationship set."""

    kind: ClassVar[str] = "add_attribute"
    object_name: str = ""
    attribute: Attribute = field(default_factory=lambda: Attribute("attr"))

    def apply(self, schema: Schema) -> EditDelta:
        structure = schema.get(self.object_name)
        if structure.has_attribute(self.attribute.name):
            raise DuplicateNameError(
                "attribute", self.attribute.name, self.object_name
            )
        structure.add_attribute(self.attribute)
        return EditDelta(
            inverse=DropAttribute(self.object_name, self.attribute.name),
            added_refs=((self.object_name, self.attribute.name),),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "object": self.object_name,
            "attribute": attribute_to_dict(self.attribute),
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "AddAttribute":
        return cls(data["object"], attribute_from_dict(data["attribute"]))

    def describe(self) -> str:
        return f"add attribute {self.attribute.name} to {self.object_name}"


@dataclass(frozen=True)
class DropAttribute(SchemaEdit):
    """Remove an attribute from an object class or relationship set."""

    kind: ClassVar[str] = "drop_attribute"
    object_name: str = ""
    attribute_name: str = ""

    def apply(self, schema: Schema) -> EditDelta:
        structure = schema.get(self.object_name)
        removed = structure.attribute(self.attribute_name)  # validates
        structure.remove_attribute(self.attribute_name)
        return EditDelta(
            inverse=AddAttribute(self.object_name, removed),
            dropped_refs=((self.object_name, self.attribute_name),),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "object": self.object_name,
            "attribute": self.attribute_name,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "DropAttribute":
        return cls(data["object"], data["attribute"])

    def describe(self) -> str:
        return f"drop attribute {self.attribute_name} from {self.object_name}"


@dataclass(frozen=True)
class RenameAttribute(SchemaEdit):
    """Rename an attribute, keeping its equivalence-class membership."""

    kind: ClassVar[str] = "rename_attribute"
    object_name: str = ""
    old_name: str = ""
    new_name: str = ""

    def apply(self, schema: Schema) -> EditDelta:
        structure = schema.get(self.object_name)
        attribute = structure.attribute(self.old_name)  # validates
        if self.new_name == self.old_name:
            raise SchemaError(
                f"rename of {self.old_name!r} must change the name"
            )
        if structure.has_attribute(self.new_name):
            raise DuplicateNameError(
                "attribute", self.new_name, self.object_name
            )
        check_identifier(self.new_name, "attribute")
        index = structure.attributes.index(attribute)
        structure.attributes[index] = attribute.renamed(self.new_name)
        return EditDelta(
            inverse=RenameAttribute(
                self.object_name, self.new_name, self.old_name
            ),
            renamed_refs=((self.object_name, self.old_name, self.new_name),),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "object": self.object_name,
            "old": self.old_name,
            "new": self.new_name,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "RenameAttribute":
        return cls(data["object"], data["old"], data["new"])

    def describe(self) -> str:
        return (
            f"rename attribute {self.object_name}.{self.old_name} "
            f"to {self.new_name}"
        )


def _class_edit_delta(
    inverse: SchemaEdit, structure: Any, *, added: bool
) -> EditDelta:
    refs = tuple(
        (structure.name, attribute.name) for attribute in structure.attributes
    )
    is_relationship = isinstance(structure, RelationshipSet)
    return EditDelta(
        inverse=inverse,
        added_refs=refs if added else (),
        dropped_refs=() if added else refs,
        added_objects=(structure.name,) if added and not is_relationship else (),
        dropped_objects=(structure.name,)
        if not added and not is_relationship
        else (),
        added_relationships=(structure.name,) if added and is_relationship else (),
        dropped_relationships=(structure.name,)
        if not added and is_relationship
        else (),
        structural=True,
    )


@dataclass(frozen=True)
class AddClass(SchemaEdit):
    """Add an entity set or category, given as a structure payload.

    ``position`` pins the structure's index in the schema's declaration
    order; inverse edits of drops carry it so undo reproduces the original
    schema bytes (declaration order is part of the canonical JSON form).
    """

    kind: ClassVar[str] = "add_class"
    structure: dict = field(default_factory=dict)
    position: int | None = None

    def _build(self) -> Any:
        built = structure_from_dict(self.structure)
        if isinstance(built, RelationshipSet):
            raise SchemaError(
                f"{self.kind} cannot add a relationship set; "
                "use add_relationship"
            )
        return built

    def apply(self, schema: Schema) -> EditDelta:
        built = self._build()
        if built.name in schema:
            raise DuplicateNameError(
                built.kind_label(), built.name, schema.name
            )
        if isinstance(built, Category):
            for parent in built.parents:
                schema.get(parent)  # validates the parent exists
        schema.add(built)
        if self.position is not None:
            schema.move(built.name, self.position)
        return _class_edit_delta(DropClass(built.name), built, added=True)

    def to_payload(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind, "structure": dict(self.structure)
        }
        if self.position is not None:
            data["position"] = self.position
        return data

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "AddClass":
        return cls(dict(data["structure"]), data.get("position"))

    def describe(self) -> str:
        name = self.structure.get("name", "?")
        return f"add class {name}"


@dataclass(frozen=True)
class DropClass(SchemaEdit):
    """Drop an object class.

    Without ``cascade``, dropping a class that still carries specified
    (DDA) assertions is a *conflicting edit* — the session refuses it with
    a :class:`~repro.errors.ConsistencyFailure` listing those assertions.
    With ``cascade``, the assertions are retracted as part of the repair.
    Either way the class must not be referenced by other structures
    (category parents, relationship legs); the schema refuses that itself.
    """

    kind: ClassVar[str] = "drop_class"
    object_name: str = ""
    cascade: bool = False

    def apply(self, schema: Schema) -> EditDelta:
        structure = schema.get(self.object_name)
        if isinstance(structure, RelationshipSet):
            raise SchemaError(
                f"{self.object_name!r} is a relationship set; "
                "use drop_relationship"
            )
        position = schema.position(self.object_name)
        removed = schema.remove(self.object_name)  # refuses dangling refs
        return _class_edit_delta(
            AddClass(structure_to_dict(removed), position),
            removed,
            added=False,
        )

    def to_payload(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind, "object": self.object_name}
        if self.cascade:
            data["cascade"] = True
        return data

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "DropClass":
        return cls(data["object"], bool(data.get("cascade", False)))

    def describe(self) -> str:
        suffix = " (cascade)" if self.cascade else ""
        return f"drop class {self.object_name}{suffix}"


@dataclass(frozen=True)
class AddRelationship(SchemaEdit):
    """Add a relationship set, given as a structure payload.

    ``position`` works as for :class:`AddClass`.
    """

    kind: ClassVar[str] = "add_relationship"
    structure: dict = field(default_factory=dict)
    position: int | None = None

    def _build(self) -> RelationshipSet:
        built = structure_from_dict(self.structure)
        if not isinstance(built, RelationshipSet):
            raise SchemaError(
                f"{self.kind} requires a relationship-set structure "
                f"(kind 'r'), got {self.structure.get('kind')!r}"
            )
        return built

    def apply(self, schema: Schema) -> EditDelta:
        built = self._build()
        if built.name in schema:
            raise DuplicateNameError(
                built.kind_label(), built.name, schema.name
            )
        for participation in built.participations:
            schema.object_class(participation.object_name)  # validates
        schema.add(built)
        if self.position is not None:
            schema.move(built.name, self.position)
        return _class_edit_delta(
            DropRelationship(built.name), built, added=True
        )

    def to_payload(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind, "structure": dict(self.structure)
        }
        if self.position is not None:
            data["position"] = self.position
        return data

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "AddRelationship":
        return cls(dict(data["structure"]), data.get("position"))

    def describe(self) -> str:
        name = self.structure.get("name", "?")
        return f"add relationship {name}"


@dataclass(frozen=True)
class DropRelationship(SchemaEdit):
    """Drop a relationship set (see :class:`DropClass` for ``cascade``)."""

    kind: ClassVar[str] = "drop_relationship"
    relationship: str = ""
    cascade: bool = False

    def apply(self, schema: Schema) -> EditDelta:
        removed = schema.relationship_set(self.relationship)  # validates kind
        position = schema.position(self.relationship)
        schema.remove(self.relationship)
        return _class_edit_delta(
            AddRelationship(structure_to_dict(removed), position),
            removed,
            added=False,
        )

    def to_payload(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "relationship": self.relationship,
        }
        if self.cascade:
            data["cascade"] = True
        return data

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "DropRelationship":
        return cls(data["relationship"], bool(data.get("cascade", False)))

    def describe(self) -> str:
        suffix = " (cascade)" if self.cascade else ""
        return f"drop relationship {self.relationship}{suffix}"


@dataclass(frozen=True)
class RetargetRelationship(SchemaEdit):
    """Re-point every leg of a relationship from one class to another."""

    kind: ClassVar[str] = "retarget_relationship"
    relationship: str = ""
    old_target: str = ""
    new_target: str = ""

    def apply(self, schema: Schema) -> EditDelta:
        relationship = schema.relationship_set(self.relationship)
        if not relationship.connects(self.old_target):
            raise UnknownNameError(
                "participation", self.old_target, self.relationship
            )
        schema.object_class(self.new_target)  # validates the new target
        taken = {
            leg.label
            for leg in relationship.participations
            if leg.object_name != self.old_target
        }
        for leg in relationship.participations:
            if leg.object_name == self.old_target and not leg.role:
                if self.new_target in taken:
                    raise DuplicateNameError(
                        "participation", self.new_target, self.relationship
                    )
        relationship.replace_participant(self.old_target, self.new_target)
        return EditDelta(
            inverse=RetargetRelationship(
                self.relationship, self.new_target, self.old_target
            ),
            touched_objects=(self.relationship,),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "relationship": self.relationship,
            "old": self.old_target,
            "new": self.new_target,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "RetargetRelationship":
        return cls(data["relationship"], data["old"], data["new"])

    def describe(self) -> str:
        return (
            f"retarget {self.relationship}: "
            f"{self.old_target} -> {self.new_target}"
        )


@dataclass(frozen=True)
class ChangeKey(SchemaEdit):
    """Set or clear the key flag of one attribute."""

    kind: ClassVar[str] = "change_key"
    object_name: str = ""
    attribute_name: str = ""
    is_key: bool = True

    def apply(self, schema: Schema) -> EditDelta:
        structure = schema.get(self.object_name)
        attribute = structure.attribute(self.attribute_name)  # validates
        previous = attribute.is_key
        index = structure.attributes.index(attribute)
        structure.attributes[index] = replace(attribute, is_key=self.is_key)
        return EditDelta(
            inverse=ChangeKey(
                self.object_name, self.attribute_name, previous
            ),
            touched_objects=(self.object_name,),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "object": self.object_name,
            "attribute": self.attribute_name,
            "is_key": self.is_key,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "ChangeKey":
        return cls(data["object"], data["attribute"], bool(data["is_key"]))

    def describe(self) -> str:
        verb = "set" if self.is_key else "clear"
        return (
            f"{verb} key flag on {self.object_name}.{self.attribute_name}"
        )


@dataclass(frozen=True)
class ChangeCardinality(SchemaEdit):
    """Replace the cardinality constraint of one relationship leg."""

    kind: ClassVar[str] = "change_cardinality"
    relationship: str = ""
    leg_label: str = ""
    cardinality: CardinalityConstraint = field(
        default_factory=CardinalityConstraint
    )

    def apply(self, schema: Schema) -> EditDelta:
        relationship = schema.relationship_set(self.relationship)
        leg = relationship.participation_for(self.leg_label)  # validates
        index = relationship.participations.index(leg)
        relationship.participations[index] = Participation(
            leg.object_name, self.cardinality, leg.role
        )
        return EditDelta(
            inverse=ChangeCardinality(
                self.relationship, self.leg_label, leg.cardinality
            ),
            touched_objects=(self.relationship,),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "relationship": self.relationship,
            "leg": self.leg_label,
            "cardinality": self.cardinality.spelled(),
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "ChangeCardinality":
        return cls(
            data["relationship"],
            data["leg"],
            CardinalityConstraint.parse(data["cardinality"]),
        )

    def describe(self) -> str:
        return (
            f"change cardinality of {self.relationship}.{self.leg_label} "
            f"to {self.cardinality.spelled()}"
        )


@dataclass(frozen=True)
class SetCategoryParents(SchemaEdit):
    """Replace a category's parent connections.

    The implicit category-structure containment assertions the networks
    derive from single-parent categories are re-derived as part of the
    repair (see :attr:`EditDelta.reseeded_objects`).
    """

    kind: ClassVar[str] = "set_category_parents"
    object_name: str = ""
    parents: tuple[str, ...] = ()

    def apply(self, schema: Schema) -> EditDelta:
        category = schema.category(self.object_name)  # validates kind
        parents = list(self.parents)
        if not parents:
            raise SchemaError(
                f"category {self.object_name!r} must keep at least one parent"
            )
        if len(set(parents)) != len(parents):
            raise DuplicateNameError(
                "parent", sorted(parents)[0], self.object_name
            )
        for parent in parents:
            if parent == self.object_name:
                raise SchemaError(
                    f"category {self.object_name!r} cannot be its own parent"
                )
            schema.object_class(parent)  # validates each parent exists
        previous = tuple(category.parents)
        if tuple(parents) == previous:
            raise SchemaError(
                f"parents of {self.object_name!r} are already "
                f"{', '.join(previous)}"
            )
        category.parents[:] = parents
        return EditDelta(
            inverse=SetCategoryParents(self.object_name, previous),
            touched_objects=(self.object_name,),
            reseeded_objects=(self.object_name,),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "object": self.object_name,
            "parents": list(self.parents),
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "SetCategoryParents":
        return cls(data["object"], tuple(data["parents"]))

    def describe(self) -> str:
        return (
            f"set parents of {self.object_name} to "
            f"{', '.join(self.parents)}"
        )


@dataclass(frozen=True)
class AddParticipation(SchemaEdit):
    """Attach one leg to a relationship set.

    ``position`` pins the leg's index (inverse edits of leg drops carry
    it so undo reproduces the original schema bytes).
    """

    kind: ClassVar[str] = "add_participation"
    relationship: str = ""
    participation: Participation = field(
        default_factory=lambda: Participation("object")
    )
    position: int | None = None

    def apply(self, schema: Schema) -> EditDelta:
        relationship = schema.relationship_set(self.relationship)
        schema.object_class(self.participation.object_name)  # validates
        relationship.add_participation(self.participation)  # label-unique
        if self.position is not None:
            legs = relationship.participations
            legs.remove(self.participation)
            legs.insert(
                max(0, min(self.position, len(legs))), self.participation
            )
        return EditDelta(
            inverse=DropParticipation(
                self.relationship, self.participation.label
            ),
            touched_objects=(self.relationship,),
        )

    def to_payload(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "relationship": self.relationship,
            "participation": participation_to_dict(self.participation),
        }
        if self.position is not None:
            data["position"] = self.position
        return data

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "AddParticipation":
        return cls(
            data["relationship"],
            participation_from_dict(data["participation"]),
            data.get("position"),
        )

    def describe(self) -> str:
        return (
            f"connect {self.participation.object_name} to "
            f"{self.relationship}"
        )


@dataclass(frozen=True)
class DropParticipation(SchemaEdit):
    """Detach one leg (by role name, or object name when unnamed)."""

    kind: ClassVar[str] = "drop_participation"
    relationship: str = ""
    leg_label: str = ""

    def apply(self, schema: Schema) -> EditDelta:
        relationship = schema.relationship_set(self.relationship)
        leg = relationship.participation_for(self.leg_label)  # validates
        position = relationship.participations.index(leg)
        relationship.remove_participation(self.leg_label)
        return EditDelta(
            inverse=AddParticipation(self.relationship, leg, position),
            touched_objects=(self.relationship,),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "relationship": self.relationship,
            "leg": self.leg_label,
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "DropParticipation":
        return cls(data["relationship"], data["leg"])

    def describe(self) -> str:
        return f"disconnect {self.leg_label} from {self.relationship}"


#: every edit verb, keyed by its wire ``kind``
EDIT_KINDS: dict[str, type[SchemaEdit]] = {
    edit_class.kind: edit_class
    for edit_class in (
        AddAttribute,
        DropAttribute,
        RenameAttribute,
        AddClass,
        DropClass,
        AddRelationship,
        DropRelationship,
        RetargetRelationship,
        ChangeKey,
        ChangeCardinality,
        SetCategoryParents,
        AddParticipation,
        DropParticipation,
    )
}


def edit_from_payload(data: dict[str, Any]) -> SchemaEdit:
    """Parse the wire/event payload form back into a typed edit."""
    if not isinstance(data, dict):
        raise SchemaError(f"schema edit must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    edit_class = EDIT_KINDS.get(kind)
    if edit_class is None:
        known = ", ".join(sorted(EDIT_KINDS))
        raise SchemaError(f"unknown schema-edit kind {kind!r} (known: {known})")
    try:
        return edit_class.from_payload(data)
    except KeyError as exc:
        raise SchemaError(
            f"schema edit {kind!r} payload missing key {exc}"
        ) from exc


__all__ = [
    "AddAttribute",
    "AddClass",
    "AddParticipation",
    "AddRelationship",
    "ChangeCardinality",
    "ChangeKey",
    "DropAttribute",
    "DropClass",
    "DropParticipation",
    "DropRelationship",
    "EDIT_KINDS",
    "EditDelta",
    "RenameAttribute",
    "RetargetRelationship",
    "SchemaEdit",
    "SetCategoryParents",
    "edit_from_payload",
]
