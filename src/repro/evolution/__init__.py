"""Incremental schema evolution: typed edits with localized repair.

Component schemas are not frozen once analysis begins.  A
:class:`~repro.evolution.edits.SchemaEdit` applied through
:meth:`AnalysisSession.apply_edit <repro.equivalence.session.AnalysisSession.apply_edit>`
enters the kernel as a first-class ``evolution.apply_edit`` event and
propagates as *localized repair* through every downstream layer — the
equivalence registry, the memoized OCS/ACS views, the assertion network's
support index, the cluster lattice and integrated schema, and the
federation plan cache — instead of forcing a full re-integration.  The
repair is pinned against a from-scratch oracle
(:mod:`repro.baselines.evolution_baselines`): incremental and rebuilt
sessions must agree bitwise on their ``state_payload`` fingerprints.

See ``docs/EVOLUTION.md`` for the vocabulary and the repair pipeline.
"""

from repro.evolution.edits import (
    EDIT_KINDS,
    AddAttribute,
    AddClass,
    AddParticipation,
    AddRelationship,
    ChangeCardinality,
    ChangeKey,
    DropAttribute,
    DropClass,
    DropParticipation,
    DropRelationship,
    EditDelta,
    RenameAttribute,
    RetargetRelationship,
    SchemaEdit,
    SetCategoryParents,
    edit_from_payload,
)
from repro.evolution.repair import (
    EditOutcome,
    RepairScope,
    affected_facts,
    scoped_repropagation,
)

__all__ = [
    "AddAttribute",
    "AddClass",
    "AddParticipation",
    "AddRelationship",
    "ChangeCardinality",
    "ChangeKey",
    "DropAttribute",
    "DropClass",
    "DropParticipation",
    "DropRelationship",
    "EDIT_KINDS",
    "EditDelta",
    "EditOutcome",
    "RenameAttribute",
    "RepairScope",
    "RetargetRelationship",
    "SchemaEdit",
    "SetCategoryParents",
    "affected_facts",
    "edit_from_payload",
    "scoped_repropagation",
]
