"""Rendering of ECR schemas as ASCII diagrams and Graphviz DOT.

The paper's Figures 3-5 draw schemas as boxes (entity sets), boxes under
IS-A arcs (categories) and diamonds (relationship sets).  We reproduce the
same information in two textual forms:

* :func:`ascii_diagram` — a framed, sectioned listing suitable for a
  terminal, used by the examples and the EXPERIMENTS record; and
* :func:`dot_diagram` — Graphviz DOT source for users who want a rendered
  picture (the future-work "graphical interface" substitute).
"""

from __future__ import annotations

from repro.ecr.objects import ObjectClass
from repro.ecr.schema import Schema


def ascii_diagram(schema: Schema) -> str:
    """Render the schema as a framed ASCII listing.

    Entity sets, categories (with their parent arcs) and relationship sets
    (with their legs and cardinalities) are listed in insertion order with
    their attributes; key attributes are starred.
    """
    lines: list[str] = []
    title = f" SCHEMA {schema.name} "
    lines.append("+" + title.center(58, "-") + "+")
    for entity in schema.entity_sets():
        lines.append(_box_line(f"[E] {entity.name}"))
        lines.extend(_attribute_lines(entity))
    for category in schema.categories():
        arrow = " , ".join(category.parents)
        lines.append(_box_line(f"[C] {category.name}  --isa-->  {arrow}"))
        lines.extend(_attribute_lines(category))
    for relationship in schema.relationship_sets():
        lines.append(_box_line(f"<R> {relationship.name}"))
        lines.extend(_attribute_lines(relationship))
        for participation in relationship.participations:
            role = f" as {participation.role}" if participation.role else ""
            lines.append(
                _box_line(
                    f"      -- {participation.object_name}"
                    f" {participation.cardinality}{role}"
                )
            )
    lines.append("+" + "-" * 58 + "+")
    return "\n".join(lines) + "\n"


def _box_line(text: str) -> str:
    return "| " + text.ljust(57)[:57] + "|"


def _attribute_lines(structure: ObjectClass) -> list[str]:
    lines = []
    for attribute in structure.attributes:
        star = "*" if attribute.is_key else " "
        lines.append(_box_line(f"     {star}{attribute.name} : {attribute.domain}"))
    return lines


def dot_diagram(schema: Schema) -> str:
    """Render the schema as Graphviz DOT source.

    Entity sets are boxes, categories are rounded boxes connected to their
    parents by IS-A edges, relationship sets are diamonds connected to their
    participants by edges labelled with the cardinality constraint.
    """
    lines = [f'digraph "{schema.name}" {{', "  rankdir=BT;"]
    for entity in schema.entity_sets():
        label = _dot_label(entity)
        lines.append(f'  "{entity.name}" [shape=box, label="{label}"];')
    for category in schema.categories():
        label = _dot_label(category)
        lines.append(
            f'  "{category.name}" [shape=box, style=rounded, label="{label}"];'
        )
        for parent in category.parents:
            lines.append(f'  "{category.name}" -> "{parent}" [label="isa"];')
    for relationship in schema.relationship_sets():
        label = _dot_label(relationship)
        lines.append(f'  "{relationship.name}" [shape=diamond, label="{label}"];')
        for participation in relationship.participations:
            edge_label = str(participation.cardinality)
            if participation.role:
                edge_label += f" {participation.role}"
            lines.append(
                f'  "{relationship.name}" -> "{participation.object_name}"'
                f' [dir=none, label="{edge_label}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dot_label(structure: ObjectClass) -> str:
    parts = [structure.name]
    for attribute in structure.attributes:
        star = "*" if attribute.is_key else ""
        parts.append(f"{star}{attribute.name}")
    return "\\n".join(parts)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Lay two ASCII diagrams side by side (used by the examples)."""
    left_lines = left.rstrip("\n").splitlines()
    right_lines = right.rstrip("\n").splitlines()
    width = max((len(line) for line in left_lines), default=0)
    height = max(len(left_lines), len(right_lines))
    out = []
    for index in range(height):
        first = left_lines[index] if index < len(left_lines) else ""
        second = right_lines[index] if index < len(right_lines) else ""
        out.append(first.ljust(width + gap) + second)
    return "\n".join(out) + "\n"
