"""The ECR schema container.

A :class:`Schema` holds the entity sets, categories and relationship sets of
one component schema (or of the integrated schema).  It preserves insertion
order — the tool's screens list structures in the order the DDA entered them
— and enforces a single flat namespace across all structure kinds, matching
Screen 3 where every structure row has one name and a type column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.ecr.attributes import Attribute, AttributeRef, check_identifier
from repro.ecr.objects import Category, EntitySet, ObjectClass
from repro.ecr.relationships import RelationshipSet
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


@dataclass(frozen=True, order=True)
class ObjectRef:
    """Fully qualified reference to a structure: ``schema.object``.

    This is the unit assertions are made over — Screen 8 displays exactly
    these pairs (``sc1.Student``, ``sc2.Grad_student``).
    """

    schema: str
    object_name: str

    def __str__(self) -> str:
        return f"{self.schema}.{self.object_name}"

    @classmethod
    def parse(cls, text: str) -> "ObjectRef":
        """Parse ``"sc1.Student"`` into an :class:`ObjectRef`."""
        parts = text.split(".")
        if len(parts) != 2 or not all(parts):
            raise SchemaError(
                f"object reference must be schema.object, got {text!r}"
            )
        return cls(parts[0], parts[1])

    def attribute(self, name: str) -> AttributeRef:
        """Qualify an attribute of this object."""
        return AttributeRef(self.schema, self.object_name, name)


@dataclass
class Schema:
    """An ECR schema: a named collection of structures.

    All structures (entity sets, categories, relationship sets) share one
    namespace.  Dedicated accessors expose each kind in insertion order.
    """

    name: str
    description: str = ""
    _structures: dict[str, ObjectClass] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_identifier(self.name, "schema")

    # -- membership ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._structures

    def __len__(self) -> int:
        return len(self._structures)

    def __iter__(self) -> Iterator[ObjectClass]:
        return iter(self._structures.values())

    def structure_names(self) -> list[str]:
        """All structure names in insertion order."""
        return list(self._structures)

    def get(self, name: str) -> ObjectClass:
        """Fetch any structure by name.

        Raises
        ------
        UnknownNameError
            If the schema has no structure of that name.
        """
        try:
            return self._structures[name]
        except KeyError:
            raise UnknownNameError("structure", name, self.name) from None

    def entity_sets(self) -> list[EntitySet]:
        """All entity sets, in insertion order."""
        return [s for s in self._structures.values() if isinstance(s, EntitySet)]

    def categories(self) -> list[Category]:
        """All categories, in insertion order."""
        return [s for s in self._structures.values() if isinstance(s, Category)]

    def relationship_sets(self) -> list[RelationshipSet]:
        """All relationship sets, in insertion order."""
        return [
            s for s in self._structures.values() if isinstance(s, RelationshipSet)
        ]

    def object_classes(self) -> list[ObjectClass]:
        """Entity sets and categories (the things assertions range over)."""
        return [
            s
            for s in self._structures.values()
            if not isinstance(s, RelationshipSet)
        ]

    def entity_set(self, name: str) -> EntitySet:
        """Fetch an entity set by name, checking the kind."""
        structure = self.get(name)
        if not isinstance(structure, EntitySet):
            raise UnknownNameError("entity set", name, self.name)
        return structure

    def category(self, name: str) -> Category:
        """Fetch a category by name, checking the kind."""
        structure = self.get(name)
        if not isinstance(structure, Category):
            raise UnknownNameError("category", name, self.name)
        return structure

    def relationship_set(self, name: str) -> RelationshipSet:
        """Fetch a relationship set by name, checking the kind."""
        structure = self.get(name)
        if not isinstance(structure, RelationshipSet):
            raise UnknownNameError("relationship set", name, self.name)
        return structure

    def object_class(self, name: str) -> ObjectClass:
        """Fetch an entity set or category by name (not a relationship set)."""
        structure = self.get(name)
        if isinstance(structure, RelationshipSet):
            raise UnknownNameError("object class", name, self.name)
        return structure

    # -- mutation --------------------------------------------------------------

    def add(self, structure: ObjectClass) -> ObjectClass:
        """Add a structure of any kind, enforcing the shared namespace."""
        if structure.name in self._structures:
            raise DuplicateNameError(
                structure.kind_label(), structure.name, self.name
            )
        self._structures[structure.name] = structure
        return structure

    def add_all(self, structures: Iterable[ObjectClass]) -> None:
        """Add several structures; fails atomically before any insertion."""
        pending = list(structures)
        names = [structure.name for structure in pending]
        duplicates = set(names) & set(self._structures)
        if duplicates or len(set(names)) != len(names):
            clash = sorted(duplicates) or sorted(
                name for name in names if names.count(name) > 1
            )
            raise DuplicateNameError("structure", clash[0], self.name)
        for structure in pending:
            self._structures[structure.name] = structure

    def remove(self, name: str) -> ObjectClass:
        """Remove and return the structure called ``name``.

        Removal is refused while other structures still refer to it (category
        parents or relationship participations), so a schema can never hold
        dangling references.
        """
        removed = self.get(name)
        dependents = self._dependents(name)
        if dependents:
            raise SchemaError(
                f"cannot remove {name!r} from schema {self.name!r}: "
                f"still referenced by {', '.join(sorted(dependents))}"
            )
        del self._structures[name]
        return removed

    def position(self, name: str) -> int:
        """The structure's index in the schema's declaration order."""
        self.get(name)
        return list(self._structures).index(name)

    def move(self, name: str, position: int) -> None:
        """Reorder one structure to ``position`` in declaration order.

        Declaration order is semantically inert but part of the canonical
        JSON form, so edits that restore a dropped structure use this to
        reproduce the original schema bytes (and fingerprint) exactly.
        """
        self.get(name)
        names = [existing for existing in self._structures if existing != name]
        position = max(0, min(position, len(names)))
        names.insert(position, name)
        self._structures = {key: self._structures[key] for key in names}

    def rename(self, old_name: str, new_name: str) -> None:
        """Rename a structure, updating every reference to it."""
        structure = self.get(old_name)
        if new_name == old_name:
            return
        if new_name in self._structures:
            raise DuplicateNameError("structure", new_name, self.name)
        check_identifier(new_name, structure.kind_label())
        rebuilt: dict[str, ObjectClass] = {}
        for name, existing in self._structures.items():
            rebuilt[new_name if name == old_name else name] = existing
        structure.name = new_name
        self._structures = rebuilt
        for category in self.categories():
            if old_name in category.parents:
                category.parents[category.parents.index(old_name)] = new_name
        for relationship in self.relationship_sets():
            relationship.replace_participant(old_name, new_name)

    def _dependents(self, name: str) -> set[str]:
        """Structures that reference ``name`` as parent or participant."""
        dependents: set[str] = set()
        for category in self.categories():
            if name in category.parents and category.name != name:
                dependents.add(category.name)
        for relationship in self.relationship_sets():
            if relationship.connects(name):
                dependents.add(relationship.name)
        return dependents

    # -- references ---------------------------------------------------------

    def ref(self, object_name: str) -> ObjectRef:
        """Qualified reference to a structure of this schema (checked)."""
        self.get(object_name)
        return ObjectRef(self.name, object_name)

    def attribute_refs(self, object_name: str) -> list[AttributeRef]:
        """Qualified references to all attributes of one structure."""
        structure = self.get(object_name)
        return [
            AttributeRef(self.name, object_name, attribute.name)
            for attribute in structure.attributes
        ]

    def all_attribute_refs(self) -> list[AttributeRef]:
        """Qualified references to every attribute in the schema."""
        refs: list[AttributeRef] = []
        for structure in self:
            refs.extend(self.attribute_refs(structure.name))
        return refs

    def resolve_attribute(self, ref: AttributeRef) -> Attribute:
        """Dereference an :class:`AttributeRef` belonging to this schema."""
        if ref.schema != self.name:
            raise UnknownNameError("schema", ref.schema, self.name)
        return self.get(ref.object_name).attribute(ref.attribute)

    # -- statistics -----------------------------------------------------------

    def attribute_count(self) -> int:
        """Total number of attributes across all structures."""
        return sum(len(structure.attributes) for structure in self)

    def summary(self) -> str:
        """One-line size summary used by the tool's status areas."""
        return (
            f"schema {self.name}: {len(self.entity_sets())} entities, "
            f"{len(self.categories())} categories, "
            f"{len(self.relationship_sets())} relationships, "
            f"{self.attribute_count()} attributes"
        )

    def copy(self, new_name: str | None = None) -> "Schema":
        """Deep-copy the schema, optionally under a new name."""
        from repro.ecr.json_io import schema_from_dict, schema_to_dict

        clone = schema_from_dict(schema_to_dict(self))
        if new_name is not None:
            check_identifier(new_name, "schema")
            clone.name = new_name
        return clone

    def __str__(self) -> str:
        return self.summary()
