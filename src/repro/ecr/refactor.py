"""Schema-modification operations for the schema-analysis phase.

The paper (Phase 2): *"In some cases, schema constructs in one component
schema may need to be changed to become more compatible with equivalent
schema constructs in other component schemas.  For example, an attribute in
one component schema may correspond to an entity type in another.  One of
the two representations must be chosen so that equivalent concepts can be
integrated."*  The tool leaves these changes to the DDA ("by going back to
the first phase"); this module provides the standard representation
changes as safe, validated operations:

* :func:`promote_attribute_to_entity` — attribute → entity set plus a
  connecting relationship set (Department name becomes a Department
  entity);
* :func:`demote_entity_to_attribute` — the inverse, for a single-attribute
  entity set reached by one binary relationship;
* :func:`reify_relationship` — relationship set → entity set plus one
  binary relationship per original leg (the future-work *marriage*
  example: a marriage relationship in one schema, a marriage entity in
  another).
"""

from __future__ import annotations

from repro.ecr.attributes import Attribute, check_identifier
from repro.ecr.objects import EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import SchemaError


def promote_attribute_to_entity(
    schema: Schema,
    object_name: str,
    attribute_name: str,
    entity_name: str | None = None,
    relationship_name: str | None = None,
) -> EntitySet:
    """Turn ``object.attribute`` into its own entity set.

    The attribute is removed from its owner; a new entity set named
    ``entity_name`` (default: the attribute name) is created whose single
    key attribute is the promoted one; and a relationship set
    ``relationship_name`` (default ``Has_<attribute>``) connects the owner
    ``(1,1)`` to the new entity ``(0,n)`` — each owner instance has one
    value, each value may describe many owners.

    Returns the new entity set.
    """
    owner = schema.object_class(object_name)
    attribute = owner.attribute(attribute_name)
    entity_name = entity_name or attribute_name
    relationship_name = relationship_name or f"Has_{attribute_name}"
    check_identifier(entity_name, "entity set")
    check_identifier(relationship_name, "relationship set")
    if entity_name in schema:
        raise SchemaError(f"{entity_name!r} already exists in {schema.name!r}")
    if relationship_name in schema:
        raise SchemaError(
            f"{relationship_name!r} already exists in {schema.name!r}"
        )
    owner.remove_attribute(attribute_name)
    entity = EntitySet(
        entity_name,
        [Attribute(attribute.name, attribute.domain, True)],
        f"promoted from {object_name}.{attribute_name}",
    )
    schema.add(entity)
    schema.add(
        RelationshipSet(
            relationship_name,
            participations=[
                Participation(object_name, CardinalityConstraint(1, 1)),
                Participation(entity_name, CardinalityConstraint(0, -1)),
            ],
        )
    )
    return entity


def demote_entity_to_attribute(
    schema: Schema,
    entity_name: str,
    relationship_name: str,
) -> Attribute:
    """Fold a single-attribute entity set back into its partner.

    ``relationship_name`` must be a binary relationship connecting the
    entity to exactly one other object class; that class absorbs the
    entity's attribute.  The entity set must not be referenced by anything
    else (no categories, no other relationship sets).

    Returns the attribute created on the absorbing class.
    """
    entity = schema.entity_set(entity_name)
    if len(entity.attributes) != 1:
        raise SchemaError(
            f"{entity_name!r} has {len(entity.attributes)} attributes; "
            "only single-attribute entity sets can be demoted"
        )
    relationship = schema.relationship_set(relationship_name)
    if not relationship.connects(entity_name) or relationship.degree != 2:
        raise SchemaError(
            f"{relationship_name!r} must be a binary relationship "
            f"connecting {entity_name!r}"
        )
    others = [
        leg.object_name
        for leg in relationship.participations
        if leg.object_name != entity_name
    ]
    if len(others) != 1:
        raise SchemaError(
            f"{relationship_name!r} does not connect {entity_name!r} "
            "to exactly one partner"
        )
    partner = schema.object_class(others[0])
    source = entity.attributes[0]
    absorbed = Attribute(source.name, source.domain, False)
    # remove the relationship first so the entity becomes unreferenced
    schema.remove(relationship_name)
    try:
        schema.remove(entity_name)
    except SchemaError:
        # restore the relationship before failing: the entity is still used
        schema.add(relationship)
        raise
    partner.add_attribute(absorbed)
    return absorbed


def reify_relationship(
    schema: Schema,
    relationship_name: str,
    entity_name: str | None = None,
) -> EntitySet:
    """Replace a relationship set by an entity set plus per-leg links.

    The new entity set (default name: the relationship's) owns the
    relationship's attributes; for every original leg a binary relationship
    ``<entity>_<leg>`` connects the new entity ``(1,1)`` to the original
    participant with the original constraint.  This converts a *marriage*
    relationship into a *Marriage* entity so it can be integrated with a
    schema that models marriages as entities.
    """
    relationship = schema.relationship_set(relationship_name)
    entity_name = entity_name or relationship_name
    check_identifier(entity_name, "entity set")
    legs = list(relationship.participations)
    attributes = [
        Attribute(a.name, a.domain, a.is_key) for a in relationship.attributes
    ]
    schema.remove(relationship_name)
    if entity_name in schema:
        schema.add(relationship)  # restore before failing
        raise SchemaError(f"{entity_name!r} already exists in {schema.name!r}")
    entity = EntitySet(
        entity_name, attributes, f"reified from relationship {relationship_name}"
    )
    schema.add(entity)
    for leg in legs:
        schema.add(
            RelationshipSet(
                f"{entity_name}_{leg.label}",
                participations=[
                    Participation(entity_name, CardinalityConstraint(1, 1)),
                    Participation(leg.object_name, leg.cardinality, leg.role),
                ],
            )
        )
    return entity
