"""Attributes of ECR object classes and relationship sets.

An attribute is what the paper's Screen 5 collects: a name, a domain and a
key flag.  Integrated schemas additionally contain *derived* attributes
(``D_`` prefix) that record the component attributes of the original schemas
they were merged from (Screens 12a/12b); the provenance lives on
:class:`repro.integration.result.DerivedAttribute`, which wraps this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ecr.domains import BUILTIN_DOMAINS, Domain, domain_from_name
from repro.errors import SchemaError


def check_identifier(name: str, kind: str) -> str:
    """Validate a schema/object/attribute identifier.

    Identifiers follow the paper's examples: they start with a letter and
    contain letters, digits and underscores (``Grad_student``, ``D_or_M``).
    Returns the name unchanged so it can be used inline.
    """
    if not name:
        raise SchemaError(f"{kind} name must not be empty")
    if not (name[0].isalpha() or name[0] == "_"):
        raise SchemaError(f"{kind} name {name!r} must start with a letter")
    body = name.replace("_", "")
    if body and not body.isalnum():
        raise SchemaError(
            f"{kind} name {name!r} may contain only letters, digits and underscores"
        )
    return name


@dataclass(frozen=True)
class Attribute:
    """A single-valued attribute of an object class or relationship set.

    Parameters
    ----------
    name:
        Attribute identifier, unique within its owner.
    domain:
        Value space; either a :class:`~repro.ecr.domains.Domain` or a domain
        spelling such as ``"char"`` (converted on construction).
    is_key:
        Whether the attribute uniquely identifies members of its owner —
        the ``Key (y/n)`` column of Screen 5.
    description:
        Optional free-text note kept for the data dictionary.
    """

    name: str
    domain: Domain = field(default_factory=lambda: BUILTIN_DOMAINS["char"])
    is_key: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        check_identifier(self.name, "attribute")
        if isinstance(self.domain, str):  # convenience: accept spellings
            object.__setattr__(self, "domain", domain_from_name(self.domain))
        if not isinstance(self.domain, Domain):
            raise SchemaError(
                f"attribute {self.name!r} domain must be a Domain, "
                f"got {type(self.domain).__name__}"
            )

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute under a different name."""
        return replace(self, name=new_name)

    def as_non_key(self) -> "Attribute":
        """Return a copy with the key flag cleared (used when an attribute
        is inherited into a context where it no longer identifies members)."""
        if not self.is_key:
            return self
        return replace(self, is_key=False)

    def __str__(self) -> str:
        key = " key" if self.is_key else ""
        return f"{self.name} : {self.domain}{key}"


@dataclass(frozen=True, order=True)
class AttributeRef:
    """Fully qualified reference to an attribute: ``schema.object.attribute``.

    This is the unit the equivalence registry works over — Screen 7 displays
    exactly these triples (``sc1.Student.Name``).
    """

    schema: str
    object_name: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.schema}.{self.object_name}.{self.attribute}"

    @classmethod
    def parse(cls, text: str) -> "AttributeRef":
        """Parse ``"sc1.Student.Name"`` into an :class:`AttributeRef`."""
        parts = text.split(".")
        if len(parts) != 3 or not all(parts):
            raise SchemaError(
                f"attribute reference must be schema.object.attribute, got {text!r}"
            )
        return cls(*parts)

    @property
    def owner(self) -> tuple[str, str]:
        """The ``(schema, object)`` pair that owns the attribute."""
        return (self.schema, self.object_name)
