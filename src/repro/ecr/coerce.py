"""Uniform reference coercion shared by the analysis engines.

Every public entry point that takes an :class:`~repro.ecr.schema.ObjectRef`
or :class:`~repro.ecr.attributes.AttributeRef` also accepts the dotted
string form (``"schema.object"`` / ``"schema.object.attribute"``).  The
:class:`~repro.equivalence.registry.EquivalenceRegistry` and
:class:`~repro.assertions.network.AssertionNetwork` both route through this
one helper so the accepted spellings cannot drift apart per method.
"""

from __future__ import annotations

from repro.ecr.attributes import AttributeRef
from repro.ecr.schema import ObjectRef


def coerce_object_ref(value: ObjectRef | str) -> ObjectRef:
    """``"sc1.Student"`` or an :class:`ObjectRef`, as an :class:`ObjectRef`."""
    if isinstance(value, str):
        return ObjectRef.parse(value)
    return value


def coerce_attribute_ref(value: AttributeRef | str) -> AttributeRef:
    """``"sc1.Student.Name"`` or an :class:`AttributeRef`, coerced."""
    if isinstance(value, str):
        return AttributeRef.parse(value)
    return value
