"""JSON (dict) serialisation of ECR schemas.

The dict form is the interchange format between the library, the interactive
tool's save files and the benchmark harness.  ``schema_from_dict`` is the
exact inverse of ``schema_to_dict``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.ecr.attributes import Attribute
from repro.ecr.domains import Domain, DomainKind
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import SchemaError


def domain_to_dict(domain: Domain) -> dict[str, Any]:
    """Serialise a domain; omits unset refinements for compactness."""
    data: dict[str, Any] = {"kind": domain.kind.value}
    if domain.length is not None:
        data["length"] = domain.length
    if domain.values:
        data["values"] = list(domain.values)
    if domain.low is not None:
        data["low"] = domain.low
    if domain.high is not None:
        data["high"] = domain.high
    if domain.unit:
        data["unit"] = domain.unit
    return data


def domain_from_dict(data: dict[str, Any]) -> Domain:
    """Inverse of :func:`domain_to_dict`."""
    try:
        kind = DomainKind(data["kind"])
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"bad domain data {data!r}") from exc
    return Domain(
        kind,
        length=data.get("length"),
        values=tuple(data.get("values", ())),
        low=data.get("low"),
        high=data.get("high"),
        unit=data.get("unit"),
    )


def attribute_to_dict(attribute: Attribute) -> dict[str, Any]:
    data: dict[str, Any] = {
        "name": attribute.name,
        "domain": domain_to_dict(attribute.domain),
    }
    if attribute.is_key:
        data["is_key"] = True
    if attribute.description:
        data["description"] = attribute.description
    return data


def attribute_from_dict(data: dict[str, Any]) -> Attribute:
    return Attribute(
        data["name"],
        domain_from_dict(data.get("domain", {"kind": "char"})),
        bool(data.get("is_key", False)),
        data.get("description", ""),
    )


def structure_to_dict(structure: Any) -> dict[str, Any]:
    """Serialise one structure (entity set, category or relationship set)."""
    entry: dict[str, Any] = {
        "name": structure.name,
        "kind": structure.kind.value,
        "attributes": [
            attribute_to_dict(attribute) for attribute in structure.attributes
        ],
    }
    if structure.description:
        entry["description"] = structure.description
    if isinstance(structure, Category):
        entry["parents"] = list(structure.parents)
    elif isinstance(structure, RelationshipSet):
        entry["participations"] = [
            participation_to_dict(participation)
            for participation in structure.participations
        ]
    return entry


def structure_from_dict(entry: dict[str, Any]) -> Any:
    """Inverse of :func:`structure_to_dict`."""
    kind = entry.get("kind")
    try:
        attributes = [
            attribute_from_dict(attr) for attr in entry.get("attributes", ())
        ]
        common = {
            "name": entry["name"],
            "attributes": attributes,
            "description": entry.get("description", ""),
        }
    except KeyError as exc:
        raise SchemaError(f"structure data missing {exc}") from exc
    if kind == "e":
        return EntitySet(**common)
    if kind == "c":
        return Category(**common, parents=list(entry.get("parents", ())))
    if kind == "r":
        participations = [
            participation_from_dict(leg)
            for leg in entry.get("participations", ())
        ]
        return RelationshipSet(**common, participations=participations)
    raise SchemaError(f"unknown structure kind {kind!r}")


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialise a schema to plain dicts/lists suitable for ``json.dump``."""
    structures = [structure_to_dict(structure) for structure in schema]
    data: dict[str, Any] = {"name": schema.name, "structures": structures}
    if schema.description:
        data["description"] = schema.description
    return data


def schema_from_dict(data: dict[str, Any]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        schema = Schema(data["name"], data.get("description", ""))
    except KeyError as exc:
        raise SchemaError(f"schema data missing {exc}") from exc
    for entry in data.get("structures", ()):
        schema.add(structure_from_dict(entry))
    return schema


def schema_to_json(schema: Schema, indent: int = 2) -> str:
    """Serialise a schema to a JSON string."""
    return json.dumps(schema_to_dict(schema), indent=indent)


def schema_from_json(text: str) -> Schema:
    """Parse a schema from a JSON string."""
    return schema_from_dict(json.loads(text))


def participation_to_dict(participation: Participation) -> dict[str, Any]:
    data: dict[str, Any] = {
        "object": participation.object_name,
        "min": participation.cardinality.min,
        "max": participation.cardinality.max,
    }
    if participation.role:
        data["role"] = participation.role
    return data


def participation_from_dict(data: dict[str, Any]) -> Participation:
    return Participation(
        data["object"],
        CardinalityConstraint(data.get("min", 0), data.get("max", -1)),
        data.get("role", ""),
    )
