"""Well-formedness validation of ECR schemas.

The tool keeps the DDA from building malformed schemas interactively; the
library equivalent is a validator that walks a schema and reports issues.
Errors are structural faults (dangling references, cycles); warnings are
design smells the schema-analysis phase would flag for DDA attention
(entity sets without keys, unit mismatches on equally named attributes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ecr.schema import Schema
from repro.ecr.walk import superclass_closure
from repro.errors import SchemaError, ValidationError


class Severity(enum.Enum):
    """Whether an issue makes the schema unusable or merely suspicious."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ValidationIssue:
    """One finding of the validator, tied to the structure it concerns."""

    severity: Severity
    structure: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.structure}: {self.message}"

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR


def validate_schema(schema: Schema) -> list[ValidationIssue]:
    """Validate a schema, returning all issues found (possibly none).

    Checks performed:

    * category parents exist and are object classes, not relationship sets;
    * the IS-A graph is acyclic;
    * relationship participations reference existing object classes;
    * relationship sets have at least two legs;
    * a category does not redeclare an inherited attribute name;
    * entity sets carry at least one key attribute (warning);
    * equally named attributes across a generalisation edge have compatible
      domains (warning).
    """
    issues: list[ValidationIssue] = []
    issues.extend(_check_category_parents(schema))
    issues.extend(_check_isa_acyclic(schema))
    issues.extend(_check_relationships(schema))
    issues.extend(_check_attribute_shadowing(schema))
    issues.extend(_check_entity_keys(schema))
    return issues


def assert_valid(schema: Schema) -> None:
    """Raise :class:`~repro.errors.ValidationError` on any *error* issue."""
    errors = [issue for issue in validate_schema(schema) if issue.is_error]
    if errors:
        raise ValidationError(errors)


def is_valid(schema: Schema) -> bool:
    """Whether the schema has no error-severity issues."""
    return not any(issue.is_error for issue in validate_schema(schema))


def _check_category_parents(schema: Schema) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    object_names = {structure.name for structure in schema.object_classes()}
    relationship_names = {rel.name for rel in schema.relationship_sets()}
    for category in schema.categories():
        for parent in category.parents:
            if parent in relationship_names:
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        category.name,
                        f"parent {parent!r} is a relationship set, "
                        "not an object class",
                    )
                )
            elif parent not in object_names:
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        category.name,
                        f"parent {parent!r} does not exist",
                    )
                )
    return issues


def _check_isa_acyclic(schema: Schema) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    object_names = {structure.name for structure in schema.object_classes()}
    for category in schema.categories():
        if any(parent not in object_names for parent in category.parents):
            continue  # dangling parents reported separately
        try:
            superclass_closure(schema, category.name)
        except SchemaError as exc:
            issues.append(
                ValidationIssue(Severity.ERROR, category.name, str(exc))
            )
    return issues


def _check_relationships(schema: Schema) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    object_names = {structure.name for structure in schema.object_classes()}
    for relationship in schema.relationship_sets():
        if relationship.degree < 2:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    relationship.name,
                    f"relationship set must connect at least two legs, "
                    f"has {relationship.degree}",
                )
            )
        for participation in relationship.participations:
            if participation.object_name not in object_names:
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        relationship.name,
                        f"participant {participation.object_name!r} "
                        "does not exist",
                    )
                )
    return issues


def _check_attribute_shadowing(schema: Schema) -> list[ValidationIssue]:
    """A category redeclaring an inherited attribute name is ambiguous."""
    issues: list[ValidationIssue] = []
    object_names = {structure.name for structure in schema.object_classes()}
    for category in schema.categories():
        if any(parent not in object_names for parent in category.parents):
            continue
        try:
            ancestors = superclass_closure(schema, category.name)
        except SchemaError:
            continue  # cycle reported separately
        inherited: set[str] = set()
        for ancestor in ancestors:
            inherited.update(schema.object_class(ancestor).attribute_names())
        for attribute in category.attributes:
            if attribute.name in inherited:
                issues.append(
                    ValidationIssue(
                        Severity.WARNING,
                        category.name,
                        f"attribute {attribute.name!r} shadows an "
                        "inherited attribute",
                    )
                )
    return issues


def _check_entity_keys(schema: Schema) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for entity in schema.entity_sets():
        if not entity.key_attributes():
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    entity.name,
                    "entity set has no key attribute",
                )
            )
    return issues
