"""Traversal utilities over the IS-A structure of an ECR schema.

Categories define a directed acyclic graph: each category points at its
parent object classes.  Integration builds and browses these lattices, and
attribute inheritance follows them, so the traversals live in one place.
"""

from __future__ import annotations

from typing import Iterable

from repro.ecr.attributes import Attribute
from repro.ecr.objects import Category
from repro.ecr.schema import Schema
from repro.errors import SchemaError


def direct_parents(schema: Schema, name: str) -> list[str]:
    """Parent object classes of ``name`` (empty for entity sets)."""
    structure = schema.object_class(name)
    if isinstance(structure, Category):
        return list(structure.parents)
    return []


def direct_children(schema: Schema, name: str) -> list[str]:
    """Categories directly defined over ``name``, in insertion order."""
    schema.object_class(name)
    return [
        category.name
        for category in schema.categories()
        if name in category.parents
    ]


def superclass_closure(schema: Schema, name: str) -> list[str]:
    """All ancestors of ``name`` following parent links, nearest first.

    Raises
    ------
    SchemaError
        If the parent links contain a cycle (a malformed schema).
    """
    seen: list[str] = []
    visited = {name}
    frontier = list(direct_parents(schema, name))
    while frontier:
        current = frontier.pop(0)
        if current == name:
            raise SchemaError(f"IS-A cycle through {name!r} in {schema.name!r}")
        if current in visited:
            continue
        visited.add(current)
        seen.append(current)
        frontier.extend(direct_parents(schema, current))
    return seen


def subclass_closure(schema: Schema, name: str) -> list[str]:
    """All descendants of ``name`` following child links, nearest first."""
    seen: list[str] = []
    frontier = direct_children(schema, name)
    visited = {name}
    while frontier:
        current = frontier.pop(0)
        if current in visited:
            continue
        visited.add(current)
        seen.append(current)
        frontier.extend(
            child for child in direct_children(schema, current) if child not in visited
        )
    return seen


def inherited_attributes(schema: Schema, name: str) -> list[Attribute]:
    """The full attribute set of an object class, inherited ones included.

    A category inherits the attributes of the object classes it is defined
    over (Section 2 of the paper).  Locally declared attributes come first;
    inherited ones follow in ancestor order, with the key flag cleared (a
    parent's key need not identify the subset) and duplicates by name
    suppressed — a local declaration shadows an inherited one.
    """
    structure = schema.object_class(name)
    collected: list[Attribute] = list(structure.attributes)
    names = {attribute.name for attribute in collected}
    for ancestor_name in superclass_closure(schema, name):
        ancestor = schema.object_class(ancestor_name)
        for attribute in ancestor.attributes:
            if attribute.name not in names:
                names.add(attribute.name)
                collected.append(attribute.as_non_key())
    return collected


def root_classes(schema: Schema) -> list[str]:
    """Object classes with no parents (the entity sets), in order."""
    return [entity.name for entity in schema.entity_sets()]


def leaf_classes(schema: Schema) -> list[str]:
    """Object classes with no children, in insertion order."""
    with_children = set()
    for category in schema.categories():
        with_children.update(category.parents)
    return [
        structure.name
        for structure in schema.object_classes()
        if structure.name not in with_children
    ]


def isa_depth(schema: Schema, name: str) -> int:
    """Length of the longest parent chain above ``name`` (0 for entity sets)."""
    parents = direct_parents(schema, name)
    if not parents:
        return 0
    return 1 + max(isa_depth(schema, parent) for parent in parents)


def isa_edges(schema: Schema) -> list[tuple[str, str]]:
    """All (child, parent) IS-A edges of the schema, in insertion order."""
    edges: list[tuple[str, str]] = []
    for category in schema.categories():
        for parent in category.parents:
            edges.append((category.name, parent))
    return edges


def topological_order(schema: Schema) -> list[str]:
    """Object classes ordered parents-before-children.

    Raises
    ------
    SchemaError
        If the IS-A graph contains a cycle.
    """
    order: list[str] = []
    permanent: set[str] = set()
    in_progress: set[str] = set()

    def visit(name: str) -> None:
        if name in permanent:
            return
        if name in in_progress:
            raise SchemaError(f"IS-A cycle through {name!r} in {schema.name!r}")
        in_progress.add(name)
        for parent in direct_parents(schema, name):
            if parent in {s.name for s in schema.object_classes()}:
                visit(parent)
        in_progress.discard(name)
        permanent.add(name)
        order.append(name)

    for structure in schema.object_classes():
        visit(structure.name)
    return order


def common_ancestors(schema: Schema, names: Iterable[str]) -> list[str]:
    """Ancestors shared by every named object class (each may include itself)."""
    names = list(names)
    if not names:
        return []
    closures = []
    for name in names:
        closure = [name] + superclass_closure(schema, name)
        closures.append(closure)
    shared = set(closures[0])
    for closure in closures[1:]:
        shared &= set(closure)
    return [name for name in closures[0] if name in shared]
