"""Fluent construction of ECR schemas.

The builder mirrors the order in which the tool's collection screens gather
information (Screens 2-5): name the schema, then declare structures, then
attach attributes and participations.  It exists so that examples, workloads
and tests can define schemas compactly::

    schema = (
        SchemaBuilder("sc1")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .entity("Department", attrs=[("Name", "char", True)])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date")],
        )
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ecr.attributes import Attribute
from repro.ecr.domains import Domain, domain_from_name
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import SchemaError

#: An attribute spec: a ready Attribute, a name, a (name, domain) pair or a
#: (name, domain, is_key) triple.  Domains may be spellings or Domain objects.
AttrSpec = Attribute | str | Sequence[object]

#: A participation spec: a ready Participation, an object name, a
#: (object, cardinality) pair or an (object, cardinality, role) triple.
ConnectSpec = Participation | str | Sequence[object]


def make_attribute(spec: AttrSpec) -> Attribute:
    """Normalise an attribute spec into an :class:`Attribute`."""
    if isinstance(spec, Attribute):
        return spec
    if isinstance(spec, str):
        return Attribute(spec)
    parts = list(spec)
    if not 1 <= len(parts) <= 3:
        raise SchemaError(f"attribute spec must have 1-3 fields, got {spec!r}")
    name = parts[0]
    if not isinstance(name, str):
        raise SchemaError(f"attribute name must be a string, got {name!r}")
    domain = parts[1] if len(parts) > 1 else "char"
    if isinstance(domain, str):
        domain = domain_from_name(domain)
    if not isinstance(domain, Domain):
        raise SchemaError(f"bad domain in attribute spec {spec!r}")
    is_key = bool(parts[2]) if len(parts) > 2 else False
    return Attribute(name, domain, is_key)


def make_participation(spec: ConnectSpec) -> Participation:
    """Normalise a participation spec into a :class:`Participation`."""
    if isinstance(spec, Participation):
        return spec
    if isinstance(spec, str):
        return Participation(spec)
    parts = list(spec)
    if not 1 <= len(parts) <= 3:
        raise SchemaError(f"participation spec must have 1-3 fields, got {spec!r}")
    object_name = parts[0]
    if not isinstance(object_name, str):
        raise SchemaError(f"participant name must be a string, got {object_name!r}")
    cardinality = parts[1] if len(parts) > 1 else CardinalityConstraint()
    if isinstance(cardinality, str):
        cardinality = CardinalityConstraint.parse(cardinality)
    elif isinstance(cardinality, tuple):
        cardinality = CardinalityConstraint(*cardinality)
    if not isinstance(cardinality, CardinalityConstraint):
        raise SchemaError(f"bad cardinality in participation spec {spec!r}")
    role = str(parts[2]) if len(parts) > 2 else ""
    return Participation(object_name, cardinality, role)


class SchemaBuilder:
    """Accumulates structures and produces a validated :class:`Schema`."""

    def __init__(self, name: str, description: str = "") -> None:
        self._schema = Schema(name, description)

    def entity(
        self, name: str, attrs: Iterable[AttrSpec] = (), description: str = ""
    ) -> "SchemaBuilder":
        """Declare an entity set with its attributes."""
        attributes = [make_attribute(spec) for spec in attrs]
        self._schema.add(EntitySet(name, attributes, description))
        return self

    def category(
        self,
        name: str,
        of: str | Iterable[str],
        attrs: Iterable[AttrSpec] = (),
        description: str = "",
    ) -> "SchemaBuilder":
        """Declare a category over one parent (``of="Student"``) or several."""
        parents = [of] if isinstance(of, str) else list(of)
        attributes = [make_attribute(spec) for spec in attrs]
        self._schema.add(Category(name, attributes, description, parents=parents))
        return self

    def relationship(
        self,
        name: str,
        connects: Iterable[ConnectSpec],
        attrs: Iterable[AttrSpec] = (),
        description: str = "",
    ) -> "SchemaBuilder":
        """Declare a relationship set with its participations and attributes."""
        participations = [make_participation(spec) for spec in connects]
        if len(participations) < 2:
            raise SchemaError(
                f"relationship set {name!r} must connect at least two legs"
            )
        attributes = [make_attribute(spec) for spec in attrs]
        self._schema.add(
            RelationshipSet(
                name, attributes, description, participations=participations
            )
        )
        return self

    def build(self, validate: bool = True) -> Schema:
        """Finish and return the schema.

        With ``validate=True`` (the default), the schema is checked for
        well-formedness and an error is raised on any fatal issue.
        """
        if validate:
            from repro.ecr.validation import assert_valid

            assert_valid(self._schema)
        return self._schema
