"""Attribute domains for the ECR model.

The paper's Attribute Information Collection Screen (Screen 5) records a
*domain* for every attribute (``char``, ``real`` and so on).  Domains matter
for integration in two places:

* attribute equivalence — two attributes with incompatible domains should not
  be declared equivalent without a conversion, so the tool warns about it; and
* schema analysis — differences in scales/units and domain constraints are
  among the incompatibilities the DDA resolves before integration.

We model a domain as a named value space with an optional refinement: an
enumeration of allowed values or a numeric range.  The scalar kinds mirror
what a 1988 data dictionary would hold (character strings, integers, reals,
dates and booleans).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class DomainKind(enum.Enum):
    """The base value space of a domain."""

    CHAR = "char"
    INTEGER = "integer"
    REAL = "real"
    DATE = "date"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Domain-kind aliases accepted by :func:`domain_from_name` (DDL, screens).
_KIND_ALIASES = {
    "char": DomainKind.CHAR,
    "character": DomainKind.CHAR,
    "string": DomainKind.CHAR,
    "str": DomainKind.CHAR,
    "text": DomainKind.CHAR,
    "int": DomainKind.INTEGER,
    "integer": DomainKind.INTEGER,
    "real": DomainKind.REAL,
    "float": DomainKind.REAL,
    "number": DomainKind.REAL,
    "numeric": DomainKind.REAL,
    "date": DomainKind.DATE,
    "time": DomainKind.DATE,
    "datetime": DomainKind.DATE,
    "bool": DomainKind.BOOLEAN,
    "boolean": DomainKind.BOOLEAN,
}

#: Kinds whose values can be converted into one another without losing the
#: ability to compare (used by :func:`domains_compatible`).
_COMPATIBLE_KINDS = {
    frozenset({DomainKind.INTEGER, DomainKind.REAL}),
}


@dataclass(frozen=True)
class Domain:
    """A named attribute value space.

    Parameters
    ----------
    kind:
        The base value space.
    length:
        Optional maximum length for :attr:`DomainKind.CHAR` domains
        (``char(20)`` in the DDL).
    values:
        Optional enumeration of the allowed values.  When given, the domain
        is the enumerated subset of the base kind.
    low, high:
        Optional inclusive numeric bounds for integer/real domains.
    unit:
        Optional unit-of-measure tag (``"USD"``, ``"cm"``); differing units
        are one of the scale incompatibilities the paper's schema-analysis
        phase surfaces.
    """

    kind: DomainKind
    length: int | None = None
    values: tuple[str, ...] = field(default=())
    low: float | None = None
    high: float | None = None
    unit: str | None = None

    def __post_init__(self) -> None:
        if self.length is not None and self.length <= 0:
            raise SchemaError(f"char length must be positive, got {self.length}")
        if self.length is not None and self.kind is not DomainKind.CHAR:
            raise SchemaError("length applies only to char domains")
        numeric = self.kind in (DomainKind.INTEGER, DomainKind.REAL)
        if (self.low is not None or self.high is not None) and not numeric:
            raise SchemaError("range bounds apply only to numeric domains")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise SchemaError(f"empty range [{self.low}, {self.high}]")

    @property
    def is_enumerated(self) -> bool:
        """Whether the domain is a finite enumeration of values."""
        return bool(self.values)

    @property
    def is_bounded(self) -> bool:
        """Whether a numeric domain carries range bounds."""
        return self.low is not None or self.high is not None

    def spelled(self) -> str:
        """Render the domain in the DDL / screen form (``char``, ``int(0,120)``)."""
        base = self.kind.value
        if self.kind is DomainKind.CHAR and self.length is not None:
            base = f"char({self.length})"
        if self.is_enumerated:
            base += "{" + ",".join(self.values) + "}"
        elif self.is_bounded:
            low = "" if self.low is None else _spell_number(self.low)
            high = "" if self.high is None else _spell_number(self.high)
            base += f"[{low}..{high}]"
        if self.unit:
            base += f" {self.unit}"
        return base

    def contains_value(self, value: object) -> bool:
        """Best-effort membership test used by translators and validators."""
        if self.is_enumerated:
            return str(value) in self.values
        if self.kind is DomainKind.CHAR:
            ok = isinstance(value, str)
            if ok and self.length is not None:
                ok = len(value) <= self.length
            return ok
        if self.kind is DomainKind.INTEGER:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif self.kind is DomainKind.REAL:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif self.kind is DomainKind.BOOLEAN:
            return isinstance(value, bool)
        else:  # DATE: accept ISO-format strings
            return isinstance(value, str)
        if ok and self.low is not None and value < self.low:
            return False
        if ok and self.high is not None and value > self.high:
            return False
        return ok

    def __str__(self) -> str:
        return self.spelled()


def _spell_number(value: float) -> str:
    """Render ``2.0`` as ``2`` but keep genuine fractions."""
    if float(value).is_integer():
        return str(int(value))
    return str(value)


#: Ready-made domains for the common scalar kinds.
BUILTIN_DOMAINS: dict[str, Domain] = {
    "char": Domain(DomainKind.CHAR),
    "integer": Domain(DomainKind.INTEGER),
    "real": Domain(DomainKind.REAL),
    "date": Domain(DomainKind.DATE),
    "boolean": Domain(DomainKind.BOOLEAN),
}


def domain_from_name(text: str) -> Domain:
    """Parse a domain spelling as written on Screen 5 or in the DDL.

    Accepts the base kinds and their aliases (``char``, ``string``, ``int``,
    ``real``, ``float``, ``date``, ``bool`` ...), an optional char length
    (``char(30)``), an optional enumeration (``char{MS,PHD}``) and an optional
    numeric range (``int[0..120]``).

    Raises
    ------
    SchemaError
        If the spelling is not recognised.
    """
    raw = text.strip()
    if not raw:
        raise SchemaError("empty domain name")
    unit = None
    if " " in raw:
        raw, unit = raw.split(None, 1)
        unit = unit.strip() or None
    values: tuple[str, ...] = ()
    low = high = None
    length = None
    if raw.endswith("}") and "{" in raw:
        raw, _, inner = raw.partition("{")
        values = tuple(v.strip() for v in inner[:-1].split(",") if v.strip())
        if not values:
            raise SchemaError(f"empty enumeration in domain {text!r}")
    elif raw.endswith("]") and "[" in raw:
        raw, _, inner = raw.partition("[")
        bounds = inner[:-1].split("..")
        if len(bounds) != 2:
            raise SchemaError(f"bad range in domain {text!r}")
        low = float(bounds[0]) if bounds[0].strip() else None
        high = float(bounds[1]) if bounds[1].strip() else None
    elif raw.endswith(")") and "(" in raw:
        raw, _, inner = raw.partition("(")
        try:
            length = int(inner[:-1])
        except ValueError:
            raise SchemaError(f"bad char length in domain {text!r}") from None
    kind = _KIND_ALIASES.get(raw.lower())
    if kind is None:
        raise SchemaError(f"unknown domain {text!r}")
    return Domain(kind, length=length, values=values, low=low, high=high, unit=unit)


def domains_compatible(first: Domain, second: Domain) -> bool:
    """Whether two domains can plausibly hold values for equivalent attributes.

    The paper's attribute-equivalence step warns the DDA when candidate
    attributes have incompatible domains.  Compatible means: same base kind,
    or a pair of numeric kinds (integer/real).  Refinements (length, range,
    enumeration, unit) never make domains incompatible by themselves — they
    are scale differences the DDA resolves — but differing units are reported
    separately by the validation layer.
    """
    if first.kind is second.kind:
        return True
    return frozenset({first.kind, second.kind}) in _COMPATIBLE_KINDS
