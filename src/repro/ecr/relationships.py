"""Relationship sets and structural (cardinality) constraints.

A relationship set associates entities from two or more object classes
(Section 2 of the paper).  Each participation of an object class carries a
cardinality constraint ``(i1, i2)`` with ``0 <= i1 <= i2`` and ``i2 > 0``:
every member of the object class takes part in at least ``i1`` and at most
``i2`` relationship instances.  ``i2`` may be unbounded (``n`` in diagrams),
represented here by :data:`CARDINALITY_MANY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.attributes import check_identifier
from repro.ecr.objects import ObjectClass, ObjectKind
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError

#: Sentinel for an unbounded maximum cardinality (rendered as ``n``).
CARDINALITY_MANY: int = -1


@dataclass(frozen=True)
class CardinalityConstraint:
    """The ``(min, max)`` participation bounds of the ECR model.

    ``max`` is either a positive integer or :data:`CARDINALITY_MANY`.
    """

    min: int = 0
    max: int = CARDINALITY_MANY

    def __post_init__(self) -> None:
        if self.min < 0:
            raise SchemaError(f"minimum cardinality must be >= 0, got {self.min}")
        if self.max == 0:
            raise SchemaError("maximum cardinality must be positive")
        if self.max != CARDINALITY_MANY and self.max < self.min:
            raise SchemaError(
                f"maximum cardinality {self.max} below minimum {self.min}"
            )

    @property
    def is_many(self) -> bool:
        """Whether the maximum participation is unbounded."""
        return self.max == CARDINALITY_MANY

    @property
    def is_mandatory(self) -> bool:
        """Whether every member must participate at least once."""
        return self.min >= 1

    def admits(self, count: int) -> bool:
        """Whether ``count`` participations satisfy the constraint."""
        if count < self.min:
            return False
        return self.is_many or count <= self.max

    def intersect(self, other: "CardinalityConstraint") -> "CardinalityConstraint":
        """Tightest constraint satisfying both (used when merging relationships).

        Raises
        ------
        SchemaError
            If the two constraints are contradictory (empty intersection).
        """
        low = max(self.min, other.min)
        if self.is_many:
            high = other.max
        elif other.is_many:
            high = self.max
        else:
            high = min(self.max, other.max)
        if high != CARDINALITY_MANY and high < low:
            raise SchemaError(
                f"cardinality constraints {self} and {other} are contradictory"
            )
        return CardinalityConstraint(low, high)

    def union(self, other: "CardinalityConstraint") -> "CardinalityConstraint":
        """Loosest constraint admitting anything either side admits."""
        low = min(self.min, other.min)
        if self.is_many or other.is_many:
            high = CARDINALITY_MANY
        else:
            high = max(self.max, other.max)
        return CardinalityConstraint(low, high)

    def spelled(self) -> str:
        high = "n" if self.is_many else str(self.max)
        return f"({self.min},{high})"

    def __str__(self) -> str:
        return self.spelled()

    @classmethod
    def parse(cls, text: str) -> "CardinalityConstraint":
        """Parse ``"(1,n)"`` / ``"0,1"`` into a constraint."""
        raw = text.strip()
        if raw.startswith("(") and raw.endswith(")"):
            raw = raw[1:-1]
        parts = [part.strip() for part in raw.split(",")]
        if len(parts) != 2:
            raise SchemaError(f"cardinality must be (min,max), got {text!r}")
        try:
            low = int(parts[0])
        except ValueError:
            raise SchemaError(f"bad minimum cardinality in {text!r}") from None
        if parts[1].lower() in ("n", "m", "*"):
            high = CARDINALITY_MANY
        else:
            try:
                high = int(parts[1])
            except ValueError:
                raise SchemaError(f"bad maximum cardinality in {text!r}") from None
        return cls(low, high)


@dataclass(frozen=True)
class Participation:
    """One leg of a relationship set: an object class plus its constraint.

    ``role`` optionally names the leg (needed when the same object class
    participates twice, e.g. ``Employee`` as ``manager`` and ``subordinate``).
    """

    object_name: str
    cardinality: CardinalityConstraint = field(default_factory=CardinalityConstraint)
    role: str = ""

    def __post_init__(self) -> None:
        check_identifier(self.object_name, "participating object class")
        if self.role:
            check_identifier(self.role, "role")

    @property
    def label(self) -> str:
        """The name that identifies this leg inside its relationship set."""
        return self.role or self.object_name

    def __str__(self) -> str:
        role = f" as {self.role}" if self.role else ""
        return f"{self.object_name}{role} {self.cardinality}"


@dataclass
class RelationshipSet(ObjectClass):
    """A collection of relationships of the same type over the same classes.

    Relationship sets may own attributes of their own (Screen 3 shows
    ``Majors`` with one attribute), and connect two or more participations
    (Screen 4 collects them).
    """

    participations: list[Participation] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        seen: set[str] = set()
        for participation in self.participations:
            if participation.label in seen:
                raise DuplicateNameError(
                    "participation", participation.label, self.name
                )
            seen.add(participation.label)

    @property
    def kind(self) -> ObjectKind:
        return ObjectKind.RELATIONSHIP

    def kind_label(self) -> str:
        return "relationship set"

    @property
    def degree(self) -> int:
        """Number of participating legs (2 for binary relationships)."""
        return len(self.participations)

    def participant_names(self) -> list[str]:
        """Names of the participating object classes, in declaration order."""
        return [participation.object_name for participation in self.participations]

    def participation_for(self, label: str) -> Participation:
        """Fetch a leg by role name (or object-class name when unnamed)."""
        for participation in self.participations:
            if participation.label == label:
                return participation
        raise UnknownNameError("participation", label, self.name)

    def connects(self, object_name: str) -> bool:
        """Whether the named object class participates in this set."""
        return object_name in self.participant_names()

    def add_participation(self, participation: Participation) -> Participation:
        """Attach another leg, enforcing label uniqueness."""
        labels = {existing.label for existing in self.participations}
        if participation.label in labels:
            raise DuplicateNameError("participation", participation.label, self.name)
        self.participations.append(participation)
        return participation

    def remove_participation(self, label: str) -> Participation:
        """Detach the leg identified by ``label`` and return it."""
        removed = self.participation_for(label)
        self.participations.remove(removed)
        return removed

    def replace_participant(self, old_name: str, new_name: str) -> int:
        """Re-point every leg on ``old_name`` to ``new_name``.

        Used during integration when a participating object class is merged
        into an ``E_``/``D_`` class.  Returns the number of legs changed.
        """
        changed = 0
        for index, participation in enumerate(self.participations):
            if participation.object_name == old_name:
                self.participations[index] = Participation(
                    new_name, participation.cardinality, participation.role
                )
                changed += 1
        return changed

    def __str__(self) -> str:
        legs = ", ".join(str(participation) for participation in self.participations)
        return f"relationship set {self.name} ({legs})"
