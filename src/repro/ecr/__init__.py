"""Entity-Category-Relationship (ECR) data model.

This package implements the conceptual data model the paper uses as its
common model for schema integration: the ECR model of Elmasri, Hevner and
Weeldreyer (1985), an extension of Chen's Entity-Relationship model with

* **categories** — named subsets of one or more object classes, used to
  represent generalisation hierarchies and subclasses; and
* **structural (cardinality) constraints** — ``(min, max)`` bounds on how
  entities of an object class participate in a relationship set.

The public surface is re-exported here so that users can write
``from repro.ecr import Schema, EntitySet`` without knowing the module
layout.
"""

from repro.ecr.domains import (
    Domain,
    DomainKind,
    BUILTIN_DOMAINS,
    domain_from_name,
    domains_compatible,
)
from repro.ecr.attributes import Attribute, AttributeRef
from repro.ecr.objects import ObjectClass, EntitySet, Category, ObjectKind
from repro.ecr.relationships import (
    Participation,
    CardinalityConstraint,
    RelationshipSet,
    CARDINALITY_MANY,
)
from repro.ecr.schema import Schema, ObjectRef
from repro.ecr.coerce import coerce_attribute_ref, coerce_object_ref
from repro.ecr.builder import SchemaBuilder
from repro.ecr.validation import ValidationIssue, Severity, validate_schema
from repro.ecr.ddl import parse_ddl, parse_ddl_schemas, to_ddl
from repro.ecr.json_io import schema_to_dict, schema_from_dict
from repro.ecr.diagram import ascii_diagram, dot_diagram
from repro.ecr.refactor import (
    promote_attribute_to_entity,
    demote_entity_to_attribute,
    reify_relationship,
)
from repro.ecr.walk import (
    superclass_closure,
    subclass_closure,
    inherited_attributes,
    root_classes,
    leaf_classes,
    isa_depth,
)

__all__ = [
    "Domain",
    "DomainKind",
    "BUILTIN_DOMAINS",
    "domain_from_name",
    "domains_compatible",
    "Attribute",
    "AttributeRef",
    "ObjectClass",
    "EntitySet",
    "Category",
    "ObjectKind",
    "Participation",
    "CardinalityConstraint",
    "RelationshipSet",
    "CARDINALITY_MANY",
    "Schema",
    "ObjectRef",
    "coerce_attribute_ref",
    "coerce_object_ref",
    "SchemaBuilder",
    "ValidationIssue",
    "Severity",
    "validate_schema",
    "parse_ddl",
    "promote_attribute_to_entity",
    "demote_entity_to_attribute",
    "reify_relationship",
    "parse_ddl_schemas",
    "to_ddl",
    "schema_to_dict",
    "schema_from_dict",
    "ascii_diagram",
    "dot_diagram",
    "superclass_closure",
    "subclass_closure",
    "inherited_attributes",
    "root_classes",
    "leaf_classes",
    "isa_depth",
]
