"""A textual data description language for ECR schemas.

The paper's ECR model comes with a data description language (Section 1);
this module provides a readable, line-oriented rendition of it so schemas
can live in files, docs and tests::

    schema sc1
      entity Student
        attr Name : char key
        attr GPA : real
      entity Department
        attr Name : char key
      relationship Majors
        attr Since : date
        connects Student (1,1)
        connects Department (0,n)
      category Grad_student of Student
        attr Support_type : char

Grammar (one declaration per line, ``#`` starts a comment, indentation is
ignored — nesting is implied by the declaration kinds):

* ``schema NAME ["description"]``
* ``entity NAME ["description"]``
* ``category NAME of PARENT[, PARENT...] ["description"]``
* ``relationship NAME ["description"]``
* ``attr NAME : DOMAIN [key]`` — attaches to the last declared structure
* ``connects OBJECT (min,max) [as ROLE]`` — attaches to the last relationship

:func:`parse_ddl` and :func:`to_ddl` round-trip: parsing the output of
``to_ddl`` reproduces an equal schema.
"""

from __future__ import annotations

import re

from repro.ecr.attributes import Attribute
from repro.ecr.domains import domain_from_name
from repro.ecr.objects import Category, EntitySet, ObjectClass
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import Schema
from repro.errors import DdlError, SchemaError

_DESCRIPTION_RE = re.compile(r'"([^"]*)"\s*$')
_CONNECTS_RE = re.compile(
    r"^connects\s+(?P<object>\w+)\s*"
    r"(?:\((?P<card>[^)]*)\))?\s*"
    r"(?:as\s+(?P<role>\w+))?\s*$"
)
_ATTR_RE = re.compile(
    r"^attr\s+(?P<name>\w+)\s*:\s*(?P<domain>[^:]+?)\s*(?P<key>\bkey\b)?\s*$"
)


def _split_description(rest: str) -> tuple[str, str]:
    """Pull a trailing quoted description off a declaration tail."""
    match = _DESCRIPTION_RE.search(rest)
    if match:
        return rest[: match.start()].strip(), match.group(1)
    return rest.strip(), ""


def parse_ddl_schemas(text: str) -> list[Schema]:
    """Parse DDL text containing one or more ``schema`` blocks."""
    schemas: list[Schema] = []
    current_schema: Schema | None = None
    current_structure: ObjectClass | None = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        keyword, _, rest = line.partition(" ")
        keyword = keyword.lower()
        try:
            if keyword == "schema":
                name, description = _split_description(rest)
                if not name:
                    raise DdlError("schema needs a name", line_number)
                current_schema = Schema(name, description)
                current_structure = None
                schemas.append(current_schema)
                continue
            if current_schema is None:
                raise DdlError(
                    f"{keyword!r} before any 'schema' declaration", line_number
                )
            if keyword == "entity":
                name, description = _split_description(rest)
                current_structure = current_schema.add(
                    EntitySet(name, description=description)
                )
            elif keyword == "category":
                current_structure = _parse_category(
                    current_schema, rest, line_number
                )
            elif keyword == "relationship":
                name, description = _split_description(rest)
                current_structure = current_schema.add(
                    RelationshipSet(name, description=description)
                )
            elif keyword == "attr":
                _parse_attr(current_structure, line, line_number)
            elif keyword == "connects":
                _parse_connects(current_structure, line, line_number)
            else:
                raise DdlError(f"unknown declaration {keyword!r}", line_number)
        except DdlError:
            raise
        except SchemaError as exc:
            raise DdlError(str(exc), line_number) from exc
    return schemas


def parse_ddl(text: str) -> Schema:
    """Parse DDL text that must contain exactly one schema."""
    schemas = parse_ddl_schemas(text)
    if len(schemas) != 1:
        raise DdlError(f"expected exactly one schema, found {len(schemas)}")
    return schemas[0]


def _parse_category(schema: Schema, rest: str, line_number: int) -> Category:
    rest, description = _split_description(rest)
    name, of_keyword, parents_text = rest.partition(" of ")
    name = name.strip()
    if not of_keyword or not name:
        raise DdlError(
            "category must be 'category NAME of PARENT[, PARENT...]'",
            line_number,
        )
    parents = [parent.strip() for parent in parents_text.split(",")]
    parents = [parent for parent in parents if parent]
    if not parents:
        raise DdlError("category needs at least one parent", line_number)
    category = Category(name, description=description, parents=parents)
    schema.add(category)
    return category


def _parse_attr(
    structure: ObjectClass | None, line: str, line_number: int
) -> None:
    if structure is None:
        raise DdlError("'attr' outside any structure", line_number)
    match = _ATTR_RE.match(line)
    if not match:
        raise DdlError("attr must be 'attr NAME : DOMAIN [key]'", line_number)
    domain = domain_from_name(match.group("domain"))
    structure.add_attribute(
        Attribute(match.group("name"), domain, bool(match.group("key")))
    )


def _parse_connects(
    structure: ObjectClass | None, line: str, line_number: int
) -> None:
    if not isinstance(structure, RelationshipSet):
        raise DdlError("'connects' outside any relationship", line_number)
    match = _CONNECTS_RE.match(line)
    if not match:
        raise DdlError(
            "connects must be 'connects OBJECT (min,max) [as ROLE]'",
            line_number,
        )
    cardinality = CardinalityConstraint()
    if match.group("card"):
        cardinality = CardinalityConstraint.parse(match.group("card"))
    structure.add_participation(
        Participation(match.group("object"), cardinality, match.group("role") or "")
    )


def to_ddl(schema: Schema) -> str:
    """Render a schema in the canonical DDL form (round-trips via parse).

    Structures are emitted in declaration order so that parsing the output
    reproduces an identical schema, including ordering.
    """
    lines: list[str] = [_declaration("schema", schema.name, schema.description)]
    for structure in schema:
        if isinstance(structure, Category):
            head = f"category {structure.name} of {', '.join(structure.parents)}"
            if structure.description:
                head += f' "{structure.description}"'
            lines.append("  " + head)
            lines.extend(_attr_lines(structure))
        elif isinstance(structure, RelationshipSet):
            lines.append(
                "  "
                + _declaration(
                    "relationship", structure.name, structure.description
                )
            )
            lines.extend(_attr_lines(structure))
            for participation in structure.participations:
                leg = (
                    f"    connects {participation.object_name} "
                    f"{participation.cardinality}"
                )
                if participation.role:
                    leg += f" as {participation.role}"
                lines.append(leg)
        else:
            lines.append(
                "  " + _declaration("entity", structure.name, structure.description)
            )
            lines.extend(_attr_lines(structure))
    return "\n".join(lines) + "\n"


def _declaration(keyword: str, name: str, description: str) -> str:
    if description:
        return f'{keyword} {name} "{description}"'
    return f"{keyword} {name}"


def _attr_lines(structure: ObjectClass) -> list[str]:
    lines = []
    for attribute in structure.attributes:
        key = " key" if attribute.is_key else ""
        lines.append(f"    attr {attribute.name} : {attribute.domain}{key}")
    return lines
