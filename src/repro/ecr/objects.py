"""Object classes of the ECR model: entity sets and categories.

The paper uses *object class* as the umbrella term for entity sets and
categories (Section 2).  Entity sets are disjoint top-level classifications;
a category is a named subset of one or more object classes and inherits
their attributes, which is how generalisation hierarchies and the IS-A
lattices produced by integration are represented.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ecr.attributes import Attribute, check_identifier
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


class ObjectKind(enum.Enum):
    """Structure type as entered on Screen 3 (``Type(E/C/R)``)."""

    ENTITY = "e"
    CATEGORY = "c"
    RELATIONSHIP = "r"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ObjectClass:
    """Common behaviour of entity sets and categories.

    An object class owns an ordered collection of attributes with unique
    names.  Order is preserved because the tool's screens display attributes
    in entry order.
    """

    name: str
    attributes: list[Attribute] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        check_identifier(self.name, self.kind_label())
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.name in seen:
                raise DuplicateNameError("attribute", attribute.name, self.name)
            seen.add(attribute.name)

    # -- classification ----------------------------------------------------

    @property
    def kind(self) -> ObjectKind:
        raise NotImplementedError

    def kind_label(self) -> str:
        """Human-readable kind used in error messages and screens."""
        return "object class"

    @property
    def is_entity_set(self) -> bool:
        return self.kind is ObjectKind.ENTITY

    @property
    def is_category(self) -> bool:
        return self.kind is ObjectKind.CATEGORY

    # -- attribute management ----------------------------------------------

    def attribute_names(self) -> list[str]:
        """Names of the directly owned (non-inherited) attributes, in order."""
        return [attribute.name for attribute in self.attributes]

    def has_attribute(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Fetch a directly owned attribute by name.

        Raises
        ------
        UnknownNameError
            If no attribute of that name is owned by this object class.
        """
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise UnknownNameError("attribute", name, self.name)

    def add_attribute(self, attribute: Attribute) -> Attribute:
        """Append an attribute, enforcing name uniqueness."""
        if self.has_attribute(attribute.name):
            raise DuplicateNameError("attribute", attribute.name, self.name)
        self.attributes.append(attribute)
        return attribute

    def remove_attribute(self, name: str) -> Attribute:
        """Remove and return the attribute called ``name``."""
        removed = self.attribute(name)
        self.attributes.remove(removed)
        return removed

    def key_attributes(self) -> list[Attribute]:
        """The attributes flagged as keys on Screen 5."""
        return [attribute for attribute in self.attributes if attribute.is_key]

    def __str__(self) -> str:
        return f"{self.kind_label()} {self.name}"


@dataclass
class EntitySet(ObjectClass):
    """A top-level classification of entities with similar basic attributes.

    Entity sets are disjoint: a given entity belongs to exactly one entity
    set (Section 2 of the paper).
    """

    @property
    def kind(self) -> ObjectKind:
        return ObjectKind.ENTITY

    def kind_label(self) -> str:
        return "entity set"


@dataclass
class Category(ObjectClass):
    """A named subset of one or more object classes.

    ``parents`` lists the names of the object classes (entity sets or other
    categories) the category is defined over — what the paper's Category
    Information Collection Screen calls the entities and categories
    *connected* to the category.  A category inherits the attributes of its
    parents; its own ``attributes`` list holds only the additional ones
    (for example ``Support_type`` on ``Grad_student``).

    A category over multiple parents models a subset of their union, which
    is how the integration phase attaches the original classes beneath a
    derived ``D_`` parent.
    """

    parents: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.parents:
            raise SchemaError(f"category {self.name!r} must have at least one parent")
        seen: set[str] = set()
        for parent in self.parents:
            check_identifier(parent, "parent object class")
            if parent in seen:
                raise DuplicateNameError("parent", parent, self.name)
            if parent == self.name:
                raise SchemaError(f"category {self.name!r} cannot be its own parent")
            seen.add(parent)

    @property
    def kind(self) -> ObjectKind:
        return ObjectKind.CATEGORY

    def kind_label(self) -> str:
        return "category"

    def add_parent(self, parent: str) -> None:
        """Attach an additional parent object class by name."""
        check_identifier(parent, "parent object class")
        if parent == self.name:
            raise SchemaError(f"category {self.name!r} cannot be its own parent")
        if parent in self.parents:
            raise DuplicateNameError("parent", parent, self.name)
        self.parents.append(parent)

    def remove_parent(self, parent: str) -> None:
        """Detach a parent; a category must always keep at least one."""
        if parent not in self.parents:
            raise UnknownNameError("parent", parent, self.name)
        if len(self.parents) == 1:
            raise SchemaError(
                f"category {self.name!r} must keep at least one parent"
            )
        self.parents.remove(parent)
