"""Token-based tenant authentication.

Each tenant holds one or more opaque bearer tokens.  The registry keeps
only SHA-256 digests of issued tokens, so a process dump never yields a
usable credential, and lookup compares digests with
:func:`hmac.compare_digest` to stay timing-safe.

Tenant names double as filesystem path segments under the session
manager's root (strict per-tenant isolation of save/WAL paths), so they
are validated against the same conservative grammar as session ids.
"""

from __future__ import annotations

import hashlib
import hmac
import re
import secrets

from repro.service.errors import AuthenticationError, BadRequestError
from repro.service.http import Request

#: conservative path-segment grammar shared by tenant and session ids
SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def require_safe_name(kind: str, name: str) -> str:
    """Validate a tenant/session identifier used as a path segment."""
    if not SAFE_NAME.match(name) or ".." in name:
        raise BadRequestError(
            f"invalid {kind} {name!r} (use letters, digits, '.', '_', '-';"
            " max 64 chars)"
        )
    return name


def _digest(token: str) -> str:
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class TenantAuth:
    """Maps bearer tokens to tenant names; issues and revokes tokens."""

    def __init__(self) -> None:
        self._tenant_by_digest: dict[str, str] = {}

    # -- provisioning ----------------------------------------------------------

    def issue(self, tenant: str) -> str:
        """Mint a fresh token for ``tenant`` and return it (shown once)."""
        require_safe_name("tenant", tenant)
        token = secrets.token_urlsafe(24)
        self._tenant_by_digest[_digest(token)] = tenant
        return token

    def add_token(self, tenant: str, token: str) -> None:
        """Register a pre-agreed token (config files, tests)."""
        require_safe_name("tenant", tenant)
        if not token:
            raise BadRequestError("empty token")
        self._tenant_by_digest[_digest(token)] = tenant

    def revoke(self, token: str) -> bool:
        """Forget a token; True when it was known."""
        return self._tenant_by_digest.pop(_digest(token), None) is not None

    @classmethod
    def from_tokens(cls, tokens: dict[str, str]) -> "TenantAuth":
        """Build a registry from a ``{token: tenant}`` mapping."""
        auth = cls()
        for token, tenant in tokens.items():
            auth.add_token(tenant, token)
        return auth

    # -- authentication --------------------------------------------------------

    def tenant_for(self, token: str) -> str:
        """The tenant a bare token belongs to; raises when unknown."""
        presented = _digest(token)
        # scan-and-compare keeps the lookup timing independent of *which*
        # entry matches; the registry is small (one per issued token)
        found: str | None = None
        for digest, tenant in self._tenant_by_digest.items():
            if hmac.compare_digest(digest, presented):
                found = tenant
        if found is None:
            raise AuthenticationError("unknown or revoked token")
        return found

    def authenticate(self, request: Request) -> str:
        """The tenant behind a request's bearer token; raises 401-shaped."""
        token = request.auth_token
        if token is None:
            raise AuthenticationError(
                "missing credentials; send 'Authorization: Bearer <token>'"
            )
        return self.tenant_for(token)


__all__ = ["SAFE_NAME", "TenantAuth", "require_safe_name"]
