"""The versioned route table: ``/v1/...`` paths onto session operations.

Routes are declared data — method, pattern, handler, auth flag, success
status — matched by :class:`Router`.  Handlers are small: authenticate
(done by the app before the handler runs), borrow the session from the
:class:`~repro.service.manager.SessionManager`, call the library, and
return a JSON-ready dict.  Error → status mapping happens centrally in
:mod:`repro.service.app` via the code table, never per route.

The path grammar is ``{name}`` placeholders over slash-separated
segments, e.g. ``/v1/sessions/{sid}/schemas/{name}``.
"""

from __future__ import annotations

import base64
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.assertions.kinds import AssertionKind
from repro.ecr.ddl import parse_ddl, to_ddl
from repro.ecr.json_io import schema_to_dict
from repro.errors import UnknownNameError
from repro.obs.telemetry import PROMETHEUS_CONTENT_TYPE, sse_stream
from repro.replication.errors import NotLeaderError
from repro.replication.frames import encode_frames
from repro.replication.shipper import ShipCursor, WalShipper
from repro.service.errors import (
    BadRequestError,
    MethodNotAllowedError,
    RouteNotFoundError,
    TenantAccessError,
)
from repro.service.http import Request, Response, StreamingResponse
from repro.service.manager import state_fingerprint

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.app import ServiceApp


@dataclass
class Context:
    """Everything a handler sees for one request."""

    app: "ServiceApp"
    request: Request
    params: dict[str, str]
    tenant: str | None = None
    #: the request presented the configured replication-plane token
    #: (``auth="replication"`` routes only); operators are tenant-less
    operator: bool = False
    #: the correlation id dispatch bound to this request
    request_id: str = ""

    @property
    def manager(self):
        return self.app.manager

    @property
    def jobs(self):
        return self.app.jobs

    def body(self) -> dict[str, Any]:
        return self.request.json_object()

    def require(self, payload: dict[str, Any], key: str) -> Any:
        try:
            return payload[key]
        except KeyError:
            raise BadRequestError(f"missing required field {key!r}")

    def flag(self, name: str) -> bool:
        value = self.request.query.get(name, "")
        return value.lower() in ("1", "true", "yes")


Handler = Callable[[Context], Any]


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    handler: Handler
    #: True — tenant bearer token required; False — anonymous;
    #: "replication" — the replication-plane token authenticates as an
    #: operator, any tenant token authenticates as that tenant
    auth: bool | str = True
    status: int = 200
    regex: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        escaped = re.sub(
            r"\{(\w+)\}", r"(?P<\1>[^/]+)", re.escape(self.pattern).replace(
                r"\{", "{"
            ).replace(r"\}", "}")
        )
        object.__setattr__(self, "regex", re.compile(f"^{escaped}$"))


class Router:
    """Matches (method, path) to a route and its extracted params."""

    def __init__(self, routes: list[Route] | None = None) -> None:
        self.routes: list[Route] = list(routes or ())

    def add(
        self,
        method: str,
        pattern: str,
        handler: Handler,
        *,
        auth: bool | str = True,
        status: int = 200,
    ) -> None:
        self.routes.append(
            Route(method.upper(), pattern, handler, auth, status)
        )

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        allowed: set[str] = set()
        for route in self.routes:
            found = route.regex.match(path)
            if not found:
                continue
            if route.method != method:
                allowed.add(route.method)
                continue
            return route, found.groupdict()
        if allowed:
            raise MethodNotAllowedError(
                f"{method} not allowed on {path}", tuple(allowed)
            )
        raise RouteNotFoundError(f"no route for {path}")


# -- shared helpers ---------------------------------------------------------------


def parse_kind(value: Any) -> AssertionKind:
    """An assertion kind from its menu code (0-5) or name."""
    if isinstance(value, bool):
        raise BadRequestError("assertion 'kind' must be a code or name")
    if isinstance(value, int):
        try:
            return AssertionKind(value)
        except ValueError:
            raise BadRequestError(f"unknown assertion code {value}")
    if isinstance(value, str):
        text = value.strip().upper()
        if text.isdigit():
            return parse_kind(int(text))
        try:
            return AssertionKind[text]
        except KeyError:
            raise BadRequestError(f"unknown assertion kind {value!r}")
    raise BadRequestError("assertion 'kind' must be a code or name")


def assertion_wire(assertion, relationships: bool) -> dict[str, Any]:
    return {
        "first": str(assertion.first),
        "second": str(assertion.second),
        "kind": assertion.kind.name,
        "kind_code": assertion.kind.code,
        "source": assertion.source.name,
        "note": assertion.note,
        "relationships": relationships,
    }


def session_detail(session, info) -> dict[str, Any]:
    kernel = session.analysis.kernel
    return {
        "session_id": info.session_id,
        "resident": info.resident,
        "pinned": info.pinned,
        "approx_bytes": info.approx_bytes,
        "schemas": sorted(session.schemas),
        "selected_pair": (
            list(session.selected_pair) if session.selected_pair else None
        ),
        "equivalence_classes": len(
            session.registry.nontrivial_classes()
        ),
        "head": kernel.head,
        "events": kernel.bus.offset,
        "integrated": (
            session.result.schema.name if session.result else None
        ),
        "state_fingerprint": state_fingerprint(session),
    }


# -- meta ------------------------------------------------------------------------


def get_healthz(ctx: Context) -> dict[str, Any]:
    return {"status": "ok"}


def get_about(ctx: Context) -> dict[str, Any]:
    import repro

    return {
        "service": "repro-integration-service",
        "version": repro.__version__,
        "api": "v1",
    }


def get_stats(ctx: Context) -> dict[str, Any]:
    jobs = ctx.jobs.list(ctx.tenant)
    return {
        "manager": ctx.manager.stats().to_wire(),
        "tenant": {
            "sessions": len(ctx.manager.sessions(ctx.tenant)),
            "jobs": len(jobs),
            "jobs_pending": sum(
                1 for job in jobs if job.state in ("queued", "running")
            ),
        },
    }


# -- telemetry: exposition + SSE streams ------------------------------------------


def get_metrics(ctx: Context) -> Response:
    """``GET /v1/metrics`` — Prometheus text exposition (no auth)."""
    telemetry = ctx.app.telemetry
    if not telemetry.enabled:
        raise RouteNotFoundError("telemetry is disabled on this service")
    text = telemetry.render(ctx.app)
    return Response(
        status=200,
        headers={"content-type": PROMETHEUS_CONTENT_TYPE},
        body=text.encode("utf-8"),
    )


def _stream_options(ctx: Context) -> dict[str, Any]:
    """SSE bounds from query parameters (``max_events=0`` etc. are 400s)."""

    def positive_float(name: str) -> float | None:
        raw = ctx.request.query.get(name)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise BadRequestError(
                f"query parameter {name!r} must be a number"
            )
        if value <= 0:
            raise BadRequestError(
                f"query parameter {name!r} must be positive"
            )
        return value

    max_events: int | None = None
    raw = ctx.request.query.get("max_events")
    if raw is not None:
        try:
            max_events = int(raw)
        except ValueError:
            raise BadRequestError("'max_events' must be an integer")
        if max_events <= 0:
            raise BadRequestError("'max_events' must be positive")
    options: dict[str, Any] = {
        "max_events": max_events,
        "timeout_s": positive_float("timeout_s"),
        "idle_s": positive_float("idle_s"),
    }
    heartbeat = positive_float("heartbeat_s")
    if heartbeat is not None:
        options["heartbeat_s"] = heartbeat
    # micro-batch window: collect this long after the first item of a
    # chunk before writing; 0 disables batching for latency-critical
    # consumers.  Defaults to 50 ms.
    options["linger_s"] = 0.05
    raw = ctx.request.query.get("linger_s")
    if raw is not None:
        try:
            linger = float(raw)
        except ValueError:
            raise BadRequestError(
                "query parameter 'linger_s' must be a number"
            )
        if linger < 0:
            raise BadRequestError(
                "query parameter 'linger_s' must not be negative"
            )
        options["linger_s"] = linger
    return options


def get_events_stream(ctx: Context) -> StreamingResponse:
    """``GET /v1/sessions/{sid}/events/stream`` — live kernel events.

    Attaches a (shared, ref-counted) live-only tap on the session's
    kernel bus and streams every committed event as one SSE frame —
    the same taxonomy as the audit log, each stamped with the request
    id of the mutation that produced it.  The session is pinned while
    the stream is open so eviction cannot sever the tap.
    """
    telemetry = ctx.app.telemetry
    if not telemetry.enabled:
        raise RouteNotFoundError("telemetry is disabled on this service")
    options = _stream_options(ctx)
    sid = ctx.params["sid"]
    key = (ctx.tenant, sid)
    manager = ctx.manager
    subscription = telemetry.events_hub.subscribe(key)
    try:
        manager.pin(ctx.tenant, sid)  # 404s on foreign/missing sessions
    except BaseException:
        subscription.close()
        raise
    try:
        with manager.acquire(ctx.tenant, sid) as session:
            telemetry.attach_event_tap(key, session.analysis.kernel.bus)
    except BaseException:
        manager.unpin(ctx.tenant, sid)
        subscription.close()
        raise

    def on_close() -> None:
        telemetry.release_event_tap(key)
        manager.unpin(ctx.tenant, sid)

    return StreamingResponse.sse(
        sse_stream(
            subscription,
            event="kernel-event",
            on_close=on_close,
            **options,
        )
    )


def span_frame(item: Any) -> dict[str, Any]:
    """Serialise one published ``(span, request_id)`` pair for SSE.

    The spans hub carries raw pairs so request threads pay only a ring
    append; this transform runs on the stream's pump thread, where the
    consumer that asked for the data foots the serialisation bill.
    """
    span, request_id = item
    frame = span.to_dict()
    frame["seq"] = span.span_id
    frame["request_id"] = request_id
    return frame


def get_spans_stream(ctx: Context) -> StreamingResponse:
    """``GET /v1/sessions/{sid}/spans/stream`` — live tracer spans.

    Streams every span finished by requests and background jobs
    touching the session, through a bounded drop-oldest ring per
    subscriber (the ``end`` frame reports how many were dropped).
    """
    telemetry = ctx.app.telemetry
    if not telemetry.enabled:
        raise RouteNotFoundError("telemetry is disabled on this service")
    options = _stream_options(ctx)
    sid = ctx.params["sid"]
    ctx.manager.require(ctx.tenant, sid)  # 404 before subscribing
    subscription = telemetry.spans_hub.subscribe((ctx.tenant, sid))
    return StreamingResponse.sse(
        sse_stream(
            subscription, event="span", transform=span_frame, **options
        )
    )


# -- sessions --------------------------------------------------------------------


def post_sessions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    session_id = ctx.require(payload, "session_id")
    if not isinstance(session_id, str):
        raise BadRequestError("'session_id' must be a string")
    info = ctx.manager.create(ctx.tenant, session_id)
    return info.to_wire()


def get_sessions(ctx: Context) -> dict[str, Any]:
    return {
        "sessions": [
            info.to_wire() for info in ctx.manager.sessions(ctx.tenant)
        ]
    }


def get_session(ctx: Context) -> dict[str, Any]:
    sid = ctx.params["sid"]
    with ctx.manager.acquire(ctx.tenant, sid) as session:
        infos = {
            info.session_id: info
            for info in ctx.manager.sessions(ctx.tenant)
        }
        return session_detail(session, infos[sid])


def delete_session(ctx: Context) -> dict[str, Any]:
    sid = ctx.params["sid"]
    if ctx.flag("purge"):
        ctx.manager.purge(ctx.tenant, sid)
        return {"session_id": sid, "purged": True}
    evicted = ctx.manager.evict(ctx.tenant, sid)
    return {"session_id": sid, "evicted": evicted}


def post_checkpoint(ctx: Context) -> dict[str, Any]:
    info = ctx.manager.checkpoint(ctx.tenant, ctx.params["sid"])
    return info.to_wire()


def get_recovery(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        info = session.recovery_info()
        return {"recovery": info.to_wire() if info else None}


# -- schemas ---------------------------------------------------------------------


def post_schemas(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    name = payload.get("name")
    ddl = payload.get("ddl")
    if ddl is None and name is None:
        raise BadRequestError("provide 'ddl' text and/or a schema 'name'")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ddl is not None:
            if not isinstance(ddl, str):
                raise BadRequestError("'ddl' must be a string")
            schema = parse_ddl(ddl)
            if name is not None and name != schema.name:
                raise BadRequestError(
                    f"body says name {name!r} but the DDL defines "
                    f"{schema.name!r}"
                )
            session.adopt_schema(schema)
            added = schema.name
        else:
            session.add_schema(name)
            added = name
        return {"schema": added, "schemas": sorted(session.schemas)}


def get_schemas(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"schemas": sorted(session.schemas)}


def get_schema(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ctx.params["name"] not in session.schemas:
            raise UnknownNameError("schema", ctx.params["name"])
        schema = session.schema(ctx.params["name"])
        return {
            "name": schema.name,
            "ddl": to_ddl(schema),
            "schema": schema_to_dict(schema),
        }


def delete_schema(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ctx.params["name"] not in session.schemas:
            raise UnknownNameError("schema", ctx.params["name"])
        session.delete_schema(ctx.params["name"])
        return {"schemas": sorted(session.schemas)}


def post_schema_edits(ctx: Context) -> dict[str, Any]:
    """``POST /v1/sessions/{sid}/schemas/{name}/edits`` — typed evolution.

    The body's ``edit`` object is a :func:`repro.evolution.edit_from_payload`
    payload (``{"kind": "rename_attribute", ...}``).  The edit is applied
    through the session's incremental-repair pipeline; the reply carries
    the inverse edit, any retracted assertions, and the repair-scope
    summary ("recomputed 14/2,400 OCS cells, 2 clusters, 1 plan").  An
    edit that would orphan specified assertions is refused with a 409
    carrying the solver's minimal-conflict wire shape.
    """
    from repro.evolution import edit_from_payload

    payload = ctx.body()
    edit_payload = ctx.require(payload, "edit")
    edit = edit_from_payload(edit_payload)
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ctx.params["name"] not in session.schemas:
            raise UnknownNameError("schema", ctx.params["name"])
        outcome = session.apply_edit(ctx.params["name"], edit)
        wire = outcome.to_wire()
        wire["schema"] = ctx.params["name"]
        wire["state_fingerprint"] = state_fingerprint(session)
        return wire


# -- analysis: equivalences, candidates, assertions ------------------------------


def post_equivalences(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        issues = session.analysis.declare_equivalent(first, second)
        return {
            "first": first,
            "second": second,
            "issues": [str(issue) for issue in issues],
        }


def delete_equivalences(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    ref = ctx.require(payload, "ref")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        session.analysis.remove_from_class(ref)
        return {"ref": ref, "removed": True}


def get_candidates(ctx: Context) -> dict[str, Any]:
    query = ctx.request.query
    first = query.get("first")
    second = query.get("second")
    if not first or not second:
        raise BadRequestError(
            "candidates need 'first' and 'second' schema query parameters"
        )
    relationships = ctx.flag("relationships")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        pairs = session.analysis.candidate_pairs(
            first, second, relationships=relationships
        )
        return {
            "candidates": [
                {
                    "first": str(pair.first),
                    "second": str(pair.second),
                    "equivalent_attributes": pair.equivalent_attributes,
                    "attribute_ratio": pair.attribute_ratio,
                }
                for pair in pairs
            ]
        }


def post_assertions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    kind = parse_kind(ctx.require(payload, "kind"))
    relationships = bool(payload.get("relationships", False))
    note = payload.get("note", "")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        assertion = session.analysis.specify(
            first, second, kind, relationships=relationships, note=note
        )
        return assertion_wire(assertion, relationships)


def get_suggestions(ctx: Context) -> dict[str, Any]:
    """``GET /v1/sessions/{sid}/suggestions`` — ranked safe equivalences.

    Runs the solver's suggestion pass over two schemas: candidates are
    scored by resemblance and each is trial-propagated, so the client
    knows up front which one-keystroke confirmations cannot conflict.
    Read-only — confirming a suggestion is a normal POST to
    ``/assertions``.
    """
    query = ctx.request.query
    first = query.get("first")
    second = query.get("second")
    if not first or not second:
        raise BadRequestError(
            "suggestions need 'first' and 'second' schema query parameters"
        )
    relationships = ctx.flag("relationships")
    limit = 10
    raw_limit = query.get("limit")
    if raw_limit is not None:
        try:
            limit = int(raw_limit)
        except ValueError:
            raise BadRequestError("'limit' must be an integer")
        if limit <= 0:
            raise BadRequestError("'limit' must be positive")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        suggestions = session.analysis.suggest_assertions(
            first, second, relationships=relationships, limit=limit
        )
        return {
            "suggestions": [
                suggestion.to_wire() for suggestion in suggestions
            ]
        }


def post_assertions_explain(ctx: Context) -> dict[str, Any]:
    """``POST /v1/sessions/{sid}/assertions/explain`` — what-if analysis.

    Same body as POST /assertions, but nothing is committed: the reply
    says whether the assertion would be accepted, the minimal conflict
    set when it would not, and the newly derived consequences when it
    would.  Always 200 — a conflicting hypothetical is an answer here,
    not an error.
    """
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    kind = parse_kind(ctx.require(payload, "kind"))
    relationships = bool(payload.get("relationships", False))
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        explanation = session.analysis.explain_assertion(
            first, second, kind, relationships=relationships
        )
        wire = explanation.to_wire()
        wire["relationships"] = relationships
        return wire


def delete_assertions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    relationships = bool(payload.get("relationships", False))
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        session.analysis.retract(
            first, second, relationships=relationships
        )
        return {"first": first, "second": second, "retracted": True}


# -- integration, queries, time travel -------------------------------------------


def post_integrate(ctx: Context) -> Any:
    payload = ctx.body()
    sid = ctx.params["sid"]
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    result_name = payload.get("result_name", "integrated")
    if payload.get("mode", "sync") == "background":
        job = ctx.jobs.submit(
            ctx.tenant,
            "integrate",
            {
                "session_id": sid,
                "first": first,
                "second": second,
                "result_name": result_name,
            },
        )
        return _accepted(job)
    with ctx.manager.acquire(ctx.tenant, sid) as session:
        session.select_pair(first, second)
        result = session.integrate(result_name)
        return {
            "result_schema": result.schema.name,
            "summary": result.schema.summary(),
            "structures": len(result.nodes),
            "state_fingerprint": state_fingerprint(session),
        }


def post_replay(ctx: Context) -> Any:
    job = ctx.jobs.submit(
        ctx.tenant, "replay", {"session_id": ctx.params["sid"]}
    )
    return _accepted(job)


def post_query(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    text = ctx.require(payload, "request")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return session.execute_global_request(text).to_wire()


def post_undo(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"status": session.undo()}


def post_redo(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"status": session.redo()}


# -- replication ------------------------------------------------------------------


def _replication_plane(ctx: Context):
    plane = getattr(ctx.app, "replication", None)
    if plane is None:
        raise RouteNotFoundError(
            "replication is not configured on this service"
        )
    return plane


def _require_operator(ctx: Context) -> None:
    """Gate a replication control surface on the replication token.

    Tenant tokens never qualify: a tenant must not be able to fence a
    leader, trigger failover, or read another tenant's stream.  A node
    with no replication token configured refuses these outright.
    """
    if not ctx.operator:
        raise TenantAccessError(
            "this replication endpoint requires the node's configured "
            "replication token"
        )


def _require_stream_access(ctx: Context, tenant: str) -> None:
    """WAL/snapshot access: the operator, or the owning tenant itself."""
    if ctx.operator or ctx.tenant == tenant:
        return
    raise TenantAccessError(
        f"tenant {ctx.tenant!r} may not replicate sessions of {tenant!r}"
    )


def get_replication_status(ctx: Context) -> dict[str, Any]:
    """``GET /v1/replication/status`` — role, epoch, lag, followers.

    Followers poll this with a ``follower`` query id, which doubles as
    the heartbeat behind ``replication.followers_connected``.  Only
    replication-token holders count as followers; tenant tokens still
    read the status but cannot inflate the gauge.
    """
    plane = _replication_plane(ctx)
    if ctx.operator:
        plane.note_follower(ctx.request.query.get("follower"))
    status = plane.coordinator.status()
    lag = plane.lag_seconds()
    status["lag_seconds"] = (
        None if lag == float("inf") else round(lag, 3)
    )
    status["offset_behind"] = plane.offset_behind()
    status["followers_connected"] = plane.followers_connected()
    status["last_error"] = plane.last_error
    return status


def get_replication_sessions(ctx: Context) -> dict[str, Any]:
    """``GET /v1/replication/sessions`` — the leader's shipping inventory.

    The replication token sees every tenant's rows (that is what a
    follower replicates); a tenant token sees only its own.
    """
    plane = _replication_plane(ctx)
    inventory = getattr(ctx.manager, "replication_inventory", None)
    if inventory is None:
        raise NotLeaderError(plane.role, plane.coordinator.leader_url)
    rows = inventory()
    if ctx.operator:
        plane.note_follower(ctx.request.query.get("follower"))
    else:
        rows = [row for row in rows if row["tenant"] == ctx.tenant]
    return {"sessions": rows}


def get_replication_wal(ctx: Context) -> dict[str, Any]:
    """``GET /v1/replication/wal/{tenant}/{sid}`` — one shipment.

    Query ``generation``/``records`` carry the follower's cursor; the
    reply carries base64 wire frames in the on-disk WAL framing, so the
    follower re-verifies every CRC itself.  Requires the replication
    token, or a tenant token matching the path tenant.
    """
    plane = _replication_plane(ctx)
    tenant = ctx.params["tenant"]
    _require_stream_access(ctx, tenant)
    save_path = getattr(ctx.manager, "save_path", None)
    if save_path is None:
        raise NotLeaderError(plane.role, plane.coordinator.leader_url)
    if ctx.operator:
        plane.note_follower(ctx.request.query.get("follower"))
    sid = ctx.params["sid"]
    ctx.manager.require(tenant, sid)
    cursor = None
    generation = ctx.request.query.get("generation")
    if generation is not None:
        raw = ctx.request.query.get("records", "0")
        try:
            records = int(raw)
        except ValueError:
            raise BadRequestError("'records' must be an integer")
        cursor = ShipCursor(generation, records)
    shipment = WalShipper(Path(f"{save_path(tenant, sid)}.wal")).poll(
        cursor
    )
    frames = encode_frames(list(shipment.records))
    return {
        "generation": shipment.cursor.generation,
        "start": shipment.cursor.records - len(shipment.records),
        "records": len(shipment.records),
        "restarted": shipment.restarted,
        "damaged": shipment.damaged,
        "quarantined": list(shipment.quarantined),
        "frames": base64.b64encode(frames).decode("ascii"),
    }


def get_replication_snapshot(ctx: Context) -> dict[str, Any]:
    """``GET /v1/replication/snapshot/{tenant}/{sid}`` — full-state resync.

    Same access rule as the WAL endpoint: the replication token, or a
    tenant token matching the path tenant.
    """
    _replication_plane(ctx)
    tenant = ctx.params["tenant"]
    _require_stream_access(ctx, tenant)
    sid = ctx.params["sid"]
    with ctx.manager.acquire(tenant, sid) as session:
        kernel = session.analysis.kernel
        return {
            "state": kernel.export_state(),
            "offset": kernel.bus.offset,
            "fingerprint": state_fingerprint(session),
        }


def post_replication_promote(ctx: Context) -> dict[str, Any]:
    """``POST /v1/replication/promote`` — failover: follower takes over.

    Idempotent on a node that already leads; a fenced node refuses with
    the typed ``replication_fenced`` error.  Operator-only: promotion
    redirects every client's writes, so a tenant token must not be able
    to trigger it.
    """
    _require_operator(ctx)
    plane = _replication_plane(ctx)
    if plane.coordinator.role == "leader":
        status = plane.coordinator.status()
        status["materialized"] = []
        return status
    return plane.promote()


def post_replication_fence(ctx: Context) -> dict[str, Any]:
    """``POST /v1/replication/fence`` — present a higher epoch to a node.

    Operator-only: fencing is a durable write outage by design, so the
    epoch must come from a legitimate promotion exchange, not from any
    tenant guessing a large integer.
    """
    _require_operator(ctx)
    plane = _replication_plane(ctx)
    payload = ctx.body()
    epoch = ctx.require(payload, "epoch")
    if isinstance(epoch, bool) or not isinstance(epoch, int):
        raise BadRequestError("'epoch' must be an integer")
    leader_url = payload.get("leader_url")
    fenced_now = plane.coordinator.fence(epoch, leader_url=leader_url)
    status = plane.coordinator.status()
    status["fenced_now"] = fenced_now
    return status


# -- jobs ------------------------------------------------------------------------


class _Accepted(dict):
    """A handler result that overrides the route's success status."""

    status = 202


def _accepted(job) -> _Accepted:
    return _Accepted(job.to_wire())


def get_jobs(ctx: Context) -> dict[str, Any]:
    return {"jobs": [job.to_wire() for job in ctx.jobs.list(ctx.tenant)]}


def get_job(ctx: Context) -> dict[str, Any]:
    return ctx.jobs.get(ctx.tenant, ctx.params["jid"]).to_wire()


def delete_job(ctx: Context) -> dict[str, Any]:
    return ctx.jobs.cancel(ctx.tenant, ctx.params["jid"]).to_wire()


def build_router() -> Router:
    """The complete v1 route table."""
    router = Router()
    # meta
    router.add("GET", "/v1/healthz", get_healthz, auth=False)
    router.add("GET", "/v1/about", get_about, auth=False)
    router.add("GET", "/v1/stats", get_stats)
    # telemetry
    router.add("GET", "/v1/metrics", get_metrics, auth=False)
    router.add(
        "GET", "/v1/sessions/{sid}/events/stream", get_events_stream
    )
    router.add(
        "GET", "/v1/sessions/{sid}/spans/stream", get_spans_stream
    )
    # session lifecycle
    router.add("POST", "/v1/sessions", post_sessions, status=201)
    router.add("GET", "/v1/sessions", get_sessions)
    router.add("GET", "/v1/sessions/{sid}", get_session)
    router.add("DELETE", "/v1/sessions/{sid}", delete_session)
    router.add("POST", "/v1/sessions/{sid}/checkpoint", post_checkpoint)
    router.add("GET", "/v1/sessions/{sid}/recovery", get_recovery)
    # schemas
    router.add("POST", "/v1/sessions/{sid}/schemas", post_schemas, status=201)
    router.add("GET", "/v1/sessions/{sid}/schemas", get_schemas)
    router.add("GET", "/v1/sessions/{sid}/schemas/{name}", get_schema)
    router.add("DELETE", "/v1/sessions/{sid}/schemas/{name}", delete_schema)
    router.add(
        "POST",
        "/v1/sessions/{sid}/schemas/{name}/edits",
        post_schema_edits,
        status=201,
    )
    # analysis
    router.add(
        "POST", "/v1/sessions/{sid}/equivalences", post_equivalences,
        status=201,
    )
    router.add(
        "DELETE", "/v1/sessions/{sid}/equivalences", delete_equivalences
    )
    router.add("GET", "/v1/sessions/{sid}/candidates", get_candidates)
    router.add("GET", "/v1/sessions/{sid}/suggestions", get_suggestions)
    router.add(
        "POST",
        "/v1/sessions/{sid}/assertions/explain",
        post_assertions_explain,
    )
    router.add(
        "POST", "/v1/sessions/{sid}/assertions", post_assertions, status=201
    )
    router.add("DELETE", "/v1/sessions/{sid}/assertions", delete_assertions)
    # integration + operations
    router.add("POST", "/v1/sessions/{sid}/integrate", post_integrate)
    router.add("POST", "/v1/sessions/{sid}/replay", post_replay, status=202)
    router.add("POST", "/v1/sessions/{sid}/query", post_query)
    router.add("POST", "/v1/sessions/{sid}/undo", post_undo)
    router.add("POST", "/v1/sessions/{sid}/redo", post_redo)
    # replication plane: the configured replication token authenticates
    # as the operator; tenant tokens reach only their own stream (and
    # never the fence/promote controls)
    router.add(
        "GET", "/v1/replication/status", get_replication_status,
        auth="replication",
    )
    router.add(
        "GET", "/v1/replication/sessions", get_replication_sessions,
        auth="replication",
    )
    router.add(
        "GET", "/v1/replication/wal/{tenant}/{sid}", get_replication_wal,
        auth="replication",
    )
    router.add(
        "GET",
        "/v1/replication/snapshot/{tenant}/{sid}",
        get_replication_snapshot,
        auth="replication",
    )
    router.add(
        "POST", "/v1/replication/promote", post_replication_promote,
        auth="replication",
    )
    router.add(
        "POST", "/v1/replication/fence", post_replication_fence,
        auth="replication",
    )
    # jobs
    router.add("GET", "/v1/jobs", get_jobs)
    router.add("GET", "/v1/jobs/{jid}", get_job)
    router.add("DELETE", "/v1/jobs/{jid}", delete_job)
    return router


__all__ = [
    "Context",
    "Route",
    "Router",
    "build_router",
    "parse_kind",
]
