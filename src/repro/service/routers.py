"""The versioned route table: ``/v1/...`` paths onto session operations.

Routes are declared data — method, pattern, handler, auth flag, success
status — matched by :class:`Router`.  Handlers are small: authenticate
(done by the app before the handler runs), borrow the session from the
:class:`~repro.service.manager.SessionManager`, call the library, and
return a JSON-ready dict.  Error → status mapping happens centrally in
:mod:`repro.service.app` via the code table, never per route.

The path grammar is ``{name}`` placeholders over slash-separated
segments, e.g. ``/v1/sessions/{sid}/schemas/{name}``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.assertions.kinds import AssertionKind
from repro.ecr.ddl import parse_ddl, to_ddl
from repro.ecr.json_io import schema_to_dict
from repro.errors import UnknownNameError
from repro.service.errors import (
    BadRequestError,
    MethodNotAllowedError,
    RouteNotFoundError,
)
from repro.service.http import Request
from repro.service.manager import state_fingerprint

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.app import ServiceApp


@dataclass
class Context:
    """Everything a handler sees for one request."""

    app: "ServiceApp"
    request: Request
    params: dict[str, str]
    tenant: str | None = None

    @property
    def manager(self):
        return self.app.manager

    @property
    def jobs(self):
        return self.app.jobs

    def body(self) -> dict[str, Any]:
        return self.request.json_object()

    def require(self, payload: dict[str, Any], key: str) -> Any:
        try:
            return payload[key]
        except KeyError:
            raise BadRequestError(f"missing required field {key!r}")

    def flag(self, name: str) -> bool:
        value = self.request.query.get(name, "")
        return value.lower() in ("1", "true", "yes")


Handler = Callable[[Context], Any]


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    handler: Handler
    auth: bool = True
    status: int = 200
    regex: re.Pattern = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        escaped = re.sub(
            r"\{(\w+)\}", r"(?P<\1>[^/]+)", re.escape(self.pattern).replace(
                r"\{", "{"
            ).replace(r"\}", "}")
        )
        object.__setattr__(self, "regex", re.compile(f"^{escaped}$"))


class Router:
    """Matches (method, path) to a route and its extracted params."""

    def __init__(self, routes: list[Route] | None = None) -> None:
        self.routes: list[Route] = list(routes or ())

    def add(
        self,
        method: str,
        pattern: str,
        handler: Handler,
        *,
        auth: bool = True,
        status: int = 200,
    ) -> None:
        self.routes.append(
            Route(method.upper(), pattern, handler, auth, status)
        )

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        allowed: set[str] = set()
        for route in self.routes:
            found = route.regex.match(path)
            if not found:
                continue
            if route.method != method:
                allowed.add(route.method)
                continue
            return route, found.groupdict()
        if allowed:
            raise MethodNotAllowedError(
                f"{method} not allowed on {path}", tuple(allowed)
            )
        raise RouteNotFoundError(f"no route for {path}")


# -- shared helpers ---------------------------------------------------------------


def parse_kind(value: Any) -> AssertionKind:
    """An assertion kind from its menu code (0-5) or name."""
    if isinstance(value, bool):
        raise BadRequestError("assertion 'kind' must be a code or name")
    if isinstance(value, int):
        try:
            return AssertionKind(value)
        except ValueError:
            raise BadRequestError(f"unknown assertion code {value}")
    if isinstance(value, str):
        text = value.strip().upper()
        if text.isdigit():
            return parse_kind(int(text))
        try:
            return AssertionKind[text]
        except KeyError:
            raise BadRequestError(f"unknown assertion kind {value!r}")
    raise BadRequestError("assertion 'kind' must be a code or name")


def assertion_wire(assertion, relationships: bool) -> dict[str, Any]:
    return {
        "first": str(assertion.first),
        "second": str(assertion.second),
        "kind": assertion.kind.name,
        "kind_code": assertion.kind.code,
        "source": assertion.source.name,
        "note": assertion.note,
        "relationships": relationships,
    }


def session_detail(session, info) -> dict[str, Any]:
    kernel = session.analysis.kernel
    return {
        "session_id": info.session_id,
        "resident": info.resident,
        "pinned": info.pinned,
        "approx_bytes": info.approx_bytes,
        "schemas": sorted(session.schemas),
        "selected_pair": (
            list(session.selected_pair) if session.selected_pair else None
        ),
        "equivalence_classes": len(
            session.registry.nontrivial_classes()
        ),
        "head": kernel.head,
        "events": kernel.bus.offset,
        "integrated": (
            session.result.schema.name if session.result else None
        ),
        "state_fingerprint": state_fingerprint(session),
    }


# -- meta ------------------------------------------------------------------------


def get_healthz(ctx: Context) -> dict[str, Any]:
    return {"status": "ok"}


def get_about(ctx: Context) -> dict[str, Any]:
    import repro

    return {
        "service": "repro-integration-service",
        "version": repro.__version__,
        "api": "v1",
    }


def get_stats(ctx: Context) -> dict[str, Any]:
    jobs = ctx.jobs.list(ctx.tenant)
    return {
        "manager": ctx.manager.stats().to_wire(),
        "tenant": {
            "sessions": len(ctx.manager.sessions(ctx.tenant)),
            "jobs": len(jobs),
            "jobs_pending": sum(
                1 for job in jobs if job.state in ("queued", "running")
            ),
        },
    }


# -- sessions --------------------------------------------------------------------


def post_sessions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    session_id = ctx.require(payload, "session_id")
    if not isinstance(session_id, str):
        raise BadRequestError("'session_id' must be a string")
    info = ctx.manager.create(ctx.tenant, session_id)
    return info.to_wire()


def get_sessions(ctx: Context) -> dict[str, Any]:
    return {
        "sessions": [
            info.to_wire() for info in ctx.manager.sessions(ctx.tenant)
        ]
    }


def get_session(ctx: Context) -> dict[str, Any]:
    sid = ctx.params["sid"]
    with ctx.manager.acquire(ctx.tenant, sid) as session:
        infos = {
            info.session_id: info
            for info in ctx.manager.sessions(ctx.tenant)
        }
        return session_detail(session, infos[sid])


def delete_session(ctx: Context) -> dict[str, Any]:
    sid = ctx.params["sid"]
    if ctx.flag("purge"):
        ctx.manager.purge(ctx.tenant, sid)
        return {"session_id": sid, "purged": True}
    evicted = ctx.manager.evict(ctx.tenant, sid)
    return {"session_id": sid, "evicted": evicted}


def post_checkpoint(ctx: Context) -> dict[str, Any]:
    info = ctx.manager.checkpoint(ctx.tenant, ctx.params["sid"])
    return info.to_wire()


def get_recovery(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        info = session.recovery_info()
        return {"recovery": info.to_wire() if info else None}


# -- schemas ---------------------------------------------------------------------


def post_schemas(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    name = payload.get("name")
    ddl = payload.get("ddl")
    if ddl is None and name is None:
        raise BadRequestError("provide 'ddl' text and/or a schema 'name'")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ddl is not None:
            if not isinstance(ddl, str):
                raise BadRequestError("'ddl' must be a string")
            schema = parse_ddl(ddl)
            if name is not None and name != schema.name:
                raise BadRequestError(
                    f"body says name {name!r} but the DDL defines "
                    f"{schema.name!r}"
                )
            session.adopt_schema(schema)
            added = schema.name
        else:
            session.add_schema(name)
            added = name
        return {"schema": added, "schemas": sorted(session.schemas)}


def get_schemas(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"schemas": sorted(session.schemas)}


def get_schema(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ctx.params["name"] not in session.schemas:
            raise UnknownNameError("schema", ctx.params["name"])
        schema = session.schema(ctx.params["name"])
        return {
            "name": schema.name,
            "ddl": to_ddl(schema),
            "schema": schema_to_dict(schema),
        }


def delete_schema(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        if ctx.params["name"] not in session.schemas:
            raise UnknownNameError("schema", ctx.params["name"])
        session.delete_schema(ctx.params["name"])
        return {"schemas": sorted(session.schemas)}


# -- analysis: equivalences, candidates, assertions ------------------------------


def post_equivalences(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        issues = session.analysis.declare_equivalent(first, second)
        return {
            "first": first,
            "second": second,
            "issues": [str(issue) for issue in issues],
        }


def delete_equivalences(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    ref = ctx.require(payload, "ref")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        session.analysis.remove_from_class(ref)
        return {"ref": ref, "removed": True}


def get_candidates(ctx: Context) -> dict[str, Any]:
    query = ctx.request.query
    first = query.get("first")
    second = query.get("second")
    if not first or not second:
        raise BadRequestError(
            "candidates need 'first' and 'second' schema query parameters"
        )
    relationships = ctx.flag("relationships")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        pairs = session.analysis.candidate_pairs(
            first, second, relationships=relationships
        )
        return {
            "candidates": [
                {
                    "first": str(pair.first),
                    "second": str(pair.second),
                    "equivalent_attributes": pair.equivalent_attributes,
                    "attribute_ratio": pair.attribute_ratio,
                }
                for pair in pairs
            ]
        }


def post_assertions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    kind = parse_kind(ctx.require(payload, "kind"))
    relationships = bool(payload.get("relationships", False))
    note = payload.get("note", "")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        assertion = session.analysis.specify(
            first, second, kind, relationships=relationships, note=note
        )
        return assertion_wire(assertion, relationships)


def delete_assertions(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    relationships = bool(payload.get("relationships", False))
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        session.analysis.retract(
            first, second, relationships=relationships
        )
        return {"first": first, "second": second, "retracted": True}


# -- integration, queries, time travel -------------------------------------------


def post_integrate(ctx: Context) -> Any:
    payload = ctx.body()
    sid = ctx.params["sid"]
    first = ctx.require(payload, "first")
    second = ctx.require(payload, "second")
    result_name = payload.get("result_name", "integrated")
    if payload.get("mode", "sync") == "background":
        job = ctx.jobs.submit(
            ctx.tenant,
            "integrate",
            {
                "session_id": sid,
                "first": first,
                "second": second,
                "result_name": result_name,
            },
        )
        return _accepted(job)
    with ctx.manager.acquire(ctx.tenant, sid) as session:
        session.select_pair(first, second)
        result = session.integrate(result_name)
        return {
            "result_schema": result.schema.name,
            "summary": result.schema.summary(),
            "structures": len(result.nodes),
            "state_fingerprint": state_fingerprint(session),
        }


def post_replay(ctx: Context) -> Any:
    job = ctx.jobs.submit(
        ctx.tenant, "replay", {"session_id": ctx.params["sid"]}
    )
    return _accepted(job)


def post_query(ctx: Context) -> dict[str, Any]:
    payload = ctx.body()
    text = ctx.require(payload, "request")
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return session.execute_global_request(text).to_wire()


def post_undo(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"status": session.undo()}


def post_redo(ctx: Context) -> dict[str, Any]:
    with ctx.manager.acquire(ctx.tenant, ctx.params["sid"]) as session:
        return {"status": session.redo()}


# -- jobs ------------------------------------------------------------------------


class _Accepted(dict):
    """A handler result that overrides the route's success status."""

    status = 202


def _accepted(job) -> _Accepted:
    return _Accepted(job.to_wire())


def get_jobs(ctx: Context) -> dict[str, Any]:
    return {"jobs": [job.to_wire() for job in ctx.jobs.list(ctx.tenant)]}


def get_job(ctx: Context) -> dict[str, Any]:
    return ctx.jobs.get(ctx.tenant, ctx.params["jid"]).to_wire()


def delete_job(ctx: Context) -> dict[str, Any]:
    return ctx.jobs.cancel(ctx.tenant, ctx.params["jid"]).to_wire()


def build_router() -> Router:
    """The complete v1 route table."""
    router = Router()
    # meta
    router.add("GET", "/v1/healthz", get_healthz, auth=False)
    router.add("GET", "/v1/about", get_about, auth=False)
    router.add("GET", "/v1/stats", get_stats)
    # session lifecycle
    router.add("POST", "/v1/sessions", post_sessions, status=201)
    router.add("GET", "/v1/sessions", get_sessions)
    router.add("GET", "/v1/sessions/{sid}", get_session)
    router.add("DELETE", "/v1/sessions/{sid}", delete_session)
    router.add("POST", "/v1/sessions/{sid}/checkpoint", post_checkpoint)
    router.add("GET", "/v1/sessions/{sid}/recovery", get_recovery)
    # schemas
    router.add("POST", "/v1/sessions/{sid}/schemas", post_schemas, status=201)
    router.add("GET", "/v1/sessions/{sid}/schemas", get_schemas)
    router.add("GET", "/v1/sessions/{sid}/schemas/{name}", get_schema)
    router.add("DELETE", "/v1/sessions/{sid}/schemas/{name}", delete_schema)
    # analysis
    router.add(
        "POST", "/v1/sessions/{sid}/equivalences", post_equivalences,
        status=201,
    )
    router.add(
        "DELETE", "/v1/sessions/{sid}/equivalences", delete_equivalences
    )
    router.add("GET", "/v1/sessions/{sid}/candidates", get_candidates)
    router.add(
        "POST", "/v1/sessions/{sid}/assertions", post_assertions, status=201
    )
    router.add("DELETE", "/v1/sessions/{sid}/assertions", delete_assertions)
    # integration + operations
    router.add("POST", "/v1/sessions/{sid}/integrate", post_integrate)
    router.add("POST", "/v1/sessions/{sid}/replay", post_replay, status=202)
    router.add("POST", "/v1/sessions/{sid}/query", post_query)
    router.add("POST", "/v1/sessions/{sid}/undo", post_undo)
    router.add("POST", "/v1/sessions/{sid}/redo", post_redo)
    # jobs
    router.add("GET", "/v1/jobs", get_jobs)
    router.add("GET", "/v1/jobs/{jid}", get_job)
    router.add("DELETE", "/v1/jobs/{jid}", delete_job)
    return router


__all__ = [
    "Context",
    "Route",
    "Router",
    "build_router",
    "parse_kind",
]
