"""The service application: dispatch, error mapping, and the asyncio server.

:class:`ServiceApp` is the synchronous heart — ``dispatch(request)``
routes, authenticates, runs the handler, and maps any
:class:`~repro.errors.ReproError` to a response through the single
code → status table.  Tests drive it in-process without sockets.

Every dispatch is **request-correlated**: an ``X-Request-Id`` is accepted
from the client (or generated), bound to the handler thread, wrapped in a
``service.request`` tracer span, stamped on the response header, emitted
in the structured JSON access log, and — because kernel-bus taps and job
workers read the thread-bound id — carried by every kernel event and
span the request produces.  :class:`ServiceTelemetry` owns the metrics
registry behind ``GET /v1/metrics`` and the two SSE fan-out hubs behind
``/v1/sessions/{id}/events/stream`` and ``…/spans/stream``.

:func:`serve` wraps the app in a pure-stdlib ``asyncio`` HTTP/1.1
server: connections are parsed on the event loop, each request is
dispatched on a thread pool (handlers hold per-session locks and do
real CPU work), and responses stream back with keep-alive.  A
:class:`~repro.service.http.StreamingResponse` switches the connection
to incremental writes driven from a dedicated streaming pool.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    RollingLatency,
    StreamHub,
    accept_request_id,
    current_request_id,
    labeled,
    render_prometheus,
    set_request_id,
)
from repro.obs.trace import Span, Tracer, get_tracer, use_tracer
from repro.service.auth import TenantAuth
from repro.service.errors import MethodNotAllowedError, status_for
from repro.service.http import (
    Request,
    Response,
    StreamingResponse,
    read_request,
)
from repro.service.jobs import JobQueue
from repro.service.manager import SessionManager
from repro.service.routers import Context, Router, build_router

log = logging.getLogger("repro.service")

#: request-duration histogram bucket bounds, in seconds
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)


@dataclass
class _RequestInfo:
    """What dispatch learns about a request as routing/auth proceed."""

    request_id: str = ""
    route: str | None = None
    tenant: str | None = None
    session_id: str | None = None


class ServiceTelemetry:
    """The service's live telemetry plane: metrics, hubs, correlation.

    One instance per :class:`ServiceApp`.  It owns

    * the :class:`~repro.obs.metrics.MetricsRegistry` rendered at
      ``GET /v1/metrics`` (request counters, rolling latency quantiles,
      session-manager and job-queue gauges, federation breaker health,
      SSE delivery counters), and
    * the two :class:`~repro.obs.telemetry.StreamHub`\\ s fanning kernel
      events and tracer spans out to SSE subscribers, keyed by
      ``(tenant, session_id)``, with drop-oldest backpressure per
      subscriber.

    ``enabled=False`` turns the whole plane off (the benchmark's
    baseline): dispatch skips tracing, metrics and access logging.
    """

    def __init__(self, *, enabled: bool = True, ring_size: int = 256) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.latency = RollingLatency()
        self.events_hub = StreamHub(maxlen=ring_size)
        self.spans_hub = StreamHub(maxlen=ring_size)
        events_streamed = self.registry.counter(
            labeled("repro_sse_events_total", kind="events")
        )
        spans_streamed = self.registry.counter(
            labeled("repro_sse_events_total", kind="spans")
        )
        self.events_hub.on_publish = lambda key: events_streamed.inc()
        self.spans_hub.on_publish = lambda key: spans_streamed.inc()
        #: (method, route, status, tenant) -> (counter, histogram); avoids
        #: re-rendering label strings on every request
        self._request_series: dict[tuple, tuple] = {}
        #: live kernel-bus taps: (tenant, sid) -> [subscription, refcount]
        self._taps: dict[tuple[str, str], list[Any]] = {}
        self._tap_lock = threading.Lock()

    # -- request metrics ---------------------------------------------------------

    def observe_request(
        self,
        *,
        method: str,
        route: str,
        tenant: str | None,
        status: int,
        seconds: float,
    ) -> None:
        who = tenant or "-"
        series_key = (method, route, status, who)
        handles = self._request_series.get(series_key)
        if handles is None:
            # registry get-or-create is locked, so a racing duplicate
            # here still lands on the same underlying metric objects
            handles = self._request_series[series_key] = (
                self.registry.counter(
                    labeled(
                        "repro_http_requests_total",
                        method=method,
                        route=route,
                        status=status,
                        tenant=who,
                    )
                ),
                self.registry.histogram(
                    labeled(
                        "repro_http_request_duration_seconds",
                        route=route,
                        tenant=who,
                    ),
                    buckets=LATENCY_BUCKETS,
                ),
            )
        counter, histogram = handles
        counter.inc()
        histogram.observe(seconds)
        self.latency.observe((who, route), seconds)

    # -- streaming ---------------------------------------------------------------

    def publish_spans(
        self,
        key: tuple[str, str],
        spans: list[Span],
        request_id: str | None,
    ) -> None:
        """Fan finished spans out to the session's SSE subscribers.

        Publishes raw ``(span, request_id)`` pairs — serialisation is
        deferred to the spans endpoint's ``span_frame`` transform on
        the *consumer's* pump thread, so the request thread pays only
        the ring append.
        """
        if not spans or not self.spans_hub.watched(key):
            return
        rid = request_id or ""
        self.spans_hub.publish_many(key, [(span, rid) for span in spans])

    def span_sink(
        self, key: tuple[str, str], request_id: str | None
    ) -> "Callable[[Span], None]":
        """A tracer sink that streams each finished span *tree*.

        Spans buffer until their root (depth 0) closes, then the whole
        tree flushes as one burst — one consumer wake-up and one SSE
        chunk per request or job, not one per span.
        """
        buffer: list[Span] = []

        def sink(span: Span) -> None:
            buffer.append(span)
            if span.depth == 0 or len(buffer) >= 64:
                self.publish_spans(key, buffer, request_id)
                buffer.clear()

        return sink

    def publish_event(self, key: tuple[str, str], event: Any) -> None:
        """Fan one live kernel event out, stamped with the request id.

        Runs on the *publishing* thread — the request handler or job
        worker that committed the event — so the thread-bound request id
        is exactly the one that caused the mutation.
        """
        self.events_hub.publish(
            key,
            {
                "seq": event.offset,
                "txn": event.txn,
                "scope": event.scope,
                "action": event.action,
                "payload": event.payload,
                "request_id": current_request_id() or "",
            },
        )

    def attach_event_tap(self, key: tuple[str, str], bus: Any) -> None:
        """Ref-counted live-only bus tap feeding the events hub.

        The first subscriber for a session attaches the tap; later ones
        share it, so every SSE consumer sees each event exactly once.
        """
        with self._tap_lock:
            entry = self._taps.get(key)
            if entry is not None:
                entry[1] += 1
                return
            subscription = bus.subscribe(
                lambda event: self.publish_event(key, event),
                live_only=True,
            )
            self._taps[key] = [subscription, 1]

    def release_event_tap(self, key: tuple[str, str]) -> None:
        with self._tap_lock:
            entry = self._taps.get(key)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                entry[0].cancel()
                del self._taps[key]

    # -- scrape-time collection --------------------------------------------------

    def _sync_counter(self, series: str, value: int) -> None:
        """Advance a registry counter to an externally tracked total."""
        counter = self.registry.counter(series)
        if value > counter.value:
            counter.inc(value - counter.value)

    def collect(self, app: "ServiceApp") -> None:
        """Refresh point-in-time gauges just before rendering a scrape."""
        gauge = self.registry.gauge
        stats = app.manager.stats()
        gauge("repro_sessions_resident").set(stats.resident_sessions)
        gauge("repro_sessions_known").set(stats.known_sessions)
        gauge("repro_sessions_resident_bytes").set(stats.resident_bytes)
        gauge("repro_sessions_max_resident").set(stats.max_resident)
        self._sync_counter(
            "repro_sessions_evictions_total", stats.evictions
        )
        self._sync_counter(
            "repro_sessions_rehydrations_total", stats.rehydrations
        )
        job_stats = app.jobs.stats()
        gauge("repro_jobs_queue_depth").set(job_stats.pop("queue_depth"))
        for state, count in job_stats.items():
            gauge(labeled("repro_jobs", state=state)).set(count)
        for kind, hub in (
            ("events", self.events_hub),
            ("spans", self.spans_hub),
        ):
            gauge(labeled("repro_sse_subscribers", kind=kind)).set(
                hub.subscriber_count()
            )
            self._sync_counter(
                labeled("repro_sse_dropped_total", kind=kind),
                hub.dropped_total(),
            )
        for entry in app.manager.federation_snapshot():
            for component, state in entry["breakers"].items():
                gauge(
                    labeled(
                        "repro_federation_breaker_state",
                        tenant=entry["tenant"],
                        session=entry["session_id"],
                        component=component,
                    )
                ).set(state)
            self._sync_counter(
                labeled(
                    "repro_federation_retries_total",
                    tenant=entry["tenant"],
                    session=entry["session_id"],
                ),
                entry["retries"],
            )
        plane = getattr(app, "replication", None)
        if plane is not None:
            lag = plane.lag_seconds()
            if lag == float("inf"):
                # not yet bootstrapped: report the lag bound's ceiling
                # rather than an unrepresentable infinity
                lag = plane.max_lag_s
            gauge("replication.lag_seconds").set(round(lag, 3))
            gauge("replication.offset_behind").set(plane.offset_behind())
            gauge("replication.followers_connected").set(
                plane.followers_connected()
            )
        for key in self.latency.keys():
            tenant, route = key
            quantiles = self.latency.quantiles(key)
            if not quantiles:
                continue
            for quantile, seconds in quantiles.items():
                gauge(
                    labeled(
                        "repro_http_request_latency_seconds",
                        route=route,
                        tenant=tenant,
                        quantile=f"{quantile:g}",
                    )
                ).set(round(seconds, 6))

    def render(self, app: "ServiceApp") -> str:
        """Collect gauges and render the Prometheus exposition text."""
        self.collect(app)
        return render_prometheus(self.registry)


class ServiceApp:
    """Routes + auth + session manager + job queue, behind one dispatch."""

    def __init__(
        self,
        root: str | Path,
        *,
        auth: TenantAuth | None = None,
        manager: SessionManager | None = None,
        router: Router | None = None,
        max_resident: int = 8,
        max_resident_bytes: int | None = None,
        job_workers: int = 1,
        telemetry: bool = True,
        replica_of: str | None = None,
        replication_token: str | None = None,
        replication_link: Any | None = None,
        max_lag_s: float = 2.0,
        replication_poll_s: float = 0.25,
        replication_autostart: bool = True,
    ) -> None:
        self.auth = auth or TenantAuth()
        self.manager = manager or SessionManager(
            root,
            max_resident=max_resident,
            max_resident_bytes=max_resident_bytes,
        )
        self.router = router or build_router()
        self.telemetry = ServiceTelemetry(enabled=telemetry)
        self.jobs = JobQueue(
            self.manager,
            workers=job_workers,
            telemetry=self.telemetry if telemetry else None,
        )
        # the replication plane always exists: on a plain leader it is a
        # cheap role check per write, and loading any persisted
        # replication.json is what keeps a fenced ex-leader fenced
        # across restarts.  ``replica_of`` (or an injected link, for
        # socketless tests) turns the node into a follower: the manager
        # is swapped for the read-only replica view and the pump starts.
        from repro.service.replication import ReplicationPlane

        self.replication = ReplicationPlane.attach(
            self,
            Path(root),
            replica_of=replica_of,
            token=replication_token,
            link=replication_link,
            max_lag_s=max_lag_s,
            poll_s=replication_poll_s,
            autostart=replication_autostart,
        )

    def close(self) -> None:
        """Stop workers and checkpoint every resident session."""
        self.replication.stop()
        self.jobs.stop()
        self.manager.shutdown()

    # -- the one place requests become responses ---------------------------------

    def _spans_watched(self, path: str) -> bool:
        """Does some spans-stream subscriber care about this request?

        A pre-routing check: watchers key on ``(tenant, sid)``, and only
        ``/v1/sessions/{sid}/…`` requests can touch a session, so the
        sid is read straight off the path.  A sid collision across
        tenants merely traces a request whose spans then fail the
        per-key ``watched`` check at publish — wasted work, never a
        cross-tenant leak.
        """
        hub = self.telemetry.spans_hub
        if not hub.any_watched():
            return False
        if not path.startswith("/v1/sessions/"):
            return False
        sid = path[13:].partition("/")[0]
        return any(key[1] == sid for key in hub.watched_keys())

    def dispatch(self, request: Request) -> Response | StreamingResponse:
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._handle(request, _RequestInfo())
        started = time.perf_counter()
        request_id = accept_request_id(request.headers.get("x-request-id"))
        info = _RequestInfo(request_id=request_id)
        set_request_id(request_id)
        try:
            # tracing on demand: spans only exist to be streamed live, so
            # the tracer is installed only while somebody is consuming a
            # spans stream *for the session this request targets* —
            # every other request keeps span() a no-op
            if self._spans_watched(request.path):
                tracer = Tracer()
                with use_tracer(tracer):
                    with tracer.span(
                        "service.request",
                        request_id=request_id,
                        method=request.method,
                        path=request.path,
                    ) as root:
                        response = self._handle(request, info)
                        root.attrs["status"] = response.status
                        if info.route is not None:
                            root.attrs["route"] = info.route
                        if info.tenant is not None:
                            root.attrs["tenant"] = info.tenant
            else:
                response = self._handle(request, info)
        finally:
            set_request_id(None)
        elapsed = time.perf_counter() - started
        route = info.route or "(unmatched)"
        telemetry.observe_request(
            method=request.method,
            route=route,
            tenant=info.tenant,
            status=response.status,
            seconds=elapsed,
        )
        self._access_log(request, response, info, elapsed)
        response.headers.setdefault("x-request-id", request_id)
        return response

    def _handle(
        self, request: Request, info: _RequestInfo
    ) -> Response | StreamingResponse:
        try:
            route, params = self.router.match(request.method, request.path)
            info.route = route.pattern
            context = Context(
                app=self,
                request=request,
                params=params,
                request_id=info.request_id,
            )
            if route.auth:
                # replication-plane routes accept the node's configured
                # replication token as an operator credential; anything
                # else falls through to ordinary tenant authentication
                token = request.auth_token
                if (
                    route.auth == "replication"
                    and token is not None
                    and self.replication.is_operator_token(token)
                ):
                    context.operator = True
                else:
                    context.tenant = self.auth.authenticate(request)
                    info.tenant = context.tenant
            self.replication.enforce(route, context)
            sid = params.get("sid")
            if sid is not None:
                info.session_id = sid
                if self.telemetry.enabled and context.tenant is not None:
                    key = (context.tenant, sid)
                    request_id = info.request_id
                    tracer = get_tracer()
                    if tracer is not None:
                        tracer.add_sink(
                            self.telemetry.span_sink(key, request_id)
                        )
            payload = route.handler(context)
            if isinstance(payload, (Response, StreamingResponse)):
                return payload
            status = getattr(payload, "status", route.status)
            return Response.json(payload, status=status)
        except MethodNotAllowedError as exc:
            response = Response.json({"error": exc.to_wire()}, status=405)
            response.headers["allow"] = ", ".join(sorted(exc.allowed))
            return response
        except ReproError as exc:
            response = Response.json(
                {"error": exc.to_wire()}, status=status_for(exc)
            )
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                # degradation contract: a lagging replica tells clients
                # when a retry is worth it instead of failing opaquely
                response.headers["retry-after"] = str(
                    max(1, math.ceil(float(retry_after)))
                )
            return response
        except Exception as exc:  # noqa: BLE001 - the service must answer
            log.error(
                "unhandled error on %s %s\n%s",
                request.method,
                request.path,
                traceback.format_exc(),
            )
            return Response.json(
                {
                    "error": {
                        "code": "internal_error",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                },
                status=500,
            )

    def _access_log(
        self,
        request: Request,
        response: Response | StreamingResponse,
        info: _RequestInfo,
        elapsed: float,
    ) -> None:
        """One structured JSON line per request on the service logger."""
        if not log.isEnabledFor(logging.INFO):
            return
        body = getattr(response, "body", b"")
        record = {
            "event": "request",
            "request_id": info.request_id,
            "method": request.method,
            "path": request.path,
            "route": info.route,
            "status": response.status,
            "tenant": info.tenant,
            "session_id": info.session_id,
            "duration_ms": round(elapsed * 1000, 3),
            "bytes": len(body),
            "streaming": isinstance(response, StreamingResponse),
        }
        log.info(json.dumps(record, sort_keys=True))


def _next_chunk(iterator) -> bytes | None:
    try:
        return next(iterator)
    except StopIteration:
        return None


async def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    executor_workers: int = 8,
    stream_workers: int = 8,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Run the HTTP server until cancelled."""
    loop = asyncio.get_running_loop()
    executor = ThreadPoolExecutor(
        max_workers=executor_workers, thread_name_prefix="repro-service"
    )
    # SSE streams block a thread while waiting for the next item; a
    # dedicated pool keeps long-lived streams from starving dispatch.
    stream_executor = ThreadPoolExecutor(
        max_workers=stream_workers, thread_name_prefix="repro-stream"
    )

    async def pump_stream(
        writer: asyncio.StreamWriter, response: StreamingResponse
    ) -> None:
        writer.write(response.encode_head())
        await writer.drain()
        iterator = response.chunks
        try:
            while True:
                chunk = await loop.run_in_executor(
                    stream_executor, _next_chunk, iterator
                )
                if chunk is None:
                    break
                writer.write(chunk)
                await writer.drain()
        finally:
            # run generator cleanup (unsubscribe, unpin) off the loop
            try:
                await loop.run_in_executor(stream_executor, response.close)
            except RuntimeError:  # pool already shut down
                response.close()

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ReproError as exc:
                    writer.write(
                        Response.json(
                            {"error": exc.to_wire()}, status=status_for(exc)
                        ).encode(close=True)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await loop.run_in_executor(
                    executor, app.dispatch, request
                )
                if isinstance(response, StreamingResponse):
                    await pump_stream(writer, response)
                    break  # streams always close the connection
                keep_alive = request.keep_alive
                writer.write(response.encode(close=not keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    log.info("repro service listening on %s", addresses)
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        stream_executor.shutdown(wait=False, cancel_futures=True)


def run(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Blocking entry point: serve until interrupted, then close cleanly."""
    try:
        asyncio.run(serve(app, host, port))
    except KeyboardInterrupt:
        pass
    finally:
        app.close()


def app_from_config(path: str | Path) -> tuple[ServiceApp, str, int]:
    """Build an app from a JSON config file.

    ::

        {
          "root": "var/service",
          "host": "127.0.0.1",
          "port": 8080,
          "max_resident": 8,
          "max_resident_bytes": null,
          "telemetry": true,
          "tenants": {"token-string": "tenant-name"},
          "replica_of": null,
          "replication_token": null,
          "max_lag_s": 2.0,
          "replication_poll_s": 0.25
        }

    ``replication_token`` is the shared replication-plane secret: a
    replica presents it to its leader, and every node requires it for
    the ``/v1/replication`` control surfaces (fence, promote) and for
    cross-tenant WAL/snapshot fetches.
    """
    config: dict[str, Any] = json.loads(Path(path).read_text("utf-8"))
    auth = TenantAuth.from_tokens(config.get("tenants", {}))
    app = ServiceApp(
        config.get("root", "var/service"),
        auth=auth,
        max_resident=config.get("max_resident", 8),
        max_resident_bytes=config.get("max_resident_bytes"),
        job_workers=config.get("job_workers", 1),
        telemetry=bool(config.get("telemetry", True)),
        replica_of=config.get("replica_of"),
        replication_token=config.get("replication_token"),
        max_lag_s=float(config.get("max_lag_s", 2.0)),
        replication_poll_s=float(config.get("replication_poll_s", 0.25)),
    )
    return app, config.get("host", "127.0.0.1"), int(config.get("port", 8080))


__all__ = [
    "ServiceApp",
    "ServiceTelemetry",
    "app_from_config",
    "run",
    "serve",
]
