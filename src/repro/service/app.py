"""The service application: dispatch, error mapping, and the asyncio server.

:class:`ServiceApp` is the synchronous heart — ``dispatch(request)``
routes, authenticates, runs the handler, and maps any
:class:`~repro.errors.ReproError` to a response through the single
code → status table.  Tests drive it in-process without sockets.

:func:`serve` wraps the app in a pure-stdlib ``asyncio`` HTTP/1.1
server: connections are parsed on the event loop, each request is
dispatched on a thread pool (handlers hold per-session locks and do
real CPU work), and responses stream back with keep-alive.
"""

from __future__ import annotations

import asyncio
import json
import logging
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.service.auth import TenantAuth
from repro.service.errors import MethodNotAllowedError, status_for
from repro.service.http import Request, Response, read_request
from repro.service.jobs import JobQueue
from repro.service.manager import SessionManager
from repro.service.routers import Context, Router, build_router

log = logging.getLogger("repro.service")


class ServiceApp:
    """Routes + auth + session manager + job queue, behind one dispatch."""

    def __init__(
        self,
        root: str | Path,
        *,
        auth: TenantAuth | None = None,
        manager: SessionManager | None = None,
        router: Router | None = None,
        max_resident: int = 8,
        max_resident_bytes: int | None = None,
        job_workers: int = 1,
    ) -> None:
        self.auth = auth or TenantAuth()
        self.manager = manager or SessionManager(
            root,
            max_resident=max_resident,
            max_resident_bytes=max_resident_bytes,
        )
        self.router = router or build_router()
        self.jobs = JobQueue(self.manager, workers=job_workers)

    def close(self) -> None:
        """Stop workers and checkpoint every resident session."""
        self.jobs.stop()
        self.manager.shutdown()

    # -- the one place requests become responses ---------------------------------

    def dispatch(self, request: Request) -> Response:
        try:
            route, params = self.router.match(request.method, request.path)
            context = Context(app=self, request=request, params=params)
            if route.auth:
                context.tenant = self.auth.authenticate(request)
            payload = route.handler(context)
            status = getattr(payload, "status", route.status)
            return Response.json(payload, status=status)
        except MethodNotAllowedError as exc:
            response = Response.json({"error": exc.to_wire()}, status=405)
            response.headers["allow"] = ", ".join(sorted(exc.allowed))
            return response
        except ReproError as exc:
            return Response.json(
                {"error": exc.to_wire()}, status=status_for(exc)
            )
        except Exception as exc:  # noqa: BLE001 - the service must answer
            log.error(
                "unhandled error on %s %s\n%s",
                request.method,
                request.path,
                traceback.format_exc(),
            )
            return Response.json(
                {
                    "error": {
                        "code": "internal_error",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                },
                status=500,
            )


async def serve(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    executor_workers: int = 8,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Run the HTTP server until cancelled."""
    loop = asyncio.get_running_loop()
    executor = ThreadPoolExecutor(
        max_workers=executor_workers, thread_name_prefix="repro-service"
    )

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ReproError as exc:
                    writer.write(
                        Response.json(
                            {"error": exc.to_wire()}, status=status_for(exc)
                        ).encode(close=True)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await loop.run_in_executor(
                    executor, app.dispatch, request
                )
                keep_alive = request.keep_alive
                writer.write(response.encode(close=not keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle, host, port)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    log.info("repro service listening on %s", addresses)
    if ready is not None:
        ready.set()
    try:
        async with server:
            await server.serve_forever()
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def run(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Blocking entry point: serve until interrupted, then close cleanly."""
    try:
        asyncio.run(serve(app, host, port))
    except KeyboardInterrupt:
        pass
    finally:
        app.close()


def app_from_config(path: str | Path) -> tuple[ServiceApp, str, int]:
    """Build an app from a JSON config file.

    ::

        {
          "root": "var/service",
          "host": "127.0.0.1",
          "port": 8080,
          "max_resident": 8,
          "max_resident_bytes": null,
          "tenants": {"token-string": "tenant-name"}
        }
    """
    config: dict[str, Any] = json.loads(Path(path).read_text("utf-8"))
    auth = TenantAuth.from_tokens(config.get("tenants", {}))
    app = ServiceApp(
        config.get("root", "var/service"),
        auth=auth,
        max_resident=config.get("max_resident", 8),
        max_resident_bytes=config.get("max_resident_bytes"),
        job_workers=config.get("job_workers", 1),
    )
    return app, config.get("host", "127.0.0.1"), int(config.get("port", 8080))


__all__ = ["ServiceApp", "app_from_config", "run", "serve"]
