"""``python -m repro.service`` — start the integration service."""

from __future__ import annotations

import argparse
import logging

from repro.service.app import ServiceApp, app_from_config, run
from repro.service.auth import TenantAuth


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Multi-tenant schema-integration service (v1 API).",
    )
    parser.add_argument(
        "--root",
        default="var/service",
        help="directory holding per-tenant session checkpoints + WALs",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--token",
        action="append",
        default=[],
        metavar="TENANT:TOKEN",
        help="register a tenant token (repeatable)",
    )
    parser.add_argument(
        "--config",
        help="JSON config file (overrides --root/--host/--port/--token)",
    )
    parser.add_argument(
        "--max-resident",
        type=int,
        default=8,
        help="max kernels resident in memory before LRU eviction",
    )
    parser.add_argument(
        "--max-resident-bytes",
        type=int,
        default=None,
        help="approximate memory watermark for resident kernels",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the telemetry plane (/v1/metrics, SSE, tracing)",
    )
    parser.add_argument(
        "--replica-of",
        metavar="URL",
        help="follow the leader at URL as a read-only replica",
    )
    parser.add_argument(
        "--replica-token",
        metavar="TOKEN",
        help=(
            "shared replication-plane secret: presented to the leader "
            "by a replica, and required by this node on the "
            "/v1/replication control surfaces (fence, promote) and for "
            "cross-tenant WAL/snapshot fetches"
        ),
    )
    parser.add_argument(
        "--max-lag-s",
        type=float,
        default=2.0,
        help="refuse replica reads older than this many seconds (503)",
    )
    parser.add_argument(
        "--replication-poll-s",
        type=float,
        default=0.25,
        help="replica pump poll interval in seconds",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="root log level (access logs emit at info)",
    )
    parser.add_argument(
        "--access-log",
        metavar="PATH",
        help="also append structured JSON access-log lines to this file",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(message)s",
    )
    if args.access_log:
        # the repro.service logger emits one JSON object per request;
        # mirror those lines verbatim into the requested file
        handler = logging.FileHandler(args.access_log, encoding="utf-8")
        handler.setFormatter(logging.Formatter("%(message)s"))
        handler.setLevel(logging.INFO)
        logging.getLogger("repro.service").addHandler(handler)

    if args.config:
        app, host, port = app_from_config(args.config)
    else:
        auth = TenantAuth()
        for spec in args.token:
            tenant, sep, token = spec.partition(":")
            if not sep:
                parser.error(f"--token wants TENANT:TOKEN, got {spec!r}")
            auth.add_token(tenant, token)
        app = ServiceApp(
            args.root,
            auth=auth,
            max_resident=args.max_resident,
            max_resident_bytes=args.max_resident_bytes,
            telemetry=not args.no_telemetry,
            replica_of=args.replica_of,
            replication_token=args.replica_token,
            max_lag_s=args.max_lag_s,
            replication_poll_s=args.replication_poll_s,
        )
        host, port = args.host, args.port
    run(app, host, port)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
