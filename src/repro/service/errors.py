"""Service-tier errors and the single code → HTTP status table.

The service never catches concrete exception classes per route.  Every
failure — a library error escaping a session operation, or one of the
service's own errors below — carries a stable machine-readable
``code`` (:attr:`repro.errors.ReproError.code`), and
:data:`STATUS_BY_CODE` maps codes to HTTP statuses in one place.  Codes
missing from the table default to 400 (the request was well-formed HTTP
but the operation was invalid); anything that is not a
:class:`~repro.errors.ReproError` at all is a 500.

Adding an error class therefore means: subclass :class:`ReproError`
(directly or via :class:`ServiceError`), pick an unused code, and add a
row here if 400 is the wrong status.  ``tests/test_errors.py`` enforces
code uniqueness across the library and the service.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServiceError(ReproError):
    """Base class for errors raised by the service tier itself."""

    code = "service_error"


class AuthenticationError(ServiceError):
    """The request carried no token, or one no tenant is bound to."""

    code = "auth_required"


class TenantAccessError(ServiceError):
    """An authenticated tenant addressed another tenant's resource."""

    code = "tenant_forbidden"


class BadRequestError(ServiceError):
    """The request body or parameters are malformed for this endpoint."""

    code = "bad_request"


class RouteNotFoundError(ServiceError):
    """No route matches the request path."""

    code = "route_not_found"


class MethodNotAllowedError(ServiceError):
    """The path exists but not for this HTTP method."""

    code = "method_not_allowed"

    def __init__(self, message: str, allowed: tuple[str, ...] = ()) -> None:
        self.allowed = allowed
        super().__init__(message)

    def wire_details(self):
        return {"allowed": sorted(self.allowed)} if self.allowed else {}


class UnknownSessionError(ServiceError):
    """The tenant has no session (resident or checkpointed) by this id."""

    code = "session_not_found"

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        super().__init__(f"no session {session_id!r} for this tenant")

    def wire_details(self):
        return {"session_id": self.session_id}


class SessionExistsError(ServiceError):
    """A create collided with an existing session id."""

    code = "session_exists"

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        super().__init__(f"session {session_id!r} already exists")

    def wire_details(self):
        return {"session_id": self.session_id}


class SessionBusyError(ServiceError):
    """The session cannot be evicted/served right now (pinned or in use).

    Raised in particular when an explicit eviction hits a session a
    background job has pinned — parking a kernel mid-job would checkpoint
    a state the job is still mutating.
    """

    code = "session_busy"


class BadSessionIdError(ServiceError):
    """A session id failed validation (path-unsafe or empty)."""

    code = "session_id_invalid"

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        super().__init__(
            f"invalid session id {session_id!r} "
            "(use letters, digits, '.', '_', '-')"
        )


class CapacityError(ServiceError):
    """A tenant or the service hit a configured quota."""

    code = "capacity_exceeded"


class JobNotFoundError(ServiceError):
    """The tenant has no background job by this id."""

    code = "job_not_found"

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"no job {job_id!r} for this tenant")

    def wire_details(self):
        return {"job_id": self.job_id}


class JobStateError(ServiceError):
    """The job is not in a state the operation applies to."""

    code = "job_invalid_state"


#: The one place codes become HTTP statuses.  Routes never map errors
#: themselves; :meth:`repro.service.app.ServiceApp.dispatch` consults
#: this table for every failure.
STATUS_BY_CODE: dict[str, int] = {
    # -- service tier ---------------------------------------------------------
    "auth_required": 401,
    "tenant_forbidden": 403,
    "route_not_found": 404,
    "session_not_found": 404,
    "job_not_found": 404,
    "method_not_allowed": 405,
    "session_exists": 409,
    "session_busy": 409,
    "job_invalid_state": 409,
    "capacity_exceeded": 429,
    "bad_request": 400,
    "session_id_invalid": 400,
    "service_error": 500,
    # -- library: missing things --------------------------------------------
    "unknown_name": 404,
    "dictionary_not_found": 404,
    # -- library: conflicts ---------------------------------------------------
    "duplicate_name": 409,
    "assertion_conflict": 409,
    "solver_inconsistent": 409,
    # -- library: durable state damaged or unreadable — server-side faults ---
    "dictionary_corrupt": 500,
    "dictionary_format_unsupported": 500,
    "dictionary_error": 500,
    "wal_misuse": 500,
    "kernel_invalid": 500,
    "replay_diverged": 500,
    "repro_error": 500,
    # -- library: downstream components -------------------------------------
    "federation_failed": 502,
    "backend_failed": 502,
    # -- replication: routing failures are retryable 503s, stream
    #    failures are server faults ----------------------------------------
    "replication_not_leader": 503,
    "replication_fenced": 503,
    "replica_lagging": 503,
    "replication_gap": 500,
    "replication_error": 500,
}

#: Statuses for well-formed requests whose *operation* was invalid.
DEFAULT_STATUS = 400


def status_for_code(code: str) -> int:
    """The HTTP status a given error code maps to."""
    return STATUS_BY_CODE.get(code, DEFAULT_STATUS)


def status_for(error: BaseException) -> int:
    """The HTTP status for any exception the service caught."""
    if isinstance(error, ReproError):
        return status_for_code(error.code)
    return 500


__all__ = [
    "AuthenticationError",
    "BadRequestError",
    "BadSessionIdError",
    "CapacityError",
    "DEFAULT_STATUS",
    "JobNotFoundError",
    "JobStateError",
    "MethodNotAllowedError",
    "RouteNotFoundError",
    "STATUS_BY_CODE",
    "ServiceError",
    "SessionBusyError",
    "SessionExistsError",
    "TenantAccessError",
    "UnknownSessionError",
    "status_for",
    "status_for_code",
]
