"""Minimal HTTP/1.1 framing over asyncio streams — no dependencies.

The container ships no ASGI framework, so the service speaks HTTP
directly: request-line + headers + ``Content-Length`` body in,
status-line + headers + JSON body out.  The subset is deliberately
small — no chunked uploads, no multipart, no TLS — because every
endpoint exchanges small JSON documents; anything outside the subset
gets a clean 400/413 rather than undefined behaviour.

:class:`Request` / :class:`Response` are also the in-process test
surface: ``ServiceApp.dispatch`` takes a :class:`Request` and returns a
:class:`Response`, so route tests never need a socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Iterator
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.service.errors import BadRequestError

#: largest accepted request body (a schema DDL is a few KB; 4 MiB is generous)
MAX_BODY_BYTES = 4 * 1024 * 1024
#: largest accepted request head (request line + headers)
MAX_HEAD_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body as JSON; ``{}`` when empty.  Raises 400-shaped errors."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}")

    def json_object(self) -> dict[str, Any]:
        """The body as a JSON object (the common endpoint contract)."""
        payload = self.json()
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    @property
    def auth_token(self) -> str | None:
        """The bearer token, if the request carries one."""
        header = self.headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        if scheme.lower() == "bearer" and token.strip():
            return token.strip()
        return None

    @property
    def keep_alive(self) -> bool:
        """Whether the client wants the connection kept open."""
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response; :meth:`encode` renders the bytes on the wire."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return cls(
            status=status,
            headers={"content-type": "application/json; charset=utf-8"},
            body=body,
        )

    def json_payload(self) -> Any:
        """Decode the body back to JSON (test convenience)."""
        return json.loads(self.body) if self.body else None

    def encode(self, *, close: bool = False) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-length", str(len(self.body)))
        headers.setdefault("connection", "close" if close else "keep-alive")
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + self.body


@dataclass
class StreamingResponse:
    """A response whose body is produced incrementally (SSE endpoints).

    ``chunks`` is a **blocking** byte iterator; the asyncio server drives
    it on a worker thread and writes each chunk as it arrives.  There is
    no ``Content-Length`` — the connection closes when the iterator is
    exhausted, which is how HTTP/1.1 delimits the body.  In-process tests
    iterate ``chunks`` directly, no socket needed.  The server (or the
    test) must ``close()`` the iterator if it abandons the stream early,
    so generator cleanup (unsubscribe, unpin) runs.
    """

    chunks: "Iterator[bytes]"
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def sse(
        cls, chunks: "Iterator[bytes]", status: int = 200
    ) -> "StreamingResponse":
        return cls(
            chunks=chunks,
            status=status,
            headers={
                "content-type": "text/event-stream; charset=utf-8",
                "cache-control": "no-cache",
                "x-accel-buffering": "no",
            },
        )

    def encode_head(self) -> bytes:
        """Status line + headers only; the body streams afterwards."""
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("connection", "close")
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    def close(self) -> None:
        """Abandon the stream; runs the generator's cleanup."""
        closer = getattr(self.chunks, "close", None)
        if closer is not None:
            closer()


def parse_target(target: str) -> tuple[str, dict[str, str]]:
    """Split a request target into a decoded path and a flat query dict."""
    parts = urlsplit(target)
    query = {key: value for key, value in parse_qsl(parts.query)}
    return unquote(parts.path), query


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`BadRequestError` on malformed framing — the caller
    answers 400 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise BadRequestError("truncated request head")
    except asyncio.LimitOverrunError:
        raise BadRequestError("request head too large")
    if len(head) > MAX_HEAD_BYTES:
        raise BadRequestError("request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise BadRequestError("undecodable request head")
    request_line, _, header_block = text.partition("\r\n")
    pieces = request_line.split()
    if len(pieces) != 3:
        raise BadRequestError(f"malformed request line {request_line!r}")
    method, target, version = pieces
    if not version.startswith("HTTP/1."):
        raise BadRequestError(f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise BadRequestError("chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequestError(f"bad content-length {length_text!r}")
    if length < 0 or length > max_body:
        raise BadRequestError("request body too large")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequestError("truncated request body")
    path, query = parse_target(target)
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


__all__ = [
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "StreamingResponse",
    "parse_target",
    "read_request",
]
