"""Background jobs: submit → poll → progress streamed from tracer spans.

Long operations — a full integration, an audit replay that re-derives a
session's state from its event log — would hold an HTTP worker (and the
session lock) for their whole duration.  The :class:`JobQueue` runs them
on worker threads instead: ``POST`` returns ``202`` with a job id, and
``GET /v1/jobs/<id>`` polls state, explicit progress notes, and the
spans the :mod:`repro.obs` tracer has finished so far — a live view of
*where inside* the integration the job currently is.

While a job runs, the target session is **pinned** in the
:class:`~repro.service.manager.SessionManager`: auto-eviction skips it
and an explicit eviction is refused with
:class:`~repro.service.errors.SessionBusyError` — parking a kernel
mid-job would checkpoint a state the job is still mutating.

Every job runs under its **own** thread-local tracer
(:class:`~repro.obs.trace.use_tracer`), so concurrent jobs trace
independently, and carries the ``X-Request-Id`` of the request that
submitted it — bound to the worker thread while the job runs, so kernel
events and spans the job produces stream over SSE stamped with the same
id as the submitting request's access-log line.
"""

from __future__ import annotations

import queue
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ReplayError, ReproError
from repro.obs.telemetry import (
    current_request_id,
    new_request_id,
    set_request_id,
)
from repro.obs.trace import Tracer, use_tracer
from repro.service.errors import (
    BadRequestError,
    CapacityError,
    JobNotFoundError,
    JobStateError,
)
from repro.service.manager import SessionManager, state_fingerprint
from repro.tool.session import ToolSession

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.app import ServiceTelemetry

QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a poll can observe; terminal ones never change again
JOB_STATES = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})


@dataclass
class Job:
    """One background job and everything a poll may want to see."""

    job_id: str
    tenant: str
    kind: str
    params: dict[str, Any]
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    #: explicit progress notes the handler appends as it goes
    progress: list[str] = field(default_factory=list)
    #: this job's private tracer (installed thread-locally while it runs)
    tracer: Tracer | None = None
    #: the ``X-Request-Id`` of the request that submitted the job
    request_id: str = ""

    def note(self, message: str) -> None:
        self.progress.append(message)

    def spans_so_far(self) -> list[dict[str, Any]]:
        """Finished tracer spans, compact: name, depth, milliseconds."""
        tracer = self.tracer
        if tracer is None:
            return []
        # snapshot: the worker appends concurrently (list.append is atomic)
        return [
            {
                "name": record.name,
                "depth": record.depth,
                "ms": round(record.duration * 1000, 3),
            }
            for record in list(tracer.spans)
        ]

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "request_id": self.request_id,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "progress": list(self.progress),
            "spans": self.spans_so_far(),
        }
        if self.result is not None:
            wire["result"] = self.result
        if self.error is not None:
            wire["error"] = self.error
        return wire


JobHandler = Callable[[SessionManager, Job], dict[str, Any]]


def run_integrate(manager: SessionManager, job: Job) -> dict[str, Any]:
    """Job kind ``integrate``: Phase 4 over a selected pair, checkpointed."""
    params = job.params
    session_id = params["session_id"]
    first, second = params["first"], params["second"]
    result_name = params.get("result_name", "integrated")
    with manager.pinned(job.tenant, session_id):
        job.note("waiting for session")
        with manager.acquire(job.tenant, session_id) as session:
            job.note(f"integrating {first} + {second} -> {result_name}")
            session.select_pair(first, second)
            result = session.integrate(result_name)
            fingerprint = state_fingerprint(session)
        job.note("checkpointing")
        manager.checkpoint(job.tenant, session_id)
    return {
        "result_schema": result.schema.name,
        "summary": result.schema.summary(),
        "structures": len(result.nodes),
        "state_fingerprint": fingerprint,
    }


def run_replay(manager: SessionManager, job: Job) -> dict[str, Any]:
    """Job kind ``replay``: audit the session's event log end to end.

    Exports the kernel state, re-derives a fresh session from it
    (nearest snapshot + tail replay — the same machinery recovery uses)
    and verifies the replica's state fingerprint matches the live one.
    """
    session_id = job.params["session_id"]
    with manager.pinned(job.tenant, session_id):
        job.note("exporting kernel state")
        with manager.acquire(job.tenant, session_id) as session:
            state = session.analysis.kernel.export_state()
            live = state_fingerprint(session)
        events = len(state.get("events", ()))
        job.note(f"replaying {events} event(s)")
        replica = ToolSession.from_kernel_state(state)
        replayed = state_fingerprint(replica)
    if replayed != live:
        raise ReplayError(
            f"audit replay diverged: live {live[:12]} vs replayed "
            f"{replayed[:12]}"
        )
    job.note("fingerprints match")
    return {
        "verified": True,
        "events": events,
        "state_fingerprint": live,
    }


class JobQueue:
    """Worker threads draining a bounded queue of background jobs."""

    #: built-in job kinds; instances may :meth:`register` more
    KINDS: dict[str, JobHandler] = {
        "integrate": run_integrate,
        "replay": run_replay,
    }

    def __init__(
        self,
        manager: SessionManager,
        *,
        workers: int = 1,
        max_queued: int = 256,
        telemetry: "ServiceTelemetry | None" = None,
    ) -> None:
        self.manager = manager
        self.workers = max(1, int(workers))
        self.max_queued = max_queued
        self.telemetry = telemetry
        self._kinds = dict(self.KINDS)
        self._jobs: dict[str, Job] = {}
        self._mutex = threading.Lock()
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker,
                name=f"repro-service-job-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads.clear()
        self._started = False

    def register(self, kind: str, handler: JobHandler) -> None:
        """Add (or override) a job kind on this queue instance."""
        self._kinds[kind] = handler

    # -- submission and polling --------------------------------------------------

    def submit(
        self, tenant: str, kind: str, params: dict[str, Any]
    ) -> Job:
        handler = self._kinds.get(kind)
        if handler is None:
            raise BadRequestError(
                f"unknown job kind {kind!r} "
                f"(known: {', '.join(sorted(self._kinds))})"
            )
        session_id = params.get("session_id")
        if not isinstance(session_id, str) or not session_id:
            raise BadRequestError("job params need a 'session_id'")
        # fail fast on missing sessions: 404 at submit, not a failed job
        self.manager.sessions(tenant)  # validates tenant name
        if session_id not in {
            info.session_id for info in self.manager.sessions(tenant)
        }:
            from repro.service.errors import UnknownSessionError

            raise UnknownSessionError(session_id)
        with self._mutex:
            backlog = sum(
                1
                for job in self._jobs.values()
                if job.state in (QUEUED, RUNNING)
            )
            if backlog >= self.max_queued:
                raise CapacityError(
                    f"job queue is full ({self.max_queued} pending)"
                )
            job = Job(
                job_id=f"j-{secrets.token_hex(6)}",
                tenant=tenant,
                kind=kind,
                params=dict(params),
                # inherit the submitting request's id so the job's spans
                # and kernel events correlate with the 202 response
                request_id=current_request_id() or new_request_id(),
            )
            self._jobs[job.job_id] = job
        self.start()
        self._queue.put(job.job_id)
        return job

    def get(self, tenant: str, job_id: str) -> Job:
        with self._mutex:
            job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            raise JobNotFoundError(job_id)
        return job

    def list(self, tenant: str) -> list[Job]:
        with self._mutex:
            return sorted(
                (
                    job
                    for job in self._jobs.values()
                    if job.tenant == tenant
                ),
                key=lambda job: job.created,
            )

    def cancel(self, tenant: str, job_id: str) -> Job:
        """Cancel a job that has not started; running jobs finish."""
        job = self.get(tenant, job_id)
        with self._mutex:
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                return job
        raise JobStateError(
            f"job {job_id!r} is {job.state}; only queued jobs cancel"
        )

    def wait(self, tenant: str, job_id: str, timeout: float = 30.0) -> Job:
        """Block until the job reaches a terminal state (tests, scripts)."""
        deadline = time.monotonic() + timeout
        job = self.get(tenant, job_id)
        while job.state not in TERMINAL_STATES:
            if time.monotonic() > deadline:
                raise JobStateError(
                    f"job {job_id!r} still {job.state} after {timeout}s"
                )
            time.sleep(0.01)
        return job

    # -- the workers -------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._mutex:
                job = self._jobs.get(job_id)
                if job is None or job.state != QUEUED:
                    continue  # cancelled while queued
                job.state = RUNNING
                job.started = time.time()
            self._run(job)

    def _run(self, job: Job) -> None:
        handler = self._kinds[job.kind]
        job.tracer = Tracer()
        session_id = job.params.get("session_id")
        if self.telemetry is not None and session_id:
            key = (job.tenant, session_id)
            request_id = job.request_id
            job.tracer.add_sink(
                self.telemetry.span_sink(key, request_id)
            )
        # bind the submitting request's id to this worker thread so
        # kernel events the job commits stream with the same id
        set_request_id(job.request_id or None)
        try:
            with use_tracer(job.tracer):
                with job.tracer.span(
                    f"service.job.{job.kind}",
                    job_id=job.job_id,
                    request_id=job.request_id,
                ):
                    result = handler(self.manager, job)
        except ReproError as exc:
            job.error = exc.to_wire()
            job.state = FAILED
        except Exception as exc:  # jobs never take a worker down
            job.error = {"code": "internal_error", "message": str(exc)}
            job.state = FAILED
        else:
            job.result = result
            job.state = SUCCEEDED
        finally:
            set_request_id(None)
            job.finished = time.time()

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Job counts per state plus the queue depth (for the gauges)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._mutex:
            for job in self._jobs.values():
                counts[job.state] += 1
        counts["queue_depth"] = counts[QUEUED]
        return counts


__all__ = [
    "CANCELLED",
    "FAILED",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "QUEUED",
    "RUNNING",
    "SUCCEEDED",
    "TERMINAL_STATES",
    "run_integrate",
    "run_replay",
]
