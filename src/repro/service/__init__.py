"""``repro.service`` — the multi-tenant async integration service.

The library (:mod:`repro.tool`, :mod:`repro.kernel`) stays single-user;
this package puts a versioned HTTP API in front of it:

- :class:`ServiceApp` — routes, auth, and the single error → status map
- :class:`SessionManager` — bounded resident kernels, LRU + memory
  watermark eviction to WAL-backed checkpoints, rehydration on demand
- :class:`JobQueue` — background integrations and audit replays with
  progress streamed from the :mod:`repro.obs` tracer
- :class:`TenantAuth` — bearer tokens, digest-only storage, strict
  per-tenant isolation of save/WAL paths

``python -m repro.service --root var/service --token demo:demo-token``
starts a server; see ``docs/SERVICE.md`` for the endpoint reference.
"""

from repro.service.app import (
    ServiceApp,
    ServiceTelemetry,
    app_from_config,
    run,
    serve,
)
from repro.service.auth import TenantAuth, require_safe_name
from repro.service.errors import (
    AuthenticationError,
    BadRequestError,
    BadSessionIdError,
    CapacityError,
    JobNotFoundError,
    JobStateError,
    MethodNotAllowedError,
    RouteNotFoundError,
    ServiceError,
    SessionBusyError,
    SessionExistsError,
    TenantAccessError,
    UnknownSessionError,
    status_for,
    status_for_code,
)
from repro.service.http import Request, Response, StreamingResponse
from repro.service.jobs import JOB_STATES, Job, JobQueue
from repro.service.manager import (
    ManagerStats,
    SessionInfo,
    SessionManager,
    state_fingerprint,
)
from repro.service.replication import (
    HttpLeaderLink,
    InProcessLeaderLink,
    ReplicaSessionManager,
    ReplicationPlane,
)
from repro.service.routers import Router, build_router

__all__ = [
    "AuthenticationError",
    "BadRequestError",
    "BadSessionIdError",
    "CapacityError",
    "HttpLeaderLink",
    "InProcessLeaderLink",
    "JOB_STATES",
    "Job",
    "JobNotFoundError",
    "JobQueue",
    "JobStateError",
    "ManagerStats",
    "MethodNotAllowedError",
    "ReplicaSessionManager",
    "ReplicationPlane",
    "Request",
    "Response",
    "RouteNotFoundError",
    "Router",
    "ServiceApp",
    "ServiceError",
    "ServiceTelemetry",
    "SessionBusyError",
    "SessionExistsError",
    "SessionInfo",
    "SessionManager",
    "StreamingResponse",
    "TenantAccessError",
    "TenantAuth",
    "UnknownSessionError",
    "app_from_config",
    "build_router",
    "require_safe_name",
    "run",
    "serve",
    "state_fingerprint",
    "status_for",
    "status_for_code",
]
