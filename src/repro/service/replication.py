"""Service wiring for WAL-shipped read replicas.

Three pieces turn :mod:`repro.replication` into ``--replica-of``:

* :class:`ReplicationPlane` — one per :class:`ServiceApp`.  On a leader
  it is almost free: a role check per write and a follower registry for
  the ``replication.followers_connected`` gauge.  On a replica it owns
  the pump thread that polls the leader (status → inventory → per-
  session WAL fetch → apply), the lag bookkeeping behind the
  ``max_lag_s`` / ``X-Repro-Min-Offset`` read guards, and
  :meth:`promote` — the failover path that materializes every applier
  into real durable sessions and swaps the app onto its local
  :class:`~repro.service.manager.SessionManager`.

* :class:`ReplicaSessionManager` — a read-only stand-in for the session
  manager while the node follows: ``acquire`` hands out the appliers'
  live rebuilt sessions, so every read-only ``/v1`` handler (schemas,
  pairs, stats, suggestions, federated queries) works unchanged on a
  follower.

* Leader links — :class:`HttpLeaderLink` speaks the ``/v1/replication``
  wire protocol over stdlib HTTP; :class:`InProcessLeaderLink` drives a
  leader app's ``dispatch`` directly, which is what lets the tests (and
  the chaos harness) run a leader/replica pair deterministically in one
  process with no sockets.

Writes on a non-leader are refused before the handler runs
(:meth:`ReplicationPlane.enforce`), with the typed
``replication_not_leader`` / ``replication_fenced`` errors mapping to
503 so clients fail over instead of retrying blindly.

The plane also owns the **replication credential**: the shared
``replication_token`` a replica presents to its leader doubles as the
operator token each node requires on the ``/v1/replication`` control
surfaces (fence, promote) and for cross-tenant WAL/snapshot fetches —
tenant tokens only ever reach their own stream
(:meth:`ReplicationPlane.is_operator_token`).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import http.client
import json
import threading
import time
import urllib.parse
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.replication.applier import ReplicaApplier
from repro.replication.coordinator import ReplicationCoordinator
from repro.replication.errors import (
    NotLeaderError,
    ReplicaLagError,
    ReplicationError,
    ReplicationGapError,
)
from repro.replication.frames import decode_frames
from repro.replication.shipper import ShipCursor, Shipment
from repro.service.auth import require_safe_name
from repro.service.errors import UnknownSessionError
from repro.service.manager import (
    ManagerStats,
    SessionInfo,
    SessionManager,
    state_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.app import ServiceApp
    from repro.tool.session import ToolSession

#: POST routes that are semantically reads and stay replica-served
READ_ONLY_POSTS = frozenset(
    {
        "/v1/sessions/{sid}/query",
        "/v1/sessions/{sid}/assertions/explain",
    }
)

#: a follower counts as connected if seen within this many seconds
FOLLOWER_WINDOW_S = 15.0


# -- leader links ---------------------------------------------------------------


class InProcessLeaderLink:
    """Drive a leader :class:`ServiceApp` directly — no sockets.

    The deterministic test/chaos transport: every exchange is one
    ``dispatch`` call on the leader app, so a replica's ``sync_once``
    is fully synchronous and fault-injection plans hit leader-side
    crashpoints in the same process.
    """

    def __init__(
        self, leader_app: "ServiceApp", token: str, *,
        follower_id: str | None = None,
    ) -> None:
        self.leader_app = leader_app
        self.token = token
        self.follower_id = follower_id or uuid.uuid4().hex[:12]

    def _call(
        self,
        method: str,
        path: str,
        *,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        from repro.service.http import Request

        response = self.leader_app.dispatch(
            Request(
                method=method,
                path=path,
                query=dict(query or {}),
                headers={"authorization": f"Bearer {self.token}"},
                body=(
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                ),
            )
        )
        payload = response.json_payload()
        if response.status >= 400:
            raise ReplicationError(
                f"leader answered {response.status} on {method} {path}: "
                f"{payload}"
            )
        return payload

    def status(self) -> dict[str, Any]:
        return self._call(
            "GET",
            "/v1/replication/status",
            query={"follower": self.follower_id},
        )

    def inventory(self) -> list[dict[str, Any]]:
        reply = self._call(
            "GET",
            "/v1/replication/sessions",
            query={"follower": self.follower_id},
        )
        return list(reply.get("sessions", ()))

    def fetch_wal(
        self, tenant: str, session_id: str, cursor: ShipCursor | None
    ) -> dict[str, Any]:
        query = {"follower": self.follower_id}
        if cursor is not None:
            query["generation"] = cursor.generation
            query["records"] = str(cursor.records)
        return self._call(
            "GET",
            f"/v1/replication/wal/{tenant}/{session_id}",
            query=query,
        )

    def fetch_snapshot(
        self, tenant: str, session_id: str
    ) -> dict[str, Any]:
        return self._call(
            "GET", f"/v1/replication/snapshot/{tenant}/{session_id}"
        )

    def fence(self, epoch: int) -> dict[str, Any]:
        return self._call(
            "POST", "/v1/replication/fence", body={"epoch": int(epoch)}
        )


class HttpLeaderLink:
    """The same protocol over a real HTTP connection (stdlib only)."""

    def __init__(
        self, leader_url: str, token: str, *,
        follower_id: str | None = None, timeout: float = 10.0,
    ) -> None:
        self.leader_url = leader_url.rstrip("/")
        self.token = token
        self.follower_id = follower_id or uuid.uuid4().hex[:12]
        self.timeout = timeout

    def _call(
        self,
        method: str,
        path: str,
        *,
        query: dict[str, str] | None = None,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        parsed = urllib.parse.urlsplit(self.leader_url)
        factory = (
            http.client.HTTPSConnection
            if parsed.scheme == "https"
            else http.client.HTTPConnection
        )
        connection = factory(
            parsed.hostname, parsed.port, timeout=self.timeout
        )
        if query:
            path = f"{path}?{urllib.parse.urlencode(query)}"
        headers = {"Authorization": f"Bearer {self.token}"}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        decoded = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ReplicationError(
                f"leader answered {response.status} on {method} {path}: "
                f"{decoded}"
            )
        return decoded

    status = InProcessLeaderLink.status
    inventory = InProcessLeaderLink.inventory
    fetch_wal = InProcessLeaderLink.fetch_wal
    fetch_snapshot = InProcessLeaderLink.fetch_snapshot
    fence = InProcessLeaderLink.fence


# -- the replica-mode session manager -------------------------------------------


class ReplicaSessionManager:
    """Read-only manager view over the plane's live appliers.

    Duck-types the :class:`SessionManager` surface the read handlers
    and the telemetry collector touch.  Writes never reach it — the
    plane's :meth:`~ReplicationPlane.enforce` refuses them first — so
    mutating methods are deliberately absent.
    """

    def __init__(self, plane: "ReplicationPlane", local: SessionManager):
        self.plane = plane
        self.local = local
        self._locks: dict[tuple[str, str], threading.RLock] = {}
        self._mutex = threading.Lock()

    def _lock_for(self, key: tuple[str, str]) -> threading.RLock:
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.RLock()
            return lock

    def _applier(self, tenant: str, session_id: str) -> ReplicaApplier:
        require_safe_name("tenant", tenant)
        require_safe_name("session id", session_id)
        applier = self.plane.applier_for(tenant, session_id)
        if applier is None or applier.state() is None:
            raise UnknownSessionError(session_id)
        return applier

    @contextmanager
    def acquire(
        self, tenant: str, session_id: str
    ) -> Iterator["ToolSession"]:
        applier = self._applier(tenant, session_id)
        with self._lock_for((tenant, session_id)):
            session = applier.session()
            if session is None:  # pragma: no cover - state checked above
                raise UnknownSessionError(session_id)
            yield session

    def require(self, tenant: str, session_id: str) -> None:
        self._applier(tenant, session_id)

    def sessions(self, tenant: str) -> list[SessionInfo]:
        require_safe_name("tenant", tenant)
        rows = []
        for (owner, session_id), applier in sorted(
            self.plane.appliers().items()
        ):
            if owner != tenant or applier.state() is None:
                continue
            rows.append(
                SessionInfo(
                    session_id=session_id,
                    resident=True,
                    pinned=False,
                    approx_bytes=0,
                )
            )
        return rows

    def fingerprint(self, tenant: str, session_id: str) -> str:
        with self.acquire(tenant, session_id) as session:
            return state_fingerprint(session)

    # pinning is a leader-side eviction concern; replicas never evict,
    # but pin() keeps the events-stream handler's 404 contract
    def pin(self, tenant: str, session_id: str) -> None:
        self._applier(tenant, session_id)

    def unpin(self, tenant: str, session_id: str) -> None:
        return None

    @contextmanager
    def pinned(self, tenant: str, session_id: str) -> Iterator[None]:
        self.pin(tenant, session_id)
        yield

    def stats(self) -> ManagerStats:
        appliers = self.plane.appliers()
        live = sum(
            1 for applier in appliers.values()
            if applier.state() is not None
        )
        return ManagerStats(
            resident_sessions=live,
            known_sessions=len(appliers),
            resident_bytes=0,
            max_resident=self.local.max_resident,
            max_resident_bytes=self.local.max_resident_bytes,
            evictions=0,
            rehydrations=0,
        )

    def federation_snapshot(self) -> list[dict[str, Any]]:
        return []

    def shutdown(self) -> int:
        return self.local.shutdown()


# -- the plane ------------------------------------------------------------------


class ReplicationPlane:
    """Role enforcement, pump, lag accounting and promotion for one app."""

    def __init__(
        self,
        app: "ServiceApp",
        coordinator: ReplicationCoordinator,
        *,
        link: InProcessLeaderLink | HttpLeaderLink | None = None,
        token: str | None = None,
        max_lag_s: float = 2.0,
        poll_s: float = 0.25,
    ) -> None:
        self.app = app
        self.coordinator = coordinator
        self.link = link
        # only the digest is kept, mirroring TenantAuth: a process dump
        # never yields the usable replication credential
        self._token_digest = (
            hashlib.sha256(token.encode("utf-8")).hexdigest()
            if token
            else None
        )
        self.max_lag_s = max_lag_s
        self.poll_s = poll_s
        self.local: SessionManager = app.manager
        self._appliers: dict[tuple[str, str], ReplicaApplier] = {}
        self._followers: dict[str, float] = {}
        self._mutex = threading.Lock()
        self._pump: threading.Thread | None = None
        self._stop = threading.Event()
        self._last_sync_at: float | None = None
        self._last_caught_up_at: float | None = None
        self.last_error: str | None = None
        self.promoted_at: float | None = None

    @classmethod
    def attach(
        cls,
        app: "ServiceApp",
        root: Path,
        *,
        replica_of: str | None = None,
        token: str | None = None,
        link: InProcessLeaderLink | HttpLeaderLink | None = None,
        max_lag_s: float = 2.0,
        poll_s: float = 0.25,
        autostart: bool = True,
    ) -> "ReplicationPlane":
        """Build the plane for an app; replica mode swaps the manager.

        The coordinator state file (``replication.json`` under the
        service root) is loaded when present, so a fenced ex-leader
        restarts fenced.
        """
        role = "replica" if replica_of or link else "leader"
        coordinator = ReplicationCoordinator(
            Path(root) / "replication.json",
            role=role,
            leader_url=replica_of,
        )
        if replica_of or link:
            # normalize a stale persisted leader role; fenced stays fenced
            coordinator.follow(replica_of)
        plane = cls(
            app,
            coordinator,
            link=link,
            token=token,
            max_lag_s=max_lag_s,
            poll_s=poll_s,
        )
        if coordinator.role == "replica":
            if plane.link is None:
                if not replica_of:
                    raise ReplicationError(
                        "replica mode needs a leader URL or link"
                    )
                plane.link = HttpLeaderLink(replica_of, token or "")
            app.manager = ReplicaSessionManager(plane, plane.local)
            if autostart:
                plane.start()
        return plane

    # -- role / request gating ------------------------------------------------

    @property
    def role(self) -> str:
        return self.coordinator.role

    def is_operator_token(self, token: str) -> bool:
        """Is this bearer token the node's replication credential?

        False whenever no replication token is configured — the control
        surfaces (fence, promote, cross-tenant stream access) are then
        unreachable rather than open.
        """
        if self._token_digest is None:
            return False
        presented = hashlib.sha256(token.encode("utf-8")).hexdigest()
        return hmac.compare_digest(self._token_digest, presented)

    def enforce(self, route, ctx) -> None:
        """The per-request gate, between auth and the handler.

        Writes anywhere but a leader get the typed 503; session reads
        on a replica get the lag and read-your-writes guards.
        """
        if route.pattern.startswith("/v1/replication"):
            return
        method = route.method
        if method in ("POST", "PUT", "PATCH", "DELETE"):
            if route.pattern not in READ_ONLY_POSTS:
                self.coordinator.require_writable()
                return
        if self.coordinator.role != "replica":
            return
        sid = ctx.params.get("sid")
        if sid is None or ctx.tenant is None:
            return
        applier = self.applier_for(ctx.tenant, sid)
        if applier is None:
            return  # the handler will 404 with the usual error
        lag = self.lag_seconds()
        if lag > self.max_lag_s:
            raise ReplicaLagError(
                f"replica is {lag:.2f}s behind (bound {self.max_lag_s}s)",
                lag_s=lag,
                retry_after=max(1.0, self.poll_s * 2),
            )
        raw = ctx.request.headers.get("x-repro-min-offset")
        if raw:
            try:
                min_offset = int(raw)
            except ValueError:
                min_offset = 0
            applied = applier.applied_offset()
            if applied < min_offset:
                raise ReplicaLagError(
                    f"replica applied offset {applied} is behind the "
                    f"requested minimum {min_offset}",
                    applied_offset=applied,
                    min_offset=min_offset,
                    lag_s=lag,
                    retry_after=max(1.0, self.poll_s * 2),
                )

    # -- follower registry (leader side) --------------------------------------

    def note_follower(self, follower_id: str | None) -> None:
        if not follower_id:
            return
        with self._mutex:
            self._followers[follower_id] = time.monotonic()

    def followers_connected(
        self, window_s: float = FOLLOWER_WINDOW_S
    ) -> int:
        horizon = time.monotonic() - window_s
        with self._mutex:
            return sum(
                1 for seen in self._followers.values() if seen >= horizon
            )

    # -- appliers / lag (replica side) -----------------------------------------

    def appliers(self) -> dict[tuple[str, str], ReplicaApplier]:
        with self._mutex:
            return dict(self._appliers)

    def applier_for(
        self, tenant: str, session_id: str
    ) -> ReplicaApplier | None:
        with self._mutex:
            return self._appliers.get((tenant, session_id))

    def lag_seconds(self) -> float:
        """Seconds since this node was last provably caught up."""
        if self.coordinator.role != "replica":
            return 0.0
        if self._last_caught_up_at is None:
            return float("inf")
        return max(0.0, time.monotonic() - self._last_caught_up_at)

    def offset_behind(self) -> int:
        if self.coordinator.role != "replica":
            return 0
        return sum(
            applier.offset_behind()
            for applier in self.appliers().values()
        )

    # -- the pump --------------------------------------------------------------

    def sync_once(self) -> int:
        """One full replication round; returns records applied.

        status (epoch observation) → inventory → per-session WAL fetch,
        decode with CRC re-verification, convergent apply; a stream gap
        falls back to a full snapshot resync.
        """
        link = self.link
        if link is None:
            raise ReplicationError("no leader link configured")
        status = link.status()
        self.coordinator.observe_epoch(int(status.get("epoch", 1)))
        applied_total = 0
        behind_total = 0
        seen: set[tuple[str, str]] = set()
        for row in link.inventory():
            tenant = str(row["tenant"])
            session_id = str(row["session_id"])
            key = (tenant, session_id)
            seen.add(key)
            with self._mutex:
                applier = self._appliers.get(key)
                if applier is None:
                    applier = self._appliers[key] = ReplicaApplier()
            if row.get("has_wal"):
                reply = link.fetch_wal(tenant, session_id, applier.cursor)
                frames = base64.b64decode(reply.get("frames", "") or "")
                records, _good, _torn = decode_frames(frames)
                shipment = Shipment(
                    records=tuple(records),
                    cursor=ShipCursor(
                        str(reply.get("generation", "")),
                        int(reply.get("start", 0)) + len(records),
                    ),
                    restarted=bool(reply.get("restarted")),
                    damaged=bool(reply.get("damaged")),
                    quarantined=tuple(reply.get("quarantined", ())),
                )
                try:
                    applied_total += applier.apply(shipment)
                except ReplicationGapError:
                    snapshot = link.fetch_snapshot(tenant, session_id)
                    applier.resync(snapshot["state"])
            elif applier.state() is None:
                snapshot = link.fetch_snapshot(tenant, session_id)
                applier.resync(snapshot["state"])
            offset = row.get("offset")
            if offset is None:
                offset = applier.applied_offset()
            applier.observe_leader_offset(int(offset))
            behind_total += applier.offset_behind()
        # deletes propagate: a session purged on the leader leaves the
        # inventory, so its applier is dropped here — the replica stops
        # serving it, and a later promote cannot materialize it back
        with self._mutex:
            for key in list(self._appliers):
                if key not in seen:
                    del self._appliers[key]
        now = time.monotonic()
        self._last_sync_at = now
        if behind_total == 0:
            self._last_caught_up_at = now
        self.last_error = None
        return applied_total

    def start(self) -> None:
        if self._pump is not None and self._pump.is_alive():
            return
        self._stop.clear()

        def pump() -> None:
            while not self._stop.is_set():
                if self.coordinator.role != "replica":
                    break
                try:
                    self.sync_once()
                except Exception as exc:  # noqa: BLE001 - keep following
                    self.last_error = f"{type(exc).__name__}: {exc}"
                self._stop.wait(self.poll_s)

        self._pump = threading.Thread(
            target=pump, name="repro-replication-pump", daemon=True
        )
        self._pump.start()

    def stop(self) -> None:
        self._stop.set()
        pump = self._pump
        if pump is not None and pump.is_alive():
            pump.join(timeout=5.0)
        self._pump = None

    # -- failover --------------------------------------------------------------

    def promote(self) -> dict[str, Any]:
        """Take over as leader: fence epoch, materialize, swap manager.

        Every applier's state is saved as a real durable session under
        the local manager's root, then the app serves reads *and writes*
        through the ordinary :class:`SessionManager` (which re-opens
        each save with a fresh self-anchoring WAL generation on first
        acquire).  Finally the old leader is fenced, best-effort — if it
        is down, its persisted epoch check fences it on resurrection
        the moment it hears the new epoch.
        """
        self.stop()
        epoch = self.coordinator.promote()
        materialized = []
        for (tenant, session_id), applier in sorted(
            self.appliers().items()
        ):
            session = applier.session()
            if session is None:
                continue
            path = self.local.save_path(tenant, session_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            session.save(path)
            materialized.append(f"{tenant}/{session_id}")
        self.app.manager = self.local
        self.promoted_at = time.monotonic()
        if self.link is not None:
            try:
                self.link.fence(epoch)
            except Exception:  # noqa: BLE001 - old leader may be dead
                pass
        status = self.coordinator.status()
        status["materialized"] = materialized
        return status


__all__ = [
    "FOLLOWER_WINDOW_S",
    "HttpLeaderLink",
    "InProcessLeaderLink",
    "READ_ONLY_POSTS",
    "ReplicaSessionManager",
    "ReplicationPlane",
]
