"""The session manager: bounded resident kernels over durable checkpoints.

A :class:`SessionManager` owns every tenant's integration sessions.  At
any moment a session is either **resident** — a live
:class:`~repro.tool.session.ToolSession` with its event-sourced kernel
in memory — or **parked** at its WAL-backed checkpoint on disk
(``<root>/<tenant>/<session>.json`` plus the ``.wal/`` directory beside
it).  The durability layer makes the two interchangeable:
:meth:`ToolSession.save` parks, :meth:`ToolSession.open` (through the
:class:`~repro.kernel.recovery.RecoveryManager`) rehydrates, and the
state fingerprint is identical on both sides — the property
``tests/service/test_manager_concurrency.py`` hammers.

Residency is bounded two ways, enforced after every release:

* **LRU count** — at most ``max_resident`` kernels stay live; the
  least-recently-used idle session is parked first.
* **memory watermark** — the sum of estimated kernel sizes (serialized
  event log + snapshots) stays under ``max_resident_bytes``.

Sessions pinned by a background job (:mod:`repro.service.jobs`) are
never auto-evicted, and an explicit eviction of a pinned session raises
:class:`~repro.service.errors.SessionBusyError` — parking a kernel
mid-job would checkpoint a state the job is still mutating.

Tenant isolation is structural: every path is derived from the
validated tenant name, so no request can address another tenant's
files, and all lookups are keyed by ``(tenant, session_id)``.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.trace import span
from repro.replication.applier import payload_fingerprint
from repro.service.auth import require_safe_name
from repro.service.errors import (
    CapacityError,
    SessionBusyError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.tool.session import ToolSession


def state_fingerprint(session: ToolSession) -> str:
    """SHA-256 over the session's canonical ``state_payload``.

    The payload is history-independent (sorted classes/assertions), so
    two sessions holding the same schemas, equivalences and assertions
    fingerprint identically — the evict→rehydrate round-trip contract,
    and the leader/replica parity proof (the replication layer hashes
    through the same :func:`~repro.replication.payload_fingerprint`).
    """
    return payload_fingerprint(session.analysis.state_payload())


@dataclass
class _Record:
    """One known session: residency, lock, pins and bookkeeping."""

    tenant: str
    session_id: str
    lock: threading.RLock = field(default_factory=threading.RLock)
    session: ToolSession | None = None
    #: monotonic use counter (manager-wide), for LRU ordering
    last_used: int = 0
    #: background jobs currently holding this session resident
    pins: int = 0
    #: estimated resident footprint (serialized kernel state bytes)
    approx_bytes: int = 0
    #: kernel offset the estimate was taken at (re-measured as it drifts)
    sized_at_offset: int = -1


@dataclass(frozen=True)
class SessionInfo:
    """One row of a tenant's session listing."""

    session_id: str
    resident: bool
    pinned: bool
    approx_bytes: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "resident": self.resident,
            "pinned": self.pinned,
            "approx_bytes": self.approx_bytes,
        }


@dataclass(frozen=True)
class ManagerStats:
    """The manager's residency counters (the ``/v1/stats`` payload)."""

    resident_sessions: int
    known_sessions: int
    resident_bytes: int
    max_resident: int
    max_resident_bytes: int | None
    evictions: int
    rehydrations: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "resident_sessions": self.resident_sessions,
            "known_sessions": self.known_sessions,
            "resident_bytes": self.resident_bytes,
            "max_resident": self.max_resident,
            "max_resident_bytes": self.max_resident_bytes,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
        }


class SessionManager:
    """Bounded pool of resident :class:`ToolSession` kernels per tenant."""

    def __init__(
        self,
        root: str | Path,
        *,
        max_resident: int = 8,
        max_resident_bytes: int | None = None,
        max_sessions_per_tenant: int = 64,
    ) -> None:
        self.root = Path(root)
        self.max_resident = max(1, int(max_resident))
        self.max_resident_bytes = max_resident_bytes
        self.max_sessions_per_tenant = max_sessions_per_tenant
        self._mutex = threading.Lock()
        self._records: dict[tuple[str, str], _Record] = {}
        self._use_counter = 0
        self.evictions = 0
        self.rehydrations = 0

    # -- paths -------------------------------------------------------------------

    def tenant_dir(self, tenant: str) -> Path:
        return self.root / require_safe_name("tenant", tenant)

    def save_path(self, tenant: str, session_id: str) -> Path:
        require_safe_name("session id", session_id)
        return self.tenant_dir(tenant) / f"{session_id}.json"

    # -- record plumbing ---------------------------------------------------------

    def _touch(self, record: _Record) -> None:
        self._use_counter += 1
        record.last_used = self._use_counter

    def _get_record(
        self, tenant: str, session_id: str, *, create: bool
    ) -> _Record:
        key = (tenant, session_id)
        path = self.save_path(tenant, session_id)  # validates both names
        with self._mutex:
            record = self._records.get(key)
            if record is None:
                wal_dir = Path(f"{path}.wal")
                on_disk = path.exists() or (
                    wal_dir.exists() and any(wal_dir.glob("wal-*.seg"))
                )
                if not on_disk and not create:
                    raise UnknownSessionError(session_id)
                if not on_disk and create:
                    owned = {
                        sid for t, sid in self._records if t == tenant
                    }
                    tenant_dir = self.tenant_dir(tenant)
                    if tenant_dir.exists():
                        owned.update(
                            entry.stem
                            for entry in tenant_dir.glob("*.json")
                        )
                    if len(owned) >= self.max_sessions_per_tenant:
                        raise CapacityError(
                            f"tenant {tenant!r} reached its session quota "
                            f"({self.max_sessions_per_tenant})"
                        )
                record = _Record(tenant=tenant, session_id=session_id)
                self._records[key] = record
            self._touch(record)
            return record

    # -- lifecycle ---------------------------------------------------------------

    def create(self, tenant: str, session_id: str) -> SessionInfo:
        """Create a fresh durable session; its checkpoint materializes now."""
        path = self.save_path(tenant, session_id)
        key = (tenant, session_id)
        with self._mutex:
            exists = key in self._records and (
                self._records[key].session is not None
            )
        if exists or path.exists():
            raise SessionExistsError(session_id)
        record = self._get_record(tenant, session_id, create=True)
        with record.lock:
            if record.session is not None or path.exists():
                raise SessionExistsError(session_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            with span("service.session.create"):
                session = ToolSession.open(path)
                session.save(path)
            record.session = session
            self._measure(record)
        self._enforce_bounds()
        return self._info(record)

    @contextmanager
    def acquire(
        self, tenant: str, session_id: str
    ) -> Iterator[ToolSession]:
        """Borrow a session exclusively; rehydrates a parked one on demand.

        The record lock is held for the duration, so concurrent requests
        against one session serialize while distinct sessions (and
        tenants) proceed in parallel.  Residency bounds are enforced
        after release.
        """
        record = self._get_record(tenant, session_id, create=False)
        with record.lock:
            if record.session is None:
                with span("service.session.rehydrate"):
                    record.session = ToolSession.open(
                        self.save_path(tenant, session_id), create=False
                    )
                with self._mutex:
                    self.rehydrations += 1
            self._measure_if_stale(record)
            try:
                yield record.session
            finally:
                self._measure_if_stale(record)
                with self._mutex:
                    self._touch(record)
        self._enforce_bounds()

    def checkpoint(self, tenant: str, session_id: str) -> SessionInfo:
        """Save the session's durable checkpoint without parking it."""
        record = self._get_record(tenant, session_id, create=False)
        with record.lock:
            if record.session is not None:
                with span("service.session.checkpoint"):
                    record.session.save(
                        self.save_path(tenant, session_id)
                    )
                self._measure(record)
        return self._info(record)

    def evict(self, tenant: str, session_id: str) -> bool:
        """Park a session at its checkpoint; True when it was resident.

        Refuses (``SessionBusyError``) when a background job holds a pin
        or another request is mid-flight on the session.
        """
        record = self._get_record(tenant, session_id, create=False)
        if not record.lock.acquire(blocking=False):
            raise SessionBusyError(
                f"session {session_id!r} is serving a request"
            )
        try:
            with self._mutex:
                if record.pins:
                    raise SessionBusyError(
                        f"session {session_id!r} is pinned by a background job"
                    )
            return self._park(record)
        finally:
            record.lock.release()

    def _park(self, record: _Record) -> bool:
        """Save and drop a resident kernel.  Caller holds the record lock."""
        if record.session is None:
            return False
        with span("service.session.evict"):
            record.session.save(
                self.save_path(record.tenant, record.session_id)
            )
        record.session = None
        record.sized_at_offset = -1
        with self._mutex:
            self.evictions += 1
        return True

    def purge(self, tenant: str, session_id: str) -> None:
        """Delete a session's checkpoint and WAL for good."""
        record = self._get_record(tenant, session_id, create=False)
        if not record.lock.acquire(blocking=False):
            raise SessionBusyError(
                f"session {session_id!r} is serving a request"
            )
        try:
            with self._mutex:
                if record.pins:
                    raise SessionBusyError(
                        f"session {session_id!r} is pinned by a background job"
                    )
                self._records.pop((tenant, session_id), None)
            record.session = None
            path = self.save_path(tenant, session_id)
            path.unlink(missing_ok=True)
            wal_dir = Path(f"{path}.wal")
            if wal_dir.exists():
                for entry in wal_dir.iterdir():
                    entry.unlink()
                wal_dir.rmdir()
        finally:
            record.lock.release()

    # -- pinning (background jobs) ----------------------------------------------

    def pin(self, tenant: str, session_id: str) -> None:
        """Hold a session safe from eviction while a job runs on it."""
        record = self._get_record(tenant, session_id, create=False)
        with self._mutex:
            record.pins += 1

    def unpin(self, tenant: str, session_id: str) -> None:
        with self._mutex:
            record = self._records.get((tenant, session_id))
            if record is not None and record.pins > 0:
                record.pins -= 1

    @contextmanager
    def pinned(self, tenant: str, session_id: str) -> Iterator[None]:
        self.pin(tenant, session_id)
        try:
            yield
        finally:
            self.unpin(tenant, session_id)

    # -- residency bounds --------------------------------------------------------

    def _measure(self, record: _Record) -> None:
        session = record.session
        if session is None:
            return
        kernel = session.analysis.kernel
        state = kernel.export_state()
        record.approx_bytes = 4096 + len(
            json.dumps(state, separators=(",", ":"))
        )
        record.sized_at_offset = kernel.bus.offset

    def _measure_if_stale(self, record: _Record, drift: int = 32) -> None:
        session = record.session
        if session is None:
            return
        offset = session.analysis.kernel.bus.offset
        if abs(offset - record.sized_at_offset) >= drift or (
            record.sized_at_offset < 0
        ):
            self._measure(record)

    def resident_bytes(self) -> int:
        with self._mutex:
            return sum(
                record.approx_bytes
                for record in self._records.values()
                if record.session is not None
            )

    def resident_count(self) -> int:
        with self._mutex:
            return sum(
                1
                for record in self._records.values()
                if record.session is not None
            )

    def _over_bounds(self) -> bool:
        resident = 0
        total = 0
        for record in self._records.values():
            if record.session is not None:
                resident += 1
                total += record.approx_bytes
        if resident > self.max_resident:
            return True
        return (
            self.max_resident_bytes is not None
            and total > self.max_resident_bytes
            and resident > 1  # never park the only working set member
        )

    def _enforce_bounds(self) -> None:
        """Park LRU idle sessions until both residency bounds hold."""
        while True:
            with self._mutex:
                if not self._over_bounds():
                    return
                candidates = sorted(
                    (
                        record
                        for record in self._records.values()
                        if record.session is not None and record.pins == 0
                    ),
                    key=lambda record: record.last_used,
                )
            parked = False
            for record in candidates:
                if not record.lock.acquire(blocking=False):
                    continue  # busy: a request is on it right now
                try:
                    with self._mutex:
                        if record.pins:
                            continue
                    if self._park(record):
                        parked = True
                        break
                finally:
                    record.lock.release()
            if not parked:
                return  # everything over the bound is busy or pinned

    # -- introspection -----------------------------------------------------------

    def require(self, tenant: str, session_id: str) -> None:
        """Raise :class:`UnknownSessionError` unless the session exists.

        A cheap existence check for endpoints (the SSE streams) that
        must 404 on foreign or missing sessions before doing any work.
        """
        self._get_record(tenant, session_id, create=False)

    #: numeric breaker states for the ``repro_federation_breaker_state``
    #: gauge (0 = closed/healthy, 1 = half-open probe, 2 = open/skipping)
    BREAKER_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}

    def federation_snapshot(self) -> list[dict[str, Any]]:
        """Federation health of every resident session with an engine.

        One entry per session: breaker state per component plus the
        engine's total retry count.  Reads are lock-free on the engine
        side (scrape-time telemetry tolerates a torn read; the breaker
        dicts are only ever appended to).
        """
        with self._mutex:
            resident = [
                (record.tenant, record.session_id, record.session)
                for record in self._records.values()
                if record.session is not None
            ]
        snapshot: list[dict[str, Any]] = []
        for tenant, session_id, session in resident:
            engine = getattr(session, "federation", None)
            if engine is None:
                continue
            executor = getattr(engine, "executor", None)
            if executor is None:
                continue
            breakers = {
                component: self.BREAKER_STATE_VALUES.get(
                    str(breaker.state), 0
                )
                for component, breaker in dict(
                    executor._breakers
                ).items()
            }
            retries = 0
            metrics = getattr(engine, "metrics", None)
            if metrics is not None:
                counter = metrics.counters().get("federation.retries")
                if counter is not None:
                    retries = counter.value
            snapshot.append(
                {
                    "tenant": tenant,
                    "session_id": session_id,
                    "breakers": breakers,
                    "retries": retries,
                }
            )
        return snapshot

    def _info(self, record: _Record) -> SessionInfo:
        return SessionInfo(
            session_id=record.session_id,
            resident=record.session is not None,
            pinned=record.pins > 0,
            approx_bytes=record.approx_bytes,
        )

    def sessions(self, tenant: str) -> list[SessionInfo]:
        """Every session the tenant owns: resident and parked."""
        require_safe_name("tenant", tenant)
        with self._mutex:
            known = {
                record.session_id: self._info(record)
                for (owner, _), record in self._records.items()
                if owner == tenant
            }
        tenant_dir = self.tenant_dir(tenant)
        if tenant_dir.exists():
            for path in sorted(tenant_dir.glob("*.json")):
                session_id = path.stem
                if session_id not in known:
                    known[session_id] = SessionInfo(
                        session_id=session_id,
                        resident=False,
                        pinned=False,
                        approx_bytes=0,
                    )
        return [known[name] for name in sorted(known)]

    def replication_inventory(self) -> list[dict[str, Any]]:
        """Every session a follower must replicate, across all tenants.

        One row per ``(tenant, session_id)`` known in memory or parked
        on disk: the leader's current log length for lag accounting
        (live bus offset when resident, unknown otherwise) and whether a
        WAL directory exists to ship from.  Served by
        ``GET /v1/replication/sessions``.
        """
        rows: dict[tuple[str, str], dict[str, Any]] = {}
        with self._mutex:
            resident = [
                (record.tenant, record.session_id, record.session)
                for record in self._records.values()
            ]
        for tenant, session_id, session in resident:
            offset = None
            if session is not None:
                offset = session.analysis.kernel.bus.offset
            rows[(tenant, session_id)] = {
                "tenant": tenant,
                "session_id": session_id,
                "offset": offset,
            }
        if self.root.exists():
            for tenant_dir in sorted(self.root.iterdir()):
                if not tenant_dir.is_dir():
                    continue
                for path in sorted(tenant_dir.glob("*.json")):
                    key = (tenant_dir.name, path.stem)
                    rows.setdefault(
                        key,
                        {
                            "tenant": tenant_dir.name,
                            "session_id": path.stem,
                            "offset": None,
                        },
                    )
        inventory = []
        for (tenant, session_id), row in sorted(rows.items()):
            wal_dir = Path(f"{self.save_path(tenant, session_id)}.wal")
            row["has_wal"] = wal_dir.exists() and any(
                wal_dir.glob("wal-*.seg")
            )
            inventory.append(row)
        return inventory

    def fingerprint(self, tenant: str, session_id: str) -> str:
        """The session's current state fingerprint (rehydrates if parked)."""
        with self.acquire(tenant, session_id) as session:
            return state_fingerprint(session)

    def stats(self) -> ManagerStats:
        with self._mutex:
            resident = [
                record
                for record in self._records.values()
                if record.session is not None
            ]
            return ManagerStats(
                resident_sessions=len(resident),
                known_sessions=len(self._records),
                resident_bytes=sum(r.approx_bytes for r in resident),
                max_resident=self.max_resident,
                max_resident_bytes=self.max_resident_bytes,
                evictions=self.evictions,
                rehydrations=self.rehydrations,
            )

    def shutdown(self) -> int:
        """Park every resident session; returns how many were parked."""
        parked = 0
        with self._mutex:
            records = list(self._records.values())
        for record in records:
            with record.lock:
                if record.session is not None and self._park(record):
                    parked += 1
        return parked


__all__ = [
    "ManagerStats",
    "SessionInfo",
    "SessionManager",
    "state_fingerprint",
]
