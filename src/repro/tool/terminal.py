"""A virtual terminal: the ``curses`` stand-in.

The paper's tool did "all screen and cursor movements ... using a UNIX
library package called curses"; each screen is "made up of multiple
windows, some of which can be scrolled".  For a reproducible, headless
library we replace curses with a character grid of fixed size.  Screens
produce lines; the terminal centres a title, frames the body, clips to the
grid and exposes the rendered text — so tests can assert exactly what a
DDA would see.
"""

from __future__ import annotations

from repro.errors import ToolError

#: Classic terminal geometry.
DEFAULT_WIDTH = 80
DEFAULT_HEIGHT = 24


class VirtualTerminal:
    """Fixed-size character grid that screens render into."""

    def __init__(
        self, width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT
    ) -> None:
        if width < 20 or height < 5:
            raise ToolError(f"terminal {width}x{height} is too small")
        self.width = width
        self.height = height
        self._rows: list[str] = [""] * height

    def clear(self) -> None:
        self._rows = [""] * self.height

    def write_row(self, row: int, text: str) -> None:
        """Place text on one row (clipped to the grid)."""
        if not 0 <= row < self.height:
            return  # content beyond the window is simply not visible
        self._rows[row] = text[: self.width]

    def show_screen(self, header: str, subheader: str, body: list[str]) -> None:
        """Lay out a paper-style screen: centred headers, body, clipping.

        When the body is longer than the window, the visible part ends with
        a ``-- more --`` marker: the original screens scrolled; ours shows
        the first page (callers paginate via their Scroll commands).
        """
        self.clear()
        self.write_row(0, header.center(self.width))
        self.write_row(1, f"< {subheader} >".center(self.width))
        self.write_row(2, "")
        available = self.height - 3
        visible = body[:available]
        truncated = len(body) > available
        if truncated:
            visible = body[: available - 1]
        for offset, line in enumerate(visible):
            self.write_row(3 + offset, line)
        if truncated:
            self.write_row(self.height - 1, "-- more -- (S to scroll)")

    def render(self) -> str:
        """The full grid as text (rows right-stripped, newline-joined)."""
        return "\n".join(row.rstrip() for row in self._rows) + "\n"

    def visible_text(self) -> str:
        """Non-empty rows only — convenient for assertions in tests."""
        return "\n".join(row for row in self._rows if row.strip()) + "\n"
