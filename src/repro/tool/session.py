"""The tool's mutable state across screens.

One :class:`ToolSession` corresponds to one sitting of a DDA at the tool:
the schemas defined so far, the analysis state (registry + cached
similarity views + the two assertion networks, owned by an
:class:`~repro.equivalence.AnalysisSession`), the pair of schemas currently
being integrated and the latest integration result.

The screens keep reading ``session.registry`` / ``session.object_network``
/ ``session.relationship_network``; those are now views onto the embedded
analysis session, so every screen action benefits from the incremental
caches (memoized OCS cells, memoized Screen 8 ranking, incremental
assertion-closure repair) without any screen-level changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import Schema
from repro.equivalence.ordering import CandidatePair
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.session import AnalysisSession
from repro.errors import ReproError, ToolError, UnknownNameError
from repro.integration.options import IntegrationOptions
from repro.integration.result import IntegrationResult


@dataclass
class ToolSession:
    """Everything the screens read and mutate."""

    options: IntegrationOptions = field(default_factory=IntegrationOptions)
    schemas: dict[str, Schema] = field(default_factory=dict)
    #: registry + cached matrices + assertion networks, kept consistent
    analysis: AnalysisSession = field(default_factory=AnalysisSession)
    #: the two schemas selected for the current pairwise phase
    selected_pair: tuple[str, str] | None = None
    result: IntegrationResult | None = None
    #: the federated query engine over the component databases, once
    #: attached (see :meth:`attach_federation`)
    federation: "object | None" = None
    #: status line shown under the next screen render
    status: str = ""
    #: the write-ahead log mutations are autosaved to, once attached
    #: (see :meth:`attach_wal` / :meth:`open`)
    wal: "object | None" = None
    #: how the last :meth:`open` / :meth:`restore_from` rebuilt the
    #: session (a :class:`~repro.kernel.recovery.RecoveryReport`)
    last_recovery: "object | None" = None
    #: the pair and name the latest integration result was built from
    #: (drives :meth:`apply_edit`'s localized re-integration)
    _result_pair: tuple[str, str] | None = field(default=None, repr=False)
    _result_name: str = field(default="integrated", repr=False)
    #: cross-integration attribute-merge cache
    #: (a :class:`~repro.integration.patching.MergeMemo`, lazily built)
    _merge_memo: "object | None" = field(default=None, repr=False)
    #: the result's cluster partition, for blast-radius diffs
    _result_clusters: "object | None" = field(default=None, repr=False)

    # -- analysis-state views ------------------------------------------------------

    @property
    def registry(self) -> EquivalenceRegistry:
        """The equivalence registry (owned by :attr:`analysis`)."""
        return self.analysis.registry

    @property
    def object_network(self) -> AssertionNetwork:
        """The object-class assertion network (owned by :attr:`analysis`)."""
        return self.analysis.object_network

    @property
    def relationship_network(self) -> AssertionNetwork:
        """The relationship-set assertion network (owned by :attr:`analysis`)."""
        return self.analysis.relationship_network

    # -- schema management -------------------------------------------------------

    def add_schema(self, name: str) -> Schema:
        if name in self.schemas:
            raise ToolError(f"schema {name!r} already defined")
        schema = Schema(name)
        self.schemas[name] = schema
        self.analysis.add_schema(schema)
        return schema

    def delete_schema(self, name: str) -> None:
        if name not in self.schemas:
            raise ToolError(f"no schema {name!r}")
        del self.schemas[name]
        # One ``session.delete_schema`` event goes in the log; the rebuild
        # itself runs in replay mode (equivalences and assertions touching
        # the schema die with it, re-derived from the survivors).  A
        # recording in progress survives — the session re-snapshots its
        # post-delete state so the log stays replayable.
        kernel = self.analysis.kernel
        with kernel.group():
            kernel.bus.publish("session", "delete_schema", {"name": name})
            with kernel.bus.replaying():
                self.analysis.reset_to(list(self.schemas.values()))
        self.analysis.resnapshot_audit()
        if self.selected_pair and name in self.selected_pair:
            self.selected_pair = None
        if self._result_pair and name in self._result_pair:
            self._result_pair = None
            self._result_clusters = None

    # -- cross-phase undo/redo -----------------------------------------------------

    def undo(self) -> str:
        """Revert the most recent effectful action, whatever screen made it.

        Walks the kernel's event log back one group — an equivalence
        declared on Screen 7, an assertion from Screen 8/9, a schema
        edit, an integration — and returns a status line for the screen.
        """
        kernel = self.analysis.kernel
        if not kernel.undo():
            raise ToolError("nothing to undo")
        self._after_time_travel()
        return f"undid last action (now at event {kernel.head})"

    def redo(self) -> str:
        """Re-apply the next undone action; the mirror of :meth:`undo`."""
        kernel = self.analysis.kernel
        if not kernel.redo():
            raise ToolError("nothing to redo")
        self._after_time_travel()
        return f"redid action (now at event {kernel.head})"

    def _after_time_travel(self) -> None:
        """Re-sync the tool's denormalised views after the kernel moved."""
        self.schemas = {
            schema.name: schema for schema in self.analysis.schemas()
        }
        if self.selected_pair is not None and any(
            name not in self.schemas for name in self.selected_pair
        ):
            self.selected_pair = None
        self.result = self.analysis.kernel.result_at_head()
        self.federation = None  # derived from the result; re-attach on demand
        self._result_clusters = None  # re-snapshotted by the next patch
        if self._result_pair is not None and any(
            name not in self.schemas for name in self._result_pair
        ):
            self._result_pair = None

    def schema(self, name: str) -> Schema:
        try:
            return self.schemas[name]
        except KeyError:
            raise ToolError(f"no schema {name!r}") from None

    def adopt_schema(self, schema: Schema) -> None:
        """Take over an externally built schema (examples, save files)."""
        if schema.name in self.schemas:
            raise ToolError(f"schema {schema.name!r} already defined")
        self.schemas[schema.name] = schema
        self.analysis.add_schema(schema)

    def refresh_after_edit(self, schema_name: str) -> None:
        """Deprecated full re-sync after an ad-hoc schema mutation.

        Mutating a :class:`~repro.ecr.schema.Schema` directly and calling
        this bypasses the kernel's event log (no undo, no audit, no WAL
        coverage) and rebuilds far more than the edit touched.  Apply a
        typed :class:`~repro.evolution.SchemaEdit` through
        :meth:`apply_edit` instead.  Will be removed next release.
        """
        import warnings

        warnings.warn(
            "ToolSession.refresh_after_edit() is deprecated; apply a "
            "typed SchemaEdit through ToolSession.apply_edit() so the "
            "change is logged, undoable and repaired locally",
            DeprecationWarning,
            stacklevel=2,
        )
        self.analysis.refresh_schema(schema_name)

    # -- schema evolution ---------------------------------------------------------

    def apply_edit(self, schema_name: str, edit):
        """Apply a typed schema edit and repair every downstream layer.

        The edit enters the kernel through
        :meth:`AnalysisSession.apply_edit
        <repro.equivalence.session.AnalysisSession.apply_edit>` (registry,
        OCS/ACS views, assertion networks, scoped solver re-propagation);
        this layer then patches the integrated schema — a localized
        re-integration of the current pair reusing every untouched
        attribute merge — and refreshes the federation mappings in place,
        while the planner's registry subscription drops only the plans
        whose legs touch the edited schema.  The returned
        :class:`~repro.evolution.EditOutcome` carries the full
        repair-scope report; its summary lands on :attr:`status`.
        """
        self.schema(schema_name)  # unknown names are a ToolError here
        counters = self.analysis.counters
        cells_before = counters.ocs_cells_recomputed
        planner = None
        plans_before = 0
        if self.federation is not None:
            planner = self.federation.planner
            planner.last_evolve_invalidated = 0
            plans_before = planner.cache_size()
        outcome = self.analysis.apply_edit(schema_name, edit)
        scope = outcome.scope
        scope.ocs_cells_recomputed = (
            counters.ocs_cells_recomputed - cells_before
        )
        if (
            self.result is not None
            and self._result_pair is not None
            and schema_name in self._result_pair
        ):
            self._patch_result(scope)
        if planner is not None:
            scope.plans_total = plans_before
            scope.plans_invalidated = planner.last_evolve_invalidated
            counters.evolution_plans_invalidated += scope.plans_invalidated
        self.status = scope.summary()
        return outcome

    def _patch_result(self, scope) -> None:
        """Localized re-integration of the current result after an edit."""
        from repro.integration.mappings import build_mappings
        from repro.integration.patching import MergeMemo, patch_integration

        first, second = self._result_pair
        if self._merge_memo is None:
            self._merge_memo = MergeMemo()
        report = patch_integration(
            self.registry,
            self.object_network,
            self.relationship_network,
            first,
            second,
            options=self.options,
            result_name=self._result_name,
            memo=self._merge_memo,
            previous_clusters=self._result_clusters,
        )
        scope.integrated_patched = True
        scope.clusters_changed = report.clusters_changed
        scope.clusters_total = report.clusters_total
        scope.merge_groups_recomputed = report.merge_groups_recomputed
        scope.merge_groups_total = report.merge_groups_total
        self.analysis.counters.evolution_clusters_rebuilt += (
            report.clusters_changed
        )
        self.result = report.result
        self._result_clusters = report.clusters
        # the patched result shadows the original integrate result for
        # result_at_head, so time travel lands on the right artifact
        kernel = self.analysis.kernel
        kernel.record_result(kernel.head, report.result)
        if self.federation is not None:
            planner = self.federation.planner
            mappings = build_mappings(
                report.result, list(self.schemas.values())
            )
            planner.mappings = {
                name: mapping
                for name, mapping in mappings.items()
                if name in planner.mappings
            }
            planner.integrated_schema = report.result.schema

    # -- pair selection ------------------------------------------------------------

    def select_pair(self, first: str, second: str) -> None:
        if first == second:
            raise ToolError("choose two different schemas")
        self.schema(first)
        self.schema(second)
        self.selected_pair = (first, second)

    def require_pair(self) -> tuple[str, str]:
        if self.selected_pair is None:
            raise ToolError("no schema pair selected")
        return self.selected_pair

    # -- candidates ---------------------------------------------------------------

    def candidate_pairs(self, relationships: bool = False) -> list[CandidatePair]:
        first, second = self.require_pair()
        return self.analysis.candidate_pairs(
            first, second, relationships=relationships
        )

    def network_for(self, relationships: bool) -> AssertionNetwork:
        return self.analysis.network_for(relationships)

    # -- integration -----------------------------------------------------------------

    def integrate(self, result_name: str = "integrated") -> IntegrationResult:
        from repro.integration.patching import (
            MergeMemo,
            cluster_snapshot,
            pair_object_refs,
        )

        first, second = self.require_pair()
        if self._merge_memo is None:
            self._merge_memo = MergeMemo()
        self.result = self.analysis.integrate(
            first,
            second,
            result_name=result_name,
            options=self.options,
            merge_memo=self._merge_memo,
        )
        self._result_pair = (first, second)
        self._result_name = result_name
        self._result_clusters = cluster_snapshot(
            self.object_network, pair_object_refs(self.registry, first, second)
        )
        return self.result

    def require_result(self) -> IntegrationResult:
        if self.result is None:
            raise ToolError("no integration has been performed yet")
        return self.result

    # -- federation (running global requests over the components) ----------------

    def connect_federation(self, stores=None, *, policy=None):
        """Wire up a federated query engine over the latest result.

        ``stores`` maps component schema names to
        :class:`~repro.data.instances.InstanceStore` objects — the
        operational component databases.  When omitted, each contributing
        component schema is populated with seeded demo data so the screen
        is usable straight after integration.  Returns a frozen
        :class:`~repro.tool.results.FederationAttachment` describing what
        was wired (the live engine rides on its ``engine`` field and is
        also kept on :attr:`federation`).
        """
        from repro.data.populate import populate_store
        from repro.federation import FederationEngine
        from repro.integration.mappings import build_mappings
        from repro.tool.results import FederationAttachment

        result = self.require_result()
        mappings = build_mappings(result, list(self.schemas.values()))
        demo: tuple[str, ...] = ()
        if stores is None:
            demo = tuple(sorted(mappings))
            stores = {
                name: populate_store(self.schema(name), seed=index + 1)
                for index, name in enumerate(sorted(mappings))
            }
        self.federation = FederationEngine.for_stores(
            {name: mappings[name] for name in stores},
            stores,
            result.schema,
            object_network=self.object_network,
            registry=self.registry,
            policy=policy,
        )
        return FederationAttachment(
            components=tuple(sorted(stores)),
            integrated_schema=result.schema.name,
            demo_components=demo,
            engine=self.federation,
        )

    def attach_federation(self, stores=None, *, policy=None):
        """Deprecated pre-redesign shape of :meth:`connect_federation`.

        Returns the bare engine instead of the typed
        :class:`~repro.tool.results.FederationAttachment`.  Will be
        removed next release.
        """
        import warnings

        warnings.warn(
            "ToolSession.attach_federation() is deprecated; call "
            "connect_federation() and use the returned "
            "FederationAttachment (the engine is its .engine field)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.connect_federation(stores, policy=policy).engine

    def require_federation(self):
        """The attached engine, auto-attaching demo stores if needed."""
        if self.federation is None:
            self.connect_federation()
        return self.federation

    def execute_global_request(self, text: str):
        """Execute a global request through the federation engine.

        Returns a frozen, wire-ready
        :class:`~repro.tool.results.GlobalRequestResult`; the engine's
        full :class:`~repro.federation.engine.FederationResult` stays
        reachable as its ``raw`` field.  The outcome is captured on the
        audit log (scope ``federation``, action ``query``) when recording
        is on; replay treats these events as informational since they
        never mutate analysis state.
        """
        from repro.kernel import NO_CHANGE
        from repro.tool.results import GlobalRequestResult

        engine = self.require_federation()
        try:
            result = engine.query(text)
        except ReproError:
            raise
        except Exception as exc:  # surface engine faults as tool errors
            raise ToolError(f"federated query failed: {exc}") from exc
        kernel = self.analysis.kernel
        with kernel.group():
            kernel.bus.publish(
                "federation",
                "query",
                {
                    "request": text,
                    "strategy": str(result.plan.strategy),
                    "components": result.plan.components,
                    "rows": len(result.rows),
                    "health": result.health.to_dict(),
                    "conflicts": [c.describe() for c in result.conflicts],
                },
                inverse=NO_CHANGE,
            )
        return GlobalRequestResult.from_engine_result(text, result)

    def run_global_request(self, text: str):
        """Deprecated pre-redesign shape of :meth:`execute_global_request`.

        Returns the engine's raw
        :class:`~repro.federation.engine.FederationResult` instead of the
        typed :class:`~repro.tool.results.GlobalRequestResult`.  Will be
        removed next release.
        """
        import warnings

        warnings.warn(
            "ToolSession.run_global_request() is deprecated; call "
            "execute_global_request() and use the returned "
            "GlobalRequestResult (the engine result is its .raw field)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute_global_request(text).raw

    # -- persistence (the data dictionary) ---------------------------------------

    def to_dictionary(self):
        """Capture the session in a :class:`~repro.dictionary.DataDictionary`.

        Schemas, the DDA's attribute equivalences (reconstructed from the
        non-trivial equivalence classes), the DDA's assertions (implicit
        ones are re-derived from the schemas on load) and the latest
        integration result are recorded.
        """
        from repro.assertions.kinds import Source
        from repro.dictionary import DataDictionary
        from repro.integration.mappings import build_mappings

        dictionary = DataDictionary()
        for schema in self.schemas.values():
            dictionary.add_schema(schema.copy())
        for members in self.registry.nontrivial_classes():
            anchor = members[0]
            for other in members[1:]:
                dictionary.record_equivalence(anchor, other)
        for relationship_flag, network in (
            (False, self.object_network),
            (True, self.relationship_network),
        ):
            for assertion in network.specified_assertions():
                if assertion.source is Source.DDA:
                    dictionary.record_assertion(
                        assertion.first,
                        assertion.second,
                        assertion.kind,
                        relationship=relationship_flag,
                    )
        if self.result is not None:
            dictionary.store_result(
                self.result.schema.name,
                self.result,
                build_mappings(self.result, list(self.schemas.values())),
            )
        dictionary.store_kernel(self.analysis.kernel.export_state())
        return dictionary

    @classmethod
    def from_dictionary(cls, dictionary) -> "ToolSession":
        """Rebuild a live session from a saved dictionary.

        New-format dictionaries carry the kernel's event log + snapshots:
        the session is restored by replaying from the nearest snapshot to
        the saved head (fingerprint-verified), and its history stays
        undo-able.  Legacy dictionaries without a kernel record rebuild
        the components directly and start a fresh history at the restored
        state (``set_baseline``).
        """
        return cls._rebuild(dictionary, dictionary.kernel_state())

    @classmethod
    def from_kernel_state(cls, state) -> "ToolSession":
        """Re-derive a session from an exported kernel state alone.

        ``state`` is :meth:`~repro.kernel.kernel.Kernel.export_state`
        output: the event log, snapshots and cursors.  The session is
        rebuilt by nearest-snapshot + tail replay — the same machinery
        recovery uses — so the service's audit-replay jobs can verify a
        live session against its own history without touching disk.
        """
        return cls._rebuild(None, state)

    @classmethod
    def _rebuild(cls, dictionary, state) -> "ToolSession":
        """Build a session from a dictionary and a serialised kernel state.

        ``state`` is usually ``dictionary.kernel_state()`` but recovery
        passes the save's state with the WAL tail already replayed onto
        it; either may be ``None`` (legacy save, fresh session).
        """
        from repro.kernel import Kernel

        session = cls()
        if state is not None:
            kernel = Kernel.restore(state)
            session.analysis = AnalysisSession(kernel=kernel)
            kernel.checkout(int(state.get("head", kernel.bus.offset)))
            session.schemas = {
                schema.name: schema for schema in session.analysis.schemas()
            }
            session.result = kernel.result_at_head()
        elif dictionary is not None:
            for schema in dictionary.schemas():
                session.schemas[schema.name] = schema
            object_network, relationship_network = dictionary.build_networks()
            session.analysis = AnalysisSession(
                registry=dictionary.build_registry(),
                object_network=object_network,
                relationship_network=relationship_network,
            )
            session.analysis.kernel.set_baseline()
        if session.result is None and dictionary is not None:
            names = dictionary.result_names()
            if names:
                session.result = dictionary.result(names[-1])
        return session

    def save(self, path) -> None:
        """Persist the session as a data-dictionary JSON file.

        A checkpoint: the save is written atomically (with an integrity
        footer), then the attached write-ahead log is reset — the save
        now holds everything the old WAL generation recorded.  A session
        without a WAL gains one here, rooted next to the save file, so
        every later mutation is journalled.

        The whole checkpoint runs under the kernel's bus lock: a
        transaction committing between the state export and the WAL
        reset would otherwise be wiped from the journal without being in
        the save.
        """
        kernel = self.analysis.kernel
        with kernel.bus.lock:
            self.to_dictionary().save(path)
            if self.wal is None:
                from repro.kernel.recovery import wal_directory_for
                from repro.kernel.wal import WriteAheadLog

                self.attach_wal(WriteAheadLog(wal_directory_for(path)))
            self.wal.reset(
                kernel.bus.offset,
                kernel.head,
                state=kernel.export_state(),
            )

    def attach_wal(self, wal) -> None:
        """Journal every committed mutation to ``wal`` from now on."""
        self.wal = wal
        self.analysis.kernel.attach_wal(wal)

    @classmethod
    def load(cls, path) -> "ToolSession":
        """Restore a session saved by :meth:`save` (no WAL attached)."""
        from repro.dictionary import DataDictionary

        return cls.from_dictionary(DataDictionary.load(path))

    @classmethod
    def open(cls, path, wal_dir=None, *, create=True) -> "ToolSession":
        """Restore a session with crash recovery and durable mutations.

        Loads the last good save, replays the write-ahead log tail a
        crash may have left beside it (``<path>.wal`` unless ``wal_dir``
        says otherwise), attaches the repaired WAL so further mutations
        are journalled, and records how the state was rebuilt on
        :attr:`last_recovery`.  With ``create=True`` (the default) a
        path with neither save nor WAL opens as a fresh durable session;
        ``create=False`` makes that a
        :class:`~repro.errors.DictionaryNotFoundError` instead (the
        tool's Load command must not invent sessions).
        """
        from repro.errors import DictionaryNotFoundError
        from repro.kernel.recovery import RecoveryManager

        manager = RecoveryManager(path, wal_dir)
        if (
            not create
            and not manager.save_path.exists()
            and not any(manager.wal_dir.glob("wal-*.seg"))
        ):
            raise DictionaryNotFoundError(path)
        report = manager.recover()
        session = cls._rebuild(manager.dictionary, manager.kernel_state)
        session.attach_wal(manager.wal)
        session.last_recovery = report
        return session

    def recovery_info(self):
        """How the last :meth:`open` / :meth:`restore_from` rebuilt this session.

        A frozen, wire-ready :class:`~repro.tool.results.RecoveryInfo`
        mirror of :attr:`last_recovery`, or ``None`` when the session was
        never opened from disk.
        """
        from repro.tool.results import RecoveryInfo

        if self.last_recovery is None:
            return None
        return RecoveryInfo.from_report(self.last_recovery)

    def restore_from(self, path) -> None:
        """Replace this session's state with a saved one, in place.

        Used by the main menu's Load command: screens hold a reference to
        the session object, so the state must change under them.  Goes
        through :meth:`open`, so a WAL left by a crash is replayed and
        the restored session keeps journalling.
        """
        loaded = type(self).open(path, create=False)
        audit = self.analysis.audit_log
        self.schemas = loaded.schemas
        self.analysis = loaded.analysis
        self.result = loaded.result
        self.wal = loaded.wal
        self.last_recovery = loaded.last_recovery
        if audit is not None:
            self.analysis.attach_audit(audit)
        self.selected_pair = None
        self._result_pair = None
        self._result_clusters = None
        self._merge_memo = None

    # -- browse helpers ---------------------------------------------------------------

    def integrated_structure(self, name: str):
        result = self.require_result()
        try:
            return result.schema.get(name)
        except UnknownNameError:
            raise ToolError(
                f"no structure {name!r} in the integrated schema"
            ) from None
