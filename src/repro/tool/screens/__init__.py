"""All screens of the tool, re-exported flat."""

from repro.tool.screens.base import POP, Replace, Screen
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.screens.collection import (
    SchemaNameScreen,
    StructureInfoScreen,
    CategoryInfoScreen,
    RelationshipInfoScreen,
    AttributeInfoScreen,
)
from repro.tool.screens.equivalence import (
    SchemaSelectScreen,
    ObjectSelectScreen,
    EquivalenceEditScreen,
)
from repro.tool.screens.assertion import (
    AssertionCollectScreen,
    ConflictResolutionScreen,
)
from repro.tool.screens.browse import (
    BROWSE_FLOW_EDGES,
    ObjectClassScreen,
    EntityScreen,
    CategoryScreen,
    RelationshipScreen,
    AttributeScreen,
    ComponentAttributeScreen,
    EquivalentScreen,
    ParticipatingObjectsScreen,
)
from repro.tool.screens.evolution import EvolutionScreen
from repro.tool.screens.federation import FederationScreen
from repro.tool.screens.suggestion import SuggestionScreen

__all__ = [
    "POP",
    "Replace",
    "Screen",
    "MainMenuScreen",
    "SchemaNameScreen",
    "StructureInfoScreen",
    "CategoryInfoScreen",
    "RelationshipInfoScreen",
    "AttributeInfoScreen",
    "SchemaSelectScreen",
    "ObjectSelectScreen",
    "EquivalenceEditScreen",
    "AssertionCollectScreen",
    "ConflictResolutionScreen",
    "BROWSE_FLOW_EDGES",
    "ObjectClassScreen",
    "EntityScreen",
    "CategoryScreen",
    "RelationshipScreen",
    "AttributeScreen",
    "ComponentAttributeScreen",
    "EquivalentScreen",
    "ParticipatingObjectsScreen",
    "EvolutionScreen",
    "FederationScreen",
    "SuggestionScreen",
]
