"""Phase 4 viewing: the integrated-schema browse screens (Screens 10-12).

Eight screens arranged in the hierarchy of Figure 6:

* **Object Class Screen** (Screen 10) — all object classes and relationship
  sets of the integrated schema; gateway to the others;
* **Entity / Category / Relationship Screens** (Screen 11) — parents and
  children of one structure;
* **Attribute Screen** — the attributes of any object class;
* **Component Attribute Screens** (12a/12b) — per-component provenance of a
  derived attribute;
* **Equivalent Screen** — the objects an ``E_`` class was merged from;
* **Participating Objects In Relationship Screen** — the legs of a
  relationship set.

:data:`BROWSE_FLOW_EDGES` records the arcs of Figure 6 (screen, menu
choice, screen) and is what the FIG6 benchmark checks.
"""

from __future__ import annotations

from repro.ecr.objects import Category
from repro.ecr.relationships import RelationshipSet
from repro.errors import ToolError
from repro.tool.screens.base import POP, Screen
from repro.tool.session import ToolSession

#: The control-flow arcs of Figure 6: (source screen, choice, target screen).
BROWSE_FLOW_EDGES: list[tuple[str, str, str]] = [
    ("ObjectClassScreen", "a", "AttributeScreen"),
    ("ObjectClassScreen", "c", "CategoryScreen"),
    ("ObjectClassScreen", "e", "EntityScreen"),
    ("ObjectClassScreen", "r", "RelationshipScreen"),
    ("EntityScreen", "v", "EquivalentScreen"),
    ("CategoryScreen", "v", "EquivalentScreen"),
    ("RelationshipScreen", "v", "EquivalentScreen"),
    ("RelationshipScreen", "p", "ParticipatingObjectsScreen"),
    ("AttributeScreen", "<attribute>", "ComponentAttributeScreen"),
]


class ObjectClassScreen(Screen):
    """Screen 10: the integrated schema's structures, by kind."""

    header = "INTEGRATED SCHEMA"
    subheader = "Object Class Screen"

    def body(self, session: ToolSession) -> list[str]:
        schema = session.require_result().schema
        entities = [entity.name for entity in schema.entity_sets()]
        categories = [category.name for category in schema.categories()]
        relationships = [rel.name for rel in schema.relationship_sets()]
        lines = [
            f"{f'Entities({len(entities)})':<26}"
            f"{f'Categories({len(categories)})':<26}"
            f"{f'Relationships({len(relationships)})':<26}"
        ]
        for index in range(max(len(entities), len(categories), len(relationships))):
            cell_a = entities[index] if index < len(entities) else ""
            cell_b = categories[index] if index < len(categories) else ""
            cell_c = relationships[index] if index < len(relationships) else ""
            lines.append(f"{cell_a:<26}{cell_b:<26}{cell_c:<26}")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Choose: <name> then <A>ttributes, <C>ategories, <E>ntities, "
            "<R>elationships, or <x> to exit =>"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "x" and not args:
            return POP
        parts = line.split()
        if len(parts) != 2:
            raise ToolError("enter: <structure-name> <a/c/e/r>")
        name, kind = parts[0], parts[1].lower()
        structure = session.integrated_structure(name)
        if kind == "a":
            return AttributeScreen(name)
        if kind == "c":
            if not isinstance(structure, Category):
                raise ToolError(f"{name!r} is not a category")
            return CategoryScreen(name)
        if kind == "e":
            if structure.kind.value != "e":
                raise ToolError(f"{name!r} is not an entity set")
            return EntityScreen(name)
        if kind == "r":
            if not isinstance(structure, RelationshipSet):
                raise ToolError(f"{name!r} is not a relationship set")
            return RelationshipScreen(name)
        raise ToolError(f"unknown choice {kind!r}")


class _StructureScreen(Screen):
    """Shared behaviour of the Entity/Category/Relationship screens."""

    header = "INTEGRATED SCHEMA"

    def __init__(self, name: str) -> None:
        self.name = name

    def _children(self, session: ToolSession) -> list[tuple[str, str]]:
        schema = session.require_result().schema
        return [
            (category.name, category.kind.value)
            for category in schema.categories()
            if self.name in category.parents
        ]

    def prompt(self, session: ToolSession) -> str:
        return "(V) equivalent objects  (Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "q":
            return POP
        if choice == "v":
            return EquivalentScreen(self.name)
        raise ToolError(f"unknown choice {line!r}")


class EntityScreen(_StructureScreen):
    """The children object classes of one entity set."""

    subheader = "Entity Screen"

    def body(self, session: ToolSession) -> list[str]:
        lines = [f"< {self.name} : entity >", "", "Child Object (type)"]
        children = self._children(session)
        for index, (child, kind) in enumerate(children, start=1):
            lines.append(f"{index}> {child} ({kind})")
        if not children:
            lines.append("   (no children)")
        return lines


class CategoryScreen(_StructureScreen):
    """Screen 11: the parents and children of one category."""

    subheader = "Category Screen"

    def body(self, session: ToolSession) -> list[str]:
        schema = session.require_result().schema
        category = schema.category(self.name)
        children = self._children(session)
        lines = [
            f"< {self.name} >",
            "",
            f"{f'Parent Object({len(category.parents)}) (type)':<36}"
            f"{f'Child Object({len(children)}) (type)':<36}",
        ]
        for index in range(max(len(category.parents), len(children))):
            if index < len(category.parents):
                parent_name = category.parents[index]
                parent_kind = schema.object_class(parent_name).kind.value
                cell_a = f"{parent_name} ({parent_kind})"
            else:
                cell_a = ""
            if index < len(children):
                cell_b = f"{children[index][0]} ({children[index][1]})"
            else:
                cell_b = ""
            lines.append(f"{index + 1}> {cell_a:<33}{cell_b:<36}")
        return lines


class RelationshipScreen(_StructureScreen):
    """The lattice neighbours of one relationship set."""

    subheader = "Relationship Screen"

    def body(self, session: ToolSession) -> list[str]:
        result = session.require_result()
        parents = [
            parent
            for child, parent in result.relationship_lattice
            if child == self.name
        ]
        children = [
            child
            for child, parent in result.relationship_lattice
            if parent == self.name
        ]
        lines = [
            f"< {self.name} : relationship >",
            "",
            f"{f'Parent({len(parents)})':<36}{f'Child({len(children)})':<36}",
        ]
        for index in range(max(len(parents), len(children))):
            cell_a = parents[index] if index < len(parents) else ""
            cell_b = children[index] if index < len(children) else ""
            lines.append(f"{index + 1}> {cell_a:<33}{cell_b:<36}")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "(V) equivalent objects  (P)articipating objects  (Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "p":
            return ParticipatingObjectsScreen(self.name)
        return super().handle(line, session)


class AttributeScreen(Screen):
    """The attributes of one integrated structure."""

    header = "INTEGRATED SCHEMA"
    subheader = "Attribute Screen"

    def __init__(self, name: str) -> None:
        self.name = name

    def body(self, session: ToolSession) -> list[str]:
        structure = session.integrated_structure(self.name)
        result = session.require_result()
        lines = [
            f"< {self.name} : {structure.kind_label()} >",
            "",
            f"{'Attribute Name':<20}{'Domain':<16}{'Key':<6}{'Components':<10}",
        ]
        for index, attribute in enumerate(structure.attributes, start=1):
            origin = result.attribute_origins.get((self.name, attribute.name))
            component_count = len(origin.components) if origin else 1
            lines.append(
                f"{index}> {attribute.name:<17}{str(attribute.domain):<16}"
                f"{'YES' if attribute.is_key else 'no':<6}{component_count:<10}"
            )
        if not structure.attributes:
            lines.append("   (no attributes)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "Enter <attribute> for its component attributes, or (Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "q" and not args:
            return POP
        attribute_name = line.strip()
        structure = session.integrated_structure(self.name)
        structure.attribute(attribute_name)
        result = session.require_result()
        components = result.component_attributes(self.name, attribute_name)
        return ComponentAttributeScreen(self.name, attribute_name, 0)


class ComponentAttributeScreen(Screen):
    """Screens 12a/12b: one component of a derived attribute."""

    header = "INTEGRATED SCHEMA"
    subheader = "Component Attribute Screen"

    def __init__(self, object_name: str, attribute_name: str, index: int) -> None:
        self.object_name = object_name
        self.attribute_name = attribute_name
        self.index = index

    def body(self, session: ToolSession) -> list[str]:
        result = session.require_result()
        structure = session.integrated_structure(self.object_name)
        components = result.component_attributes(
            self.object_name, self.attribute_name
        )
        component = components[self.index]
        original_schema = session.schema(component.schema)
        original_structure = original_schema.get(component.object_name)
        original_attribute = original_structure.attribute(component.attribute)
        return [
            f"< {self.object_name} : {structure.kind_label()} >",
            f"< {self.attribute_name}"
            f" ({self.index + 1} of {len(components)}) >",
            "",
            f"Attribute Name   : {original_attribute.name}",
            f"Domain           : {original_attribute.domain}",
            f"Key              : {'YES' if original_attribute.is_key else 'NO'}",
            f"original",
            f"Object Name      : {component.object_name}",
            f"original type    : {original_structure.kind.value.upper()}",
            f"original",
            f"Schema Name      : {component.schema}",
        ]

    def prompt(self, session: ToolSession) -> str:
        return "Press <n> for next component, or (Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "q":
            return POP
        result = session.require_result()
        components = result.component_attributes(
            self.object_name, self.attribute_name
        )
        if self.index + 1 < len(components):
            self.index += 1
            return None
        return POP


class EquivalentScreen(Screen):
    """The original objects an integrated structure was obtained from."""

    header = "INTEGRATED SCHEMA"
    subheader = "Equivalent Screen"

    def __init__(self, name: str) -> None:
        self.name = name

    def body(self, session: ToolSession) -> list[str]:
        result = session.require_result()
        components = result.components_of(self.name)
        node = result.nodes[self.name]
        lines = [f"< {self.name} : {node.origin} >", ""]
        for index, component in enumerate(components, start=1):
            lines.append(f"{index}> {component}")
        if not components:
            lines.append("   (newly derived - no direct components)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "(Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "q":
            return POP
        raise ToolError(f"unknown choice {line!r}")


class ParticipatingObjectsScreen(Screen):
    """The entities and categories tied to one relationship set."""

    header = "INTEGRATED SCHEMA"
    subheader = "Participating Objects In Relationship Screen"

    def __init__(self, name: str) -> None:
        self.name = name

    def body(self, session: ToolSession) -> list[str]:
        schema = session.require_result().schema
        relationship = schema.relationship_set(self.name)
        lines = [
            f"< {self.name} >",
            "",
            f"{'Participant':<24}{'(min,max)':<12}{'Type':<8}{'Role':<12}",
        ]
        for index, leg in enumerate(relationship.participations, start=1):
            kind = schema.object_class(leg.object_name).kind.value
            lines.append(
                f"{index}> {leg.object_name:<21}{str(leg.cardinality):<12}"
                f"{kind:<8}{leg.role:<12}"
            )
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "(Q)uit =>"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "q":
            return POP
        raise ToolError(f"unknown choice {line!r}")
