"""Phase 3: the Assertion Specification screens (Screens 8-9).

The Assertion Collection For Object Pairs screen presents the ranked
candidate pairs (ordered by attribute ratio) and collects an assertion
code for each; a contradiction opens the Assertion Conflict Resolution
Screen, which shows the derivation chain and lets the DDA repair it.
"""

from __future__ import annotations

from repro.assertions.conflicts import ConflictReport
from repro.assertions.kinds import AssertionKind, Source
from repro.errors import ConflictError, ToolError
from repro.tool.screens.base import POP, Screen
from repro.tool.session import ToolSession

_MENU_LINES = [
    "Assertions:",
    "  1 - OB_CL_name_1 'equals' OB_CL_name_2",
    "  2 - OB_CL_name_1 'contained in' OB_CL_name_2",
    "  3 - OB_CL_name_1 'contains' OB_CL_name_2",
    "  4 - OB_CL_name_1 and OB_CL_name_2 are disjoint but integrable",
    "  5 - OB_CL_name_1 and OB_CL_name_2 may be integratable",
    "  0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable",
]


class AssertionCollectScreen(Screen):
    """Screen 8: assertion collection for the ranked object pairs."""

    header = "ASSERTION SPECIFICATION"
    subheader = "Assertion Collection For Object Pairs"

    def __init__(self, relationships: bool = False) -> None:
        self.relationships = relationships
        if relationships:
            self.subheader = "Assertion Collection For Relationship Pairs"
        self._cursor = 0

    def _pairs(self, session: ToolSession):
        return session.candidate_pairs(self.relationships)

    def body(self, session: ToolSession) -> list[str]:
        pairs = self._pairs(session)
        network = session.network_for(self.relationships)
        lines = [
            f"{'Schema_Name1.Obj_Class1':<26}{'Schema_Name2.Obj_Class2':<26}"
            f"{'ATTRIBUTE':>10}{'ENTER':>10}",
            f"{'':<26}{'':<26}{'RATIO':>10}{'ASSERTION':>10}",
        ]
        for index, pair in enumerate(pairs):
            assertion = network.assertion_for(pair.first, pair.second)
            if assertion is None:
                entry = "=>" if index == self._cursor else ""
            else:
                tag = "" if assertion.source is Source.DDA else "*"
                entry = f"=>{assertion.kind.code}{tag}"
            lines.append(
                f"{str(pair.first):<26}{str(pair.second):<26}"
                f"{pair.attribute_ratio:>10.4f}{entry:>10}"
            )
        if not pairs:
            lines.append("   (no candidate pairs - define equivalences first)")
        lines.append("")
        lines.extend(_MENU_LINES)
        return lines

    def prompt(self, session: ToolSession) -> str:
        pairs = self._pairs(session)
        if self._cursor < len(pairs):
            pair = pairs[self._cursor]
            return (
                f"Assertion for {pair.first} / {pair.second} "
                "(0-5, (N)ext, (R <row> <code>) revise, (E)xit) :"
            )
        return "All pairs reviewed.  (R <row> <code>) revise, (E)xit :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        pairs = self._pairs(session)
        network = session.network_for(self.relationships)
        if choice == "e":
            return POP
        if choice == "n":
            if self._cursor < len(pairs):
                self._cursor += 1
            return None
        if choice == "r":
            if len(args) != 2:
                raise ToolError("usage: R <row-number> <code>")
            row = self._row(pairs, args[0])
            code = self._code(args[1])
            try:
                network.respecify(pairs[row].first, pairs[row].second, code)
            except ConflictError as conflict:
                return ConflictResolutionScreen(
                    conflict.report, self.relationships
                )
            session.status = "assertion revised"
            return None
        if choice.isdigit() and not args:
            if self._cursor >= len(pairs):
                raise ToolError("all pairs reviewed; use R to revise")
            code = self._code(choice)
            pair = pairs[self._cursor]
            try:
                network.specify(pair.first, pair.second, code)
            except ConflictError as conflict:
                return ConflictResolutionScreen(
                    conflict.report, self.relationships
                )
            self._cursor += 1
            return None
        raise ToolError(f"unknown choice {line!r}")

    @staticmethod
    def _row(pairs, text: str) -> int:
        try:
            row = int(text) - 1
        except ValueError:
            raise ToolError(f"bad row number {text!r}") from None
        if not 0 <= row < len(pairs):
            raise ToolError(f"row {text} is out of range")
        return row

    @staticmethod
    def _code(text: str) -> AssertionKind:
        try:
            return AssertionKind.from_code(int(text))
        except ValueError:
            raise ToolError(f"assertion code must be 0-5, got {text!r}") from None


class ConflictResolutionScreen(Screen):
    """Screen 9: show the conflicting assertions and their derivation."""

    header = "ASSERTION SPECIFICATION"
    subheader = "Assertion Conflict Resolution Screen"

    def __init__(self, report: ConflictReport, relationships: bool) -> None:
        self.report = report
        self.relationships = relationships

    def body(self, session: ToolSession) -> list[str]:
        report = self.report
        lines = [
            f"{'SCHEMA_NAME1.OBJ_CLASS1':<26}{'SCHEMA_NAME2.OBJ_CLASS2':<26}"
            f"{'CURRENT':>9}{'NEW':>21}",
            f"{'':<26}{'':<26}{'ASSERTION':>9}{'ASSERTION':>21}",
        ]
        current_code = (
            "?" if report.current is None else str(report.current.kind.code)
        )
        current_tag = (
            "<derived>(CONFLICT)"
            if report.current is not None
            and report.current.source is Source.DERIVED
            else "(CONFLICT)"
        )
        lines.append(
            f"{str(report.subject_first):<26}{str(report.subject_second):<26}"
            f"{current_code:>9}{current_tag:>21}"
        )
        lines.append(
            f"{str(report.new.first):<26}{str(report.new.second):<26}"
            f"{report.new.kind.code:>9}{'<new>(CONFLICT)':>21}"
        )
        for assertion in report.chain:
            lines.append(
                f"{str(assertion.first):<26}{str(assertion.second):<26}"
                f"{assertion.kind.code:>9}"
            )
        minimal = report.minimal_conflict()
        if minimal:
            lines.append("")
            lines.append("Minimal conflict set (retract any one to resolve):")
            for index, assertion in enumerate(minimal, start=1):
                tag = "" if assertion.source is Source.DDA else " *"
                lines.append(
                    f"  {index} - {assertion.describe()} "
                    f"(code {assertion.kind.code}){tag}"
                )
        lines.append("")
        lines.extend(_MENU_LINES)
        return lines

    def prompt(self, session: ToolSession) -> str:
        options = (
            "(W)ithdraw new assertion  "
            "(C <line> <code>) change a chain assertion then retry"
        )
        if self.report.minimal_conflict():
            options += "  (M <n>) retract conflict-set member <n> then retry"
        return options + "  :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        network = session.network_for(self.relationships)
        if choice == "w":
            session.status = "new assertion withdrawn"
            return POP
        if choice == "c":
            if len(args) != 2:
                raise ToolError("usage: C <chain-line-number> <code>")
            try:
                index = int(args[0]) - 1
            except ValueError:
                raise ToolError(f"bad line number {args[0]!r}") from None
            if not 0 <= index < len(self.report.chain):
                raise ToolError(f"chain line {args[0]} is out of range")
            target = self.report.chain[index]
            if target.source is not Source.DDA:
                raise ToolError(
                    "that assertion comes from the schema structure; "
                    "edit the schema instead"
                )
            code = int(args[1])
            network.respecify(target.first, target.second, code)
            try:
                network.specify(
                    self.report.new.first,
                    self.report.new.second,
                    self.report.new.kind,
                )
            except ConflictError as conflict:
                self.report = conflict.report
                session.status = "still conflicting"
                return None
            session.status = "conflict resolved"
            return POP
        if choice == "m":
            if len(args) != 1:
                raise ToolError("usage: M <conflict-set-member-number>")
            minimal = self.report.minimal_conflict()
            if not minimal:
                raise ToolError("no minimal conflict set for this report")
            try:
                index = int(args[0]) - 1
            except ValueError:
                raise ToolError(f"bad member number {args[0]!r}") from None
            if not 0 <= index < len(minimal):
                raise ToolError(f"conflict-set member {args[0]} is out of range")
            target = minimal[index]
            if target.source is not Source.DDA:
                raise ToolError(
                    "that assertion comes from the schema structure; "
                    "edit the schema instead"
                )
            network.retract(target.first, target.second)
            try:
                network.specify(
                    self.report.new.first,
                    self.report.new.second,
                    self.report.new.kind,
                )
            except ConflictError as conflict:
                self.report = conflict.report
                session.status = "still conflicting"
                return None
            session.status = "conflict resolved"
            return POP
        raise ToolError(f"unknown choice {line!r}")
