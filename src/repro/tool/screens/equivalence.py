"""Phase 2: the Equivalence Class Specification screens (Screens 6-7).

* Schema Name Selection Screen — choose the two schemas being integrated;
* Entity/Category Name Selection Screen (Screen 6) — pick one object class
  from each schema whose attributes may be equivalent;
* Equivalence Class Creation and Deletion Screen (Screen 7) — mark
  attributes as members of the same equivalence class.

The relationship-set subphase (main menu item 4) reuses the same screens
with ``relationships=True``.
"""

from __future__ import annotations

from repro.ecr.attributes import AttributeRef
from repro.errors import ToolError
from repro.tool.screens.base import POP, Replace, Screen
from repro.tool.session import ToolSession


class SchemaSelectScreen(Screen):
    """Choose the two schemas the current phase works on."""

    header = "EQUIVALENCE SPECIFICATION"
    subheader = "Schema Name Selection Screen"

    def __init__(self, next_screen_factory, purpose: str = "") -> None:
        self._next_screen_factory = next_screen_factory
        if purpose:
            self.subheader = f"Schema Name Selection Screen - {purpose}"

    def body(self, session: ToolSession) -> list[str]:
        lines = ["Defined schemas:"]
        for index, name in enumerate(session.schemas, start=1):
            lines.append(f"{index}> {name}")
        if session.selected_pair:
            lines.append("")
            lines.append(
                "currently selected: "
                + " and ".join(session.selected_pair)
            )
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "Enter: <schema1> <schema2>   or (E)xit :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "e" and not args:
            return POP
        parts = line.split()
        if len(parts) != 2:
            raise ToolError("enter exactly two schema names")
        session.select_pair(parts[0], parts[1])
        return Replace(self._next_screen_factory())


class ObjectSelectScreen(Screen):
    """Screen 6: pick one object class from each schema."""

    header = "EQUIVALENCE SPECIFICATION"
    subheader = "Entity/Category Name Selection Screen"

    def __init__(self, relationships: bool = False) -> None:
        self.relationships = relationships
        if relationships:
            self.subheader = "Relationship Name Selection Screen"

    def _names(self, session: ToolSession, schema_name: str) -> list[str]:
        schema = session.schema(schema_name)
        if self.relationships:
            return [r.name for r in schema.relationship_sets()]
        return [o.name for o in schema.object_classes()]

    def body(self, session: ToolSession) -> list[str]:
        first, second = session.require_pair()
        left = self._names(session, first)
        right = self._names(session, second)
        lines = [f"{first:<36}{second:<36}"]
        for index in range(max(len(left), len(right))):
            cell_a = left[index] if index < len(left) else ""
            cell_b = right[index] if index < len(right) else ""
            lines.append(f"{index + 1}> {cell_a:<33}{cell_b:<36}")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "Enter: <object1> <object2>   or (E)xit :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "e" and not args:
            return POP
        parts = line.split()
        if len(parts) != 2:
            raise ToolError("enter one object from each schema")
        first, second = session.require_pair()
        if parts[0] not in self._names(session, first):
            raise ToolError(f"{parts[0]!r} is not in schema {first!r}")
        if parts[1] not in self._names(session, second):
            raise ToolError(f"{parts[1]!r} is not in schema {second!r}")
        return EquivalenceEditScreen(parts[0], parts[1], self.relationships)


class EquivalenceEditScreen(Screen):
    """Screen 7: create and delete attribute equivalence classes."""

    header = "EQUIVALENCE SPECIFICATION"
    subheader = "Equivalence Class Creation and Deletion Screen"

    def __init__(
        self, first_object: str, second_object: str, relationships: bool = False
    ) -> None:
        self.first_object = first_object
        self.second_object = second_object
        self.relationships = relationships

    def body(self, session: ToolSession) -> list[str]:
        first_schema, second_schema = session.require_pair()
        lines = [
            f"(schema.object1){'':<20}(schema.object2)",
            f"{first_schema}.{self.first_object:<28}"
            f"{second_schema}.{self.second_object}",
            "",
            f"{'Attribute Name':<20}{'Eq_class #':<12}"
            f"{'Attribute Name':<20}{'Eq_class #':<12}",
        ]
        left = self._rows(session, first_schema, self.first_object)
        right = self._rows(session, second_schema, self.second_object)
        for index in range(max(len(left), len(right))):
            cell_a = left[index] if index < len(left) else ("", "")
            cell_b = right[index] if index < len(right) else ("", "")
            lines.append(
                f"{index + 1}> {cell_a[0]:<17}{cell_a[1]:<12}"
                f"{cell_b[0]:<20}{cell_b[1]:<12}"
            )
        return lines

    def _rows(
        self, session: ToolSession, schema_name: str, object_name: str
    ) -> list[tuple[str, str]]:
        schema = session.schema(schema_name)
        structure = schema.get(object_name)
        rows = []
        for attribute in structure.attributes:
            ref = AttributeRef(schema_name, object_name, attribute.name)
            rows.append((attribute.name, str(session.registry.class_number(ref))))
        return rows

    def prompt(self, session: ToolSession) -> str:
        return (
            "(A)dd <attr1> <attr2> to same class  "
            "(D)elete <1|2> <attr> from class  (Z)undo  (Y)redo  (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            # undo can reach back past this screen's pair selection
            return POP if session.selected_pair is None else None
        first_schema, second_schema = session.require_pair()
        if choice == "e":
            return POP
        if choice == "s":
            return None
        if choice == "a":
            if len(args) != 2:
                raise ToolError("usage: A <attr-of-object1> <attr-of-object2>")
            issues = session.analysis.declare_equivalent(
                AttributeRef(first_schema, self.first_object, args[0]),
                AttributeRef(second_schema, self.second_object, args[1]),
            )
            if issues:
                session.status = "; ".join(issue.message for issue in issues)
            return None
        if choice == "d":
            if len(args) != 2 or args[0] not in ("1", "2"):
                raise ToolError("usage: D <1|2> <attribute>")
            if args[0] == "1":
                ref = AttributeRef(first_schema, self.first_object, args[1])
            else:
                ref = AttributeRef(second_schema, self.second_object, args[1])
            session.analysis.remove_from_class(ref)
            return None
        raise ToolError(f"unknown choice {line!r}")
