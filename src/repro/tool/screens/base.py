"""Screen infrastructure: the base class and navigation results.

Every screen renders a header/body onto the virtual terminal and handles
one input line at a time.  ``handle`` returns where to go next:

* ``None`` — stay on this screen;
* another :class:`Screen` — push it (the paper's screens form a hierarchy,
  Figure 6);
* :data:`POP` — leave this screen, back to the one beneath.

Errors raised by the library surface as the session status line rather
than crashing the tool, matching the original's interactive feel.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.obs.trace import span
from repro.tool.session import ToolSession
from repro.tool.terminal import VirtualTerminal


class _Pop:
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "POP"


#: Sentinel: leave the current screen.
POP = _Pop()


class Replace:
    """Navigation result: swap the current screen for another one.

    Used when a screen finishes a sub-step and hands over to a sibling
    (category parents → attributes), so that exiting the sibling returns
    to the *grandparent* screen, not back into the finished sub-step.
    """

    def __init__(self, screen: "Screen") -> None:
        self.screen = screen


#: What ``handle`` may return.
Navigation = "Screen | Replace | _Pop | None"


class Screen:
    """One menu/form screen of the tool.

    The paper: each screen "is made up of multiple windows, some of which
    can be scrolled to supply and display additional information."  The
    base class implements that scrolling generically: when the body is
    longer than the window, the ``S`` choice pages through it (wrapping
    back to the top), exactly like the original's Scroll menu items.
    """

    #: Big centred header (the screen family, e.g. "SCHEMA COLLECTION").
    header = "SCHEMA INTEGRATION TOOL"
    #: The angle-bracketed subtitle (the specific screen name).
    subheader = ""

    #: current scroll offset (lines of body skipped)
    _scroll = 0

    def body(self, session: ToolSession) -> list[str]:
        """The screen's content lines (without headers)."""
        raise NotImplementedError

    def prompt(self, session: ToolSession) -> str:
        """The bottom menu/prompt line."""
        raise NotImplementedError

    def handle(self, line: str, session: ToolSession):
        """Process one input line; see module docstring for return values."""
        raise NotImplementedError

    # -- shared plumbing -------------------------------------------------------

    def _page_size(self, terminal: VirtualTerminal) -> int:
        # headers (3 rows) + position line + status + blank + prompt must
        # all fit inside the grid alongside the body page
        return max(1, terminal.height - 8)

    def render(self, terminal: VirtualTerminal, session: ToolSession) -> None:
        body = self.body(session)
        page = self._page_size(terminal)
        if self._scroll and self._scroll >= len(body):
            self._scroll = 0  # the body shrank since the last scroll
        if len(body) > page:
            shown = body[self._scroll : self._scroll + page]
            position = (
                f"-- lines {self._scroll + 1}-"
                f"{min(self._scroll + page, len(body))} of {len(body)}"
                " -- (S)croll for more --"
            )
            body = shown + [position]
        if session.status:
            body = body + [f"** {session.status}"]
        body = body + ["", self.prompt(session)]
        terminal.show_screen(self.header, self.subheader, body)

    def scroll(self, terminal_height: int = 24) -> None:
        """Advance one page (wrapping); bound to the ``S`` choice."""
        self._scroll += max(1, terminal_height - 8)

    def safe_handle(self, line: str, session: ToolSession):
        """``handle`` with library errors captured into the status line,
        and the generic Scroll choice applied before screen logic."""
        session.status = ""
        stripped = line.strip()
        if stripped.lower() == "s":
            self.scroll()
            return None
        with span(
            "tool.screen.handle",
            counters=session.analysis.counters,
            screen=type(self).__name__,
        ):
            try:
                return self.handle(stripped, session)
            except ReproError as exc:
                session.status = str(exc)
                return None

    @staticmethod
    def time_travel(choice: str, session: ToolSession) -> bool:
        """Handle the cross-phase (Z)undo / (Y)redo menu choices.

        Screens that expose undo/redo call this first in ``handle``; a
        ``True`` return means the choice was consumed (the session status
        line already says what happened).  The kernel walks one event
        group at a time, so an equivalence declared on Screen 7 can be
        undone from Screen 3 — undo/redo cut across phases.
        """
        if choice == "z":
            session.status = session.undo()
            return True
        if choice == "y":
            session.status = session.redo()
            return True
        return False

    @staticmethod
    def parse_choice(line: str) -> tuple[str, list[str]]:
        """Split ``"A Student e"`` into ``("a", ["Student", "e"])``."""
        parts = line.split()
        if not parts:
            return "", []
        return parts[0].lower(), parts[1:]
