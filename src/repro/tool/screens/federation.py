"""Screen 16 (an extension): run global requests over the components.

The paper stops at producing the integrated schema and its mappings; this
screen is the operational payoff — the DDA types a request against the
integrated schema and the federated query engine
(:mod:`repro.federation`) plans it, fans it out to the component
databases concurrently and merges the answers under the strategy the
assertion network justifies.  The screen shows the merged rows, the plan
and the per-component health, so a degraded answer (a component down,
its breaker open) is visible rather than silent.
"""

from __future__ import annotations

from repro.errors import ToolError
from repro.tool.screens.base import POP, Screen
from repro.tool.session import ToolSession


class FederationScreen(Screen):
    """Execute global requests; inspect plans, health and conflicts."""

    header = "SCHEMA INTEGRATION TOOL"
    subheader = "Global Request Execution"

    def __init__(self) -> None:
        self._output: list[str] = []

    def body(self, session: ToolSession) -> list[str]:
        engine = session.federation
        lines = [
            "Requests are posed against the integrated schema and answered",
            "by the component databases (concurrent fan-out + merge).",
            "",
        ]
        if engine is None:
            lines.append(
                "no engine attached yet -- the first request populates "
                "demo component databases"
            )
        else:
            components = sorted(engine.executor.backends)
            lines.append(f"components: {', '.join(components)}")
            for name in components:
                breaker = engine.executor.breaker_for(name)
                lines.append(f"  {name}: breaker {breaker.state}")
        if self._output:
            lines.append("")
            lines.extend(self._output)
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Enter request (select ... from ...), "
            "P <request> to see the plan, or (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        if not line:
            return None
        lowered = line.lower()
        if lowered == "e":
            return POP
        if lowered.startswith("p ") or lowered.startswith("p\t"):
            engine = session.require_federation()
            self._output = engine.explain(line[2:].strip()).splitlines()
            session.status = "plan only; enter the request to execute it"
            return None
        if not lowered.startswith("select"):
            raise ToolError(
                "enter a request starting with 'select', "
                "P <request>, or E to exit"
            )
        result = session.execute_global_request(line)
        self._output = self._render_result(result)
        session.status = result.summary()
        return None

    @staticmethod
    def _render_result(result) -> list[str]:
        lines = [f"answer ({len(result.rows)} row(s)):"]
        for row in result.rows[:20]:
            lines.append(
                "  " + ", ".join("-" if v is None else str(v) for v in row)
            )
        if len(result.rows) > 20:
            lines.append(f"  ... {len(result.rows) - 20} more row(s)")
        lines.append("")
        lines.append(f"merge strategy: {result.strategy}")
        for status in result.health.statuses:
            lines.append("  " + status.describe())
        for conflict in result.conflicts:
            lines.append("  ! " + conflict)
        return lines
