"""Screen 1: the main menu.

The first six tasks follow the four methodology phases: task 1 is schema
collection; tasks 2 and 3 handle object classes (equivalences, then
assertions); tasks 4 and 5 do the same for relationship sets; task 6
performs integration and opens the browse hierarchy.  Task 7 goes
operational: it runs global requests against the integrated schema via
the federated query engine (:mod:`repro.federation`).  Task 8 reviews
the solver's ranked equivalence suggestions (:mod:`repro.solver`) for
one-keystroke confirmation.  Task 9 evolves a component schema through
typed edits (:mod:`repro.evolution`), with every downstream layer
repaired incrementally and a repair-scope report.
"""

from __future__ import annotations

from repro.errors import DictionaryError, ToolError
from repro.tool.screens.base import POP, Screen
from repro.tool.screens.assertion import AssertionCollectScreen
from repro.tool.screens.browse import ObjectClassScreen
from repro.tool.screens.collection import SchemaNameScreen
from repro.tool.screens.equivalence import ObjectSelectScreen, SchemaSelectScreen
from repro.tool.screens.evolution import EvolutionScreen
from repro.tool.screens.federation import FederationScreen
from repro.tool.screens.suggestion import SuggestionScreen
from repro.tool.session import ToolSession

_TASKS = [
    "1. Define the schemas to be integrated",
    "2. Specify attribute equivalences for entities and categories",
    "3. Specify assertions for entities and categories",
    "4. Specify attribute equivalences for relationships",
    "5. Specify assertions for relationships",
    "6. Perform integration and view the integrated schema",
    "7. Run a global request over the component databases",
    "8. Review suggested equivalence assertions",
    "9. Edit a component schema (repairs propagate incrementally)",
]


class MainMenuScreen(Screen):
    """Screen 1: the task menu shown when the tool is invoked."""

    header = "SCHEMA INTEGRATION TOOL"
    subheader = "Main Menu"

    def body(self, session: ToolSession) -> list[str]:
        lines = list(_TASKS)
        lines.append("")
        lines.append(
            f"schemas defined: {len(session.schemas)}"
            + (
                f"   selected pair: {' / '.join(session.selected_pair)}"
                if session.selected_pair
                else ""
            )
        )
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Enter task (1-9), (S)ave <file>, (L)oad <file>, "
            "(Z)undo, (Y)redo, or (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            return None
        if choice == "e":
            return POP
        if choice == "s":
            if len(args) != 1:
                raise ToolError("usage: S <file>")
            session.save(args[0])
            session.status = f"session saved to {args[0]}"
            return None
        if choice == "l":
            if len(args) != 1:
                raise ToolError("usage: L <file>")
            try:
                session.restore_from(args[0])
            except (OSError, DictionaryError) as exc:
                raise ToolError(f"cannot load {args[0]}: {exc}") from exc
            recovery = session.last_recovery
            session.status = f"session loaded from {args[0]}"
            if recovery is not None and recovery.used_wal:
                session.status += f" ({recovery.summary()})"
            return None
        if choice == "1":
            return SchemaNameScreen()
        if choice == "2":
            return self._equivalence_screen(session, relationships=False)
        if choice == "3":
            return self._assertion_screen(session, relationships=False)
        if choice == "4":
            return self._equivalence_screen(session, relationships=True)
        if choice == "5":
            return self._assertion_screen(session, relationships=True)
        if choice == "6":
            session.integrate()
            session.status = session.result.schema.summary()
            return ObjectClassScreen()
        if choice == "7":
            session.require_result()  # federation needs mappings to plan
            return FederationScreen()
        if choice == "8":
            return self._suggestion_screen(session)
        if choice == "9":
            return EvolutionScreen()
        raise ToolError(f"unknown choice {line!r}")

    @staticmethod
    def _equivalence_screen(session: ToolSession, relationships: bool):
        kind = "relationship sets" if relationships else "object classes"
        if session.selected_pair is None:
            return SchemaSelectScreen(
                lambda: ObjectSelectScreen(relationships), kind
            )
        return ObjectSelectScreen(relationships)

    @staticmethod
    def _assertion_screen(session: ToolSession, relationships: bool):
        if session.selected_pair is None:
            return SchemaSelectScreen(
                lambda: AssertionCollectScreen(relationships),
                "assertions",
            )
        return AssertionCollectScreen(relationships)

    @staticmethod
    def _suggestion_screen(session: ToolSession):
        if session.selected_pair is None:
            return SchemaSelectScreen(
                lambda: SuggestionScreen(), "suggestions"
            )
        return SuggestionScreen()
