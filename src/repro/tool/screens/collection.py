"""Phase 1: the Schema Collection screens (Screens 2-5 of the paper).

* Schema Name Collection Screen — define/delete/update schemas;
* Structure Information Collection Screen — the structures of one schema
  (name, type E/C/R, number of attributes);
* Category Information Collection Screen — the parents of a category;
* Relationship Information Collection Screen — the legs of a relationship;
* Attribute Information Collection Screen — name/domain/key rows.
"""

from __future__ import annotations

from repro.ecr.attributes import Attribute
from repro.ecr.domains import domain_from_name
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.errors import ToolError
from repro.evolution import (
    AddAttribute,
    AddClass,
    AddParticipation,
    AddRelationship,
    DropAttribute,
    DropClass,
    DropParticipation,
    DropRelationship,
    SetCategoryParents,
)
from repro.tool.screens.base import POP, Replace, Screen
from repro.tool.session import ToolSession


class SchemaNameScreen(Screen):
    """Screen 2: define the names of the schemas to be integrated."""

    header = "SCHEMA COLLECTION"
    subheader = "Schema Name Collection Screen"

    def body(self, session: ToolSession) -> list[str]:
        lines = ["Schema Name"]
        for index, name in enumerate(session.schemas, start=1):
            lines.append(f"{index}> {name}")
        if not session.schemas:
            lines.append("   (no schemas defined)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Choose: (A)dd <name>  (F)ile <ddl-file>  (D)elete <name>  "
            "(U)pdate <name>  (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if choice == "e":
            return POP
        if choice == "a":
            if len(args) != 1:
                raise ToolError("usage: A <schema-name>")
            session.add_schema(args[0])
            session.status = f"schema {args[0]!r} added"
            return StructureInfoScreen(args[0])
        if choice == "f":
            if len(args) != 1:
                raise ToolError("usage: F <ddl-file>")
            from repro.ecr.ddl import parse_ddl_schemas

            try:
                text = open(args[0]).read()
            except OSError as exc:
                raise ToolError(f"cannot read {args[0]}: {exc}") from exc
            loaded = parse_ddl_schemas(text)
            if not loaded:
                raise ToolError(f"{args[0]} contains no schemas")
            for schema in loaded:
                session.adopt_schema(schema)
            session.status = (
                f"loaded {', '.join(schema.name for schema in loaded)} "
                f"from {args[0]}"
            )
            return None
        if choice == "d":
            if len(args) != 1:
                raise ToolError("usage: D <schema-name>")
            session.delete_schema(args[0])
            session.status = f"schema {args[0]!r} deleted"
            return None
        if choice == "u":
            if len(args) != 1:
                raise ToolError("usage: U <schema-name>")
            session.schema(args[0])
            return StructureInfoScreen(args[0])
        raise ToolError(f"unknown choice {line!r}")


class StructureInfoScreen(Screen):
    """Screen 3: the structures (E/C/R) of one schema."""

    header = "SCHEMA COLLECTION"
    subheader = "Structure Information Collection Screen"

    def __init__(self, schema_name: str) -> None:
        self.schema_name = schema_name

    def body(self, session: ToolSession) -> list[str]:
        schema = session.schema(self.schema_name)
        lines = [
            f"SCHEMA NAME: {self.schema_name}",
            "",
            f"{'Object Name':<24}{'Type(E/C/R)':<14}{'# of attributes':<16}",
        ]
        for index, structure in enumerate(schema, start=1):
            lines.append(
                f"{index}> {structure.name:<21}{structure.kind.value:<14}"
                f"{len(structure.attributes):<16}"
            )
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Choose: (A)dd <name> <e/c/r>  (D)elete <name>  "
            "(U)pdate <name>  (Z)undo  (Y)redo  (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            # undo may have reverted this schema's very creation
            return POP if self.schema_name not in session.schemas else None
        schema = session.schema(self.schema_name)
        if choice == "e":
            return POP
        if choice == "s":
            return None  # single-page virtual terminal; nothing to scroll
        if choice == "a":
            if len(args) != 2 or args[1].lower() not in ("e", "c", "r"):
                raise ToolError("usage: A <name> <e/c/r>")
            name, kind = args[0], args[1].lower()
            if kind == "e":
                session.apply_edit(
                    self.schema_name, AddClass({"kind": "e", "name": name})
                )
                return AttributeInfoScreen(self.schema_name, name)
            if kind == "c":
                return CategoryInfoScreen(self.schema_name, name)
            session.apply_edit(
                self.schema_name, AddRelationship({"kind": "r", "name": name})
            )
            return RelationshipInfoScreen(self.schema_name, name)
        if choice == "d":
            if len(args) != 1:
                raise ToolError("usage: D <name>")
            structure = schema.get(args[0])
            if isinstance(structure, RelationshipSet):
                edit: object = DropRelationship(args[0], cascade=True)
            else:
                edit = DropClass(args[0], cascade=True)
            outcome = session.apply_edit(self.schema_name, edit)
            session.status = (
                f"{args[0]!r} removed ({outcome.scope.summary()})"
            )
            return None
        if choice == "u":
            if len(args) != 1:
                raise ToolError("usage: U <name>")
            structure = schema.get(args[0])
            if isinstance(structure, RelationshipSet):
                return RelationshipInfoScreen(self.schema_name, args[0])
            return AttributeInfoScreen(self.schema_name, args[0])
        raise ToolError(f"unknown choice {line!r}")


class CategoryInfoScreen(Screen):
    """Category Information Collection Screen: connect a category upward."""

    header = "SCHEMA COLLECTION"
    subheader = "Category Information Collection Screen"

    def __init__(self, schema_name: str, category_name: str) -> None:
        self.schema_name = schema_name
        self.category_name = category_name
        self._pending_parents: list[str] = []

    def body(self, session: ToolSession) -> list[str]:
        schema = session.schema(self.schema_name)
        lines = [
            f"SCHEMA NAME: {self.schema_name}    CATEGORY: {self.category_name}",
            "",
            "Connected entities and categories:",
        ]
        if self.category_name in schema:
            parents = schema.category(self.category_name).parents
        else:
            parents = self._pending_parents
        for index, parent in enumerate(parents, start=1):
            lines.append(f"{index}> {parent}")
        if not parents:
            lines.append("   (none yet - add at least one)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return "Choose: (A)dd <parent>  (D)elete <parent>  (E)xit :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        schema = session.schema(self.schema_name)
        defined = self.category_name in schema
        if choice == "e":
            if not defined:
                raise ToolError(
                    f"category {self.category_name!r} needs at least one parent"
                )
            return Replace(
                AttributeInfoScreen(self.schema_name, self.category_name)
            )
        if choice == "a":
            if len(args) != 1:
                raise ToolError("usage: A <parent-object>")
            schema.object_class(args[0])  # parent must already exist
            if defined:
                parents = schema.category(self.category_name).parents
                session.apply_edit(
                    self.schema_name,
                    SetCategoryParents(
                        self.category_name, (*parents, args[0])
                    ),
                )
            else:
                session.apply_edit(
                    self.schema_name,
                    AddClass(
                        {
                            "kind": "c",
                            "name": self.category_name,
                            "parents": [args[0]],
                        }
                    ),
                )
            return None
        if choice == "d":
            if len(args) != 1 or not defined:
                raise ToolError("usage: D <parent-object>")
            parents = schema.category(self.category_name).parents
            if args[0] not in parents:
                raise ToolError(
                    f"{args[0]!r} is not a parent of {self.category_name!r}"
                )
            session.apply_edit(
                self.schema_name,
                SetCategoryParents(
                    self.category_name,
                    tuple(parent for parent in parents if parent != args[0]),
                ),
            )
            return None
        raise ToolError(f"unknown choice {line!r}")


class RelationshipInfoScreen(Screen):
    """Screen 4: the entities a relationship set connects."""

    header = "SCHEMA COLLECTION"
    subheader = "Relationship Information Collection Screen"

    def __init__(self, schema_name: str, relationship_name: str) -> None:
        self.schema_name = schema_name
        self.relationship_name = relationship_name

    def body(self, session: ToolSession) -> list[str]:
        schema = session.schema(self.schema_name)
        relationship = schema.relationship_set(self.relationship_name)
        lines = [
            f"SCHEMA NAME: {self.schema_name}    "
            f"RELATIONSHIP: {self.relationship_name}",
            "",
            f"{'Connected Object':<24}{'(min,max)':<12}{'Role':<12}",
        ]
        for index, leg in enumerate(relationship.participations, start=1):
            lines.append(
                f"{index}> {leg.object_name:<21}{str(leg.cardinality):<12}"
                f"{leg.role:<12}"
            )
        if not relationship.participations:
            lines.append("   (no connections yet - add at least two)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Choose: (A)dd <object> <min,max> [role]  (D)elete <object|role>  "
            "(E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        schema = session.schema(self.schema_name)
        relationship = schema.relationship_set(self.relationship_name)
        if choice == "e":
            if relationship.degree < 2:
                raise ToolError(
                    f"relationship {self.relationship_name!r} must connect "
                    "at least two legs"
                )
            return Replace(
                AttributeInfoScreen(self.schema_name, self.relationship_name)
            )
        if choice == "a":
            if len(args) not in (2, 3):
                raise ToolError("usage: A <object> <min,max> [role]")
            schema.object_class(args[0])  # participant must exist
            cardinality = CardinalityConstraint.parse(args[1])
            role = args[2] if len(args) == 3 else ""
            session.apply_edit(
                self.schema_name,
                AddParticipation(
                    self.relationship_name,
                    Participation(args[0], cardinality, role),
                ),
            )
            return None
        if choice == "d":
            if len(args) != 1:
                raise ToolError("usage: D <object-or-role>")
            session.apply_edit(
                self.schema_name,
                DropParticipation(self.relationship_name, args[0]),
            )
            return None
        raise ToolError(f"unknown choice {line!r}")


class AttributeInfoScreen(Screen):
    """Screen 5: the attributes of one structure (name, domain, key)."""

    header = "SCHEMA COLLECTION"
    subheader = "Attribute Information Collection Screen"

    def __init__(self, schema_name: str, structure_name: str) -> None:
        self.schema_name = schema_name
        self.structure_name = structure_name

    def body(self, session: ToolSession) -> list[str]:
        schema = session.schema(self.schema_name)
        structure = schema.get(self.structure_name)
        lines = [
            f"SCHEMA NAME: {self.schema_name}   "
            f"OBJECT NAME: {self.structure_name}   "
            f"TYPE: {structure.kind.value}",
            "",
            f"{'Attribute Name':<24}{'Domain':<20}{'Key (y/n)':<10}",
        ]
        for index, attribute in enumerate(structure.attributes, start=1):
            lines.append(
                f"{index}> {attribute.name:<21}{str(attribute.domain):<20}"
                f"{'y' if attribute.is_key else 'n':<10}"
            )
        if not structure.attributes:
            lines.append("   (no attributes)")
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            "Choose: (A)dd <name> <domain> <y/n>  (D)elete <name>  "
            "(Z)undo  (Y)redo  (E)xit :"
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            # undo may have reverted this schema or structure's creation
            if self.schema_name not in session.schemas:
                return POP
            if self.structure_name not in session.schema(self.schema_name):
                return POP
            return None
        schema = session.schema(self.schema_name)
        structure = schema.get(self.structure_name)
        if choice == "e":
            return POP
        if choice == "s":
            return None
        if choice == "a":
            if len(args) != 3 or args[2].lower() not in ("y", "n"):
                raise ToolError("usage: A <name> <domain> <y/n>")
            session.apply_edit(
                self.schema_name,
                AddAttribute(
                    self.structure_name,
                    Attribute(
                        args[0],
                        domain_from_name(args[1]),
                        args[2].lower() == "y",
                    ),
                ),
            )
            return None
        if choice == "d":
            if len(args) != 1:
                raise ToolError("usage: D <name>")
            session.apply_edit(
                self.schema_name,
                DropAttribute(self.structure_name, args[0]),
            )
            return None
        raise ToolError(f"unknown choice {line!r}")
