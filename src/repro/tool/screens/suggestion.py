"""The Assertion Suggestion screen (main-menu task 8).

The solver's suggestion pass turns Screen 8's hand-enumeration into
confirm-not-enumerate: candidate equivalences across the selected schema
pair arrive ranked by resemblance and pre-labelled ``safe`` or
``conflicting`` by trial propagation, and the DDA accepts one with a
single keystroke.  Accepted suggestions commit through the analysis
session (the kernel bus), so undo/redo and the WAL cover them like any
Screen 8 assertion.
"""

from __future__ import annotations

from repro.errors import ConflictError, ToolError
from repro.tool.screens.base import POP, Screen
from repro.tool.session import ToolSession


class SuggestionScreen(Screen):
    """Ranked, safety-labelled equivalence suggestions for the pair."""

    header = "ASSERTION SPECIFICATION"
    subheader = "Suggested Equivalence Assertions"

    def __init__(self, relationships: bool = False, limit: int = 10) -> None:
        self.relationships = relationships
        if relationships:
            self.subheader = "Suggested Equivalence Assertions (Relationships)"
        self.limit = limit
        self._cursor = 0
        self._suggestions: list | None = None

    def _current(self, session: ToolSession) -> list:
        if self._suggestions is None:
            first, second = session.require_pair()
            self._suggestions = session.analysis.suggest_assertions(
                first,
                second,
                relationships=self.relationships,
                limit=self.limit,
            )
            self._cursor = 0
        return self._suggestions

    def refresh(self) -> None:
        """Drop the cached list; the next render recomputes it."""
        self._suggestions = None

    def body(self, session: ToolSession) -> list[str]:
        suggestions = self._current(session)
        lines = [
            f"{'Schema_Name1.Obj_Class1':<26}{'Schema_Name2.Obj_Class2':<26}"
            f"{'SCORE':>8}{'STATUS':>13}",
        ]
        for index, suggestion in enumerate(suggestions):
            marker = "=>" if index == self._cursor else "  "
            lines.append(
                f"{marker}{str(suggestion.first):<24}"
                f"{str(suggestion.second):<26}"
                f"{suggestion.score:>8.4f}{suggestion.status:>13}"
            )
        if not suggestions:
            lines.append(
                "   (no undetermined pairs left - nothing to suggest)"
            )
        return lines

    def prompt(self, session: ToolSession) -> str:
        suggestions = self._current(session)
        if self._cursor < len(suggestions):
            suggestion = suggestions[self._cursor]
            return (
                f"Suggestion {suggestion.first} = {suggestion.second} "
                f"[{suggestion.status}]  "
                "(A)ccept, (N)ext, (R)efresh, (Z)undo, (Y)redo, (E)xit :"
            )
        return "All suggestions reviewed.  (R)efresh, (E)xit :"

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            self.refresh()
            return None
        if choice == "e":
            return POP
        if choice == "r":
            self.refresh()
            session.status = "suggestions recomputed"
            return None
        suggestions = self._current(session)
        if choice == "n":
            if self._cursor < len(suggestions):
                self._cursor += 1
            return None
        if choice == "a":
            if self._cursor >= len(suggestions):
                raise ToolError("all suggestions reviewed; R recomputes")
            suggestion = suggestions[self._cursor]
            if not suggestion.safe:
                clash = "; ".join(
                    member.describe() for member in suggestion.conflict
                )
                session.status = (
                    f"cannot accept: conflicts with {clash or 'prior facts'}"
                )
                self._cursor += 1
                return None
            try:
                session.analysis.specify(
                    suggestion.first,
                    suggestion.second,
                    suggestion.kind,
                    relationships=self.relationships,
                    note="accepted suggestion",
                )
            except ConflictError:
                # Safe was judged against a snapshot; facts moved since.
                session.status = "suggestion went stale - refreshing"
                self.refresh()
                return None
            session.status = (
                f"accepted {suggestion.first} = {suggestion.second}"
            )
            self.refresh()
            return None
        raise ToolError(f"unknown choice {line!r}")
