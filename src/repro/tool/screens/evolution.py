"""Schema Evolution Screen: apply typed edits with a repair-scope report.

A component schema rarely stays frozen once analysis has begun — the
paper's DDA discovers missing attributes and misplaced relationships
*while* resolving assertions.  This screen feeds a typed
:class:`~repro.evolution.SchemaEdit` (entered as its JSON payload)
through :meth:`ToolSession.apply_edit
<repro.tool.session.ToolSession.apply_edit>` and reports exactly how far
the localized repair reached: OCS cells recomputed, assertions
retracted, solver pairs re-propagated, clusters and merge groups
rebuilt, federation plans invalidated.
"""

from __future__ import annotations

import json

from repro.errors import ToolError
from repro.evolution import EDIT_KINDS, edit_from_payload
from repro.tool.screens.base import POP, Screen
from repro.tool.session import ToolSession


class EvolutionScreen(Screen):
    """Screen 9 bis: edit a component schema, repairs propagating live."""

    header = "SCHEMA EVOLUTION"
    subheader = "Component Schema Edit Screen"

    def __init__(self) -> None:
        self._last = None  # the latest EditOutcome, for the report pane

    def body(self, session: ToolSession) -> list[str]:
        lines = [f"{'Schema':<20}{'# structures':<14}"]
        for index, (name, schema) in enumerate(
            session.schemas.items(), start=1
        ):
            lines.append(f"{index}> {name:<17}{len(list(schema)):<14}")
        if not session.schemas:
            lines.append("   (no schemas defined)")
        lines.append("")
        lines.append("Edit kinds: " + ", ".join(sorted(EDIT_KINDS)))
        if self._last is not None:
            scope = self._last.scope
            lines.append("")
            lines.append(
                f"Last edit: {self._last.edit.describe()}"
                + (" [destructive]" if self._last.destructive else "")
            )
            lines.append(f"Repair scope: {scope.summary()}")
            for assertion in self._last.retracted:
                lines.append(
                    f"  retracted: {assertion.first} "
                    f"{assertion.kind.name} {assertion.second}"
                )
        return lines

    def prompt(self, session: ToolSession) -> str:
        return (
            'Choose: (A)pply <schema> <edit-json>  e.g. A sc1 '
            '{"kind": "rename_attribute", ...}  (Z)undo  (Y)redo  (E)xit :'
        )

    def handle(self, line: str, session: ToolSession):
        choice, args = self.parse_choice(line)
        if self.time_travel(choice, session):
            self._last = None  # the report no longer matches the state
            return None
        if choice == "e":
            return POP
        if choice == "a":
            if len(args) < 2:
                raise ToolError("usage: A <schema> <edit-json>")
            schema_name = args[0]
            raw = line.strip()[1:].strip()[len(schema_name) :].strip()
            try:
                payload = json.loads(raw)
            except ValueError as exc:
                raise ToolError(f"bad edit JSON: {exc}") from exc
            edit = edit_from_payload(payload)
            self._last = session.apply_edit(schema_name, edit)
            return None
        raise ToolError(f"unknown choice {line!r}")


__all__ = ["EvolutionScreen"]
