"""The tool's run loop: interactive or scripted.

The app maintains a screen stack (the paper's screens form a hierarchy —
Figure 6 shows the browse part); each iteration renders the top screen to
the virtual terminal, reads one input line and navigates.  The scripted
mode feeds a list of lines and returns the full transcript, which is how
tests and benchmarks replay DDA sessions deterministically.
"""

from __future__ import annotations

import sys
from typing import Iterable

from repro.errors import ToolError
from repro.tool.screens.base import POP, Replace, Screen
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.session import ToolSession
from repro.tool.terminal import VirtualTerminal


class ToolApp:
    """Drives screens over a session and a virtual terminal."""

    def __init__(
        self,
        session: ToolSession | None = None,
        terminal: VirtualTerminal | None = None,
    ) -> None:
        self.session = session or ToolSession()
        self.terminal = terminal or VirtualTerminal()
        self._stack: list[Screen] = [MainMenuScreen()]
        #: every rendered frame, in order (scripted mode's transcript)
        self.frames: list[str] = []

    @property
    def current_screen(self) -> Screen | None:
        return self._stack[-1] if self._stack else None

    @property
    def finished(self) -> bool:
        return not self._stack

    def render(self) -> str:
        """Render the current screen; returns (and records) the frame."""
        screen = self.current_screen
        if screen is None:
            raise ToolError("the tool has exited")
        screen.render(self.terminal, self.session)
        frame = self.terminal.render()
        self.frames.append(frame)
        return frame

    def feed(self, line: str) -> None:
        """Process one input line against the current screen."""
        screen = self.current_screen
        if screen is None:
            raise ToolError("the tool has exited")
        outcome = screen.safe_handle(line, self.session)
        if outcome is POP:
            self._stack.pop()
        elif isinstance(outcome, Replace):
            self._stack.pop()
            self._stack.append(outcome.screen)
        elif isinstance(outcome, Screen):
            self._stack.append(outcome)

    def run(self, lines: Iterable[str]) -> str:
        """Scripted run: render, feed, repeat; returns the transcript."""
        for line in lines:
            if self.finished:
                break
            self.render()
            self.feed(line)
        if not self.finished:
            self.render()
        return "\n".join(self.frames)


def run_script(
    lines: Iterable[str], session: ToolSession | None = None
) -> tuple[ToolApp, str]:
    """Run a scripted session; returns the app (for state) and transcript."""
    app = ToolApp(session)
    transcript = app.run(list(lines))
    return app, transcript


def main() -> int:
    """Interactive entry point (the ``ecr-integrate`` console script)."""
    app = ToolApp()
    print("Schema integration tool (reproduction of Sheth et al., ICDE 1988)")
    while not app.finished:
        sys.stdout.write(app.render())
        try:
            line = input("> ")
        except EOFError:
            break
        app.feed(line)
    print("bye")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
