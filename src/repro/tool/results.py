"""Typed results for the :class:`~repro.tool.session.ToolSession` facades.

The session's operational methods used to hand back whatever the
underlying engine produced — a raw
:class:`~repro.federation.engine.FederationResult`, the engine object
itself, a mutable :class:`~repro.kernel.recovery.RecoveryReport`.  Those
shapes were fine for the screens but awkward for remote callers: the
HTTP service (:mod:`repro.service`) needs frozen, JSON-serializable
values with a declared field set.

This module is that declared set.  Each class is a frozen dataclass
whose :meth:`to_wire` yields plain JSON types only; rich in-process
objects (the engine, the plan, the health report) stay reachable through
non-wire fields so the screens lose nothing.

* :class:`GlobalRequestResult` — one federated query's answer
  (:meth:`ToolSession.execute_global_request`);
* :class:`FederationAttachment` — what a federation hook-up wired
  (:meth:`ToolSession.connect_federation`);
* :class:`RecoveryInfo` — how the last open rebuilt the session
  (:meth:`ToolSession.recovery_info`).

The pre-redesign methods (``run_global_request``, ``attach_federation``)
still exist and still return the old shapes, but warn
``DeprecationWarning`` for one release; see docs/API.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.federation.engine import FederationEngine, FederationResult
    from repro.federation.health import FederationHealth
    from repro.kernel.recovery import RecoveryReport


@dataclass(frozen=True)
class GlobalRequestResult:
    """One global request, answered by the federation.

    The wire fields are scalars/strings only; ``health`` and ``raw``
    carry the full in-process objects for screens and tests.
    """

    #: the request text as the DDA typed it
    request: str
    #: merged answer rows (tuples, in merge order)
    rows: tuple[tuple, ...]
    #: the merge strategy the plan justified (``union``, ``outerjoin``, ...)
    strategy: str
    #: component schemas the plan fanned out to
    components: tuple[str, ...]
    #: rows removed by duplicate elimination / subsumption
    eliminated: int
    #: every planned component answered
    ok: bool
    #: some components answered, some failed (a partial answer)
    degraded: bool
    #: merge conflicts, described (empty when the merge was clean)
    conflicts: tuple[str, ...]
    #: the per-component outcome report (not serialized directly)
    health: "FederationHealth" = field(compare=False, repr=False)
    #: the engine's full result object, for in-process callers
    raw: "FederationResult" = field(compare=False, repr=False)

    @classmethod
    def from_engine_result(
        cls, request: str, result: "FederationResult"
    ) -> "GlobalRequestResult":
        return cls(
            request=request,
            rows=tuple(tuple(row) for row in result.rows),
            strategy=str(result.plan.strategy),
            components=tuple(result.plan.components),
            eliminated=result.eliminated,
            ok=result.ok,
            degraded=result.degraded,
            conflicts=tuple(c.describe() for c in result.conflicts),
            health=result.health,
            raw=result,
        )

    def summary(self) -> str:
        """One line for screens, status bars and audit records."""
        return self.raw.summary()

    def to_wire(self) -> dict[str, Any]:
        return {
            "request": self.request,
            "rows": [list(row) for row in self.rows],
            "row_count": len(self.rows),
            "strategy": self.strategy,
            "components": list(self.components),
            "eliminated": self.eliminated,
            "ok": self.ok,
            "degraded": self.degraded,
            "conflicts": list(self.conflicts),
            "health": self.health.to_dict(),
            "summary": self.summary(),
        }


@dataclass(frozen=True)
class FederationAttachment:
    """What :meth:`ToolSession.connect_federation` wired up."""

    #: component schemas with a backend attached, sorted
    components: tuple[str, ...]
    #: the integrated schema the requests are posed against
    integrated_schema: str
    #: components that got seeded demo stores (none when real stores came in)
    demo_components: tuple[str, ...]
    #: the live engine (not serialized; screens use it for plans/breakers)
    engine: "FederationEngine" = field(compare=False, repr=False)

    def to_wire(self) -> dict[str, Any]:
        return {
            "components": list(self.components),
            "integrated_schema": self.integrated_schema,
            "demo_components": list(self.demo_components),
        }


@dataclass(frozen=True)
class RecoveryInfo:
    """How the last :meth:`ToolSession.open` rebuilt the session.

    A frozen, wire-ready mirror of
    :class:`~repro.kernel.recovery.RecoveryReport`.
    """

    #: ``fresh``, ``save``, ``save+wal`` or ``wal``
    source: str
    #: WAL events applied on top of the save's log
    events_replayed: int
    #: the head offset the recovered session stands at
    head: int
    #: torn bytes dropped from the final WAL segment on open
    bytes_truncated: int
    #: WAL segments renamed ``*.corrupt`` on open
    segments_quarantined: tuple[str, ...]
    #: why the save was unusable, when recovery fell back to the WAL
    save_error: str | None
    #: why replay stopped early (a generation gap), if it did
    replay_stopped: str | None
    #: True when WAL records contributed to the recovered state
    used_wal: bool
    #: True when no repair of any kind was needed
    clean: bool

    @classmethod
    def from_report(cls, report: "RecoveryReport") -> "RecoveryInfo":
        return cls(
            source=report.source,
            events_replayed=report.events_replayed,
            head=report.head,
            bytes_truncated=report.bytes_truncated,
            segments_quarantined=tuple(report.segments_quarantined),
            save_error=report.save_error,
            replay_stopped=report.replay_stopped,
            used_wal=report.used_wal,
            clean=report.clean,
        )

    def to_wire(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "events_replayed": self.events_replayed,
            "head": self.head,
            "bytes_truncated": self.bytes_truncated,
            "segments_quarantined": list(self.segments_quarantined),
            "save_error": self.save_error,
            "replay_stopped": self.replay_stopped,
            "used_wal": self.used_wal,
            "clean": self.clean,
        }


__all__ = [
    "FederationAttachment",
    "GlobalRequestResult",
    "RecoveryInfo",
]
