"""The interactive schema-integration tool.

This package reproduces Section 3 of the paper: a menu/form, terminal-
independent interface over the integration library.  The original was C on
Apollo UNIX using ``curses``; here the same screens render onto a
:class:`~repro.tool.terminal.VirtualTerminal` (a character grid), driven
either interactively from stdin (``ecr-integrate``) or by a script of input
lines (tests, benchmarks, examples).

The six main-menu tasks follow the paper:

1. schema collection (Screens 2-5),
2. object-class attribute equivalences (Screens 6-7),
3. object-class assertions (Screens 8-9),
4. relationship-set attribute equivalences,
5. relationship-set assertions,
6. integration and browsing (Screens 10-12, control flow of Figure 6).
"""

from repro.tool.terminal import VirtualTerminal
from repro.tool.results import (
    FederationAttachment,
    GlobalRequestResult,
    RecoveryInfo,
)
from repro.tool.session import ToolSession
from repro.tool.app import ToolApp, run_script
from repro.tool.screens import MainMenuScreen

__all__ = [
    "VirtualTerminal",
    "ToolSession",
    "ToolApp",
    "run_script",
    "MainMenuScreen",
    # typed results of the session facades (see docs/API.md)
    "FederationAttachment",
    "GlobalRequestResult",
    "RecoveryInfo",
]
