"""The live telemetry plane: exposition, streaming and request correlation.

Three cooperating facilities turn the in-process instruments of
:mod:`repro.obs` into things an *operator outside the process* can watch:

* **Prometheus text exposition** — :func:`render_prometheus` renders a
  :class:`~repro.obs.metrics.MetricsRegistry` (plus any absorbed counter
  groups) in the Prometheus ``text/plain; version=0.0.4`` format, with
  stable label sets encoded in the metric name
  (:func:`labeled`).  :func:`parse_prometheus` is the strict inverse the
  tests and the telemetry smoke gate use to prove the output is
  well-formed.

* **Bounded fan-out streaming** — a :class:`StreamHub` fans items pushed
  by publisher threads (request handlers, job workers, kernel-bus taps)
  out to any number of :class:`StreamSubscription`\\ s, each a bounded
  ring buffer with **drop-oldest backpressure** and a ``dropped``
  counter.  :func:`sse_stream` turns a subscription into a
  Server-Sent-Events byte iterator (the ``/v1/sessions/{id}/…/stream``
  endpoints).

* **Request correlation** — :func:`set_request_id` /
  :func:`current_request_id` bind one id to the current thread for the
  duration of a request (or a background job), so the access-log line,
  every tracer span, and every kernel event streamed over SSE carry the
  same ``X-Request-Id``.

* **Rolling latency** — :class:`RollingLatency` keeps the last *N*
  observations per label set and answers exact p50/p95/p99 over that
  window; the service exposes them as per-tenant/per-route gauges.

Everything here is stdlib-only and thread-safe; nothing imports the
service, so the module is usable from any embedding.
"""

from __future__ import annotations

import json
import math
import itertools
import re
import secrets
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from repro.obs.metrics import MetricsRegistry

# ---------------------------------------------------------------------------
# request correlation
# ---------------------------------------------------------------------------

_REQUEST = threading.local()

#: accepted shape for a client-supplied ``X-Request-Id``
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


#: per-process entropy + atomic counter: ids are for correlation, not
#: secrecy, and a token_hex() per request is measurable on the hot path
_ID_PREFIX = secrets.token_hex(3)
_ID_COUNTER = itertools.count(1)


def new_request_id() -> str:
    """A fresh, URL-safe request id (``req-`` + 12 hex chars)."""
    return f"req-{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFF:06x}"


def accept_request_id(candidate: str | None) -> str:
    """The client's ``X-Request-Id`` if well-formed, else a fresh one."""
    if candidate and _REQUEST_ID_RE.match(candidate):
        return candidate
    return new_request_id()


def set_request_id(request_id: str | None) -> None:
    """Bind a request id to the current thread (``None`` clears it)."""
    _REQUEST.request_id = request_id


def current_request_id() -> str | None:
    """The request id bound to the current thread, if any."""
    return getattr(_REQUEST, "request_id", None)


# ---------------------------------------------------------------------------
# rolling latency windows (exact quantiles over the last N observations)
# ---------------------------------------------------------------------------


class RollingLatency:
    """Per-label-set rolling windows answering exact p50/p95/p99.

    Each key (e.g. ``(tenant, route)``) keeps the most recent ``window``
    observations in a deque; quantiles are computed over a sorted copy at
    read time.  Both sides are cheap at service scale — observation is an
    append under a lock, and scrapes are rare.
    """

    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], deque[float]] = {}

    def observe(self, key: tuple[str, ...], seconds: float) -> None:
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = deque(maxlen=self.window)
            series.append(seconds)

    def quantiles(
        self, key: tuple[str, ...]
    ) -> dict[float, float] | None:
        """``{0.5: s, 0.95: s, 0.99: s}`` for the key, or ``None``."""
        with self._lock:
            series = self._series.get(key)
            if not series:
                return None
            ordered = sorted(series)
        result = {}
        for quantile in self.QUANTILES:
            index = max(0, math.ceil(quantile * len(ordered)) - 1)
            result[quantile] = ordered[index]
        return result

    def keys(self) -> list[tuple[str, ...]]:
        with self._lock:
            return list(self._series)


# ---------------------------------------------------------------------------
# bounded fan-out streaming
# ---------------------------------------------------------------------------


class StreamSubscription:
    """One consumer's bounded ring over a :class:`StreamHub` key.

    Publishers never block: when the ring is full the **oldest** item is
    dropped and :attr:`dropped` increments, so a stalled SSE client can
    fall behind but can never wedge a request handler or job worker.
    """

    def __init__(self, hub: "StreamHub", key: Any, maxlen: int) -> None:
        self._hub = hub
        self.key = key
        self._items: deque[Any] = deque(maxlen=maxlen)
        self._cond = threading.Condition()
        #: items discarded because the consumer fell behind
        self.dropped = 0
        self.closed = False
        #: when True, publishers never notify — the consumer polls on a
        #: timer instead.  A publish-side wake-up makes the consumer
        #: thread runnable *during* the request being traced, which on
        #: scarce cores preempts the very handler being measured; a
        #: lingering consumer doesn't need the wake-up at all.
        self.lazy = False

    def _push(self, item: Any) -> None:
        with self._cond:
            if self.closed:
                return
            if len(self._items) == self._items.maxlen:
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            if not self.lazy:
                self._cond.notify_all()

    def _push_many(self, items: list[Any]) -> None:
        with self._cond:
            if self.closed:
                return
            for item in items:
                if len(self._items) == self._items.maxlen:
                    self._items.popleft()
                    self.dropped += 1
                self._items.append(item)
            if not self.lazy:
                self._cond.notify_all()

    def pop(self, timeout: float | None = None) -> Any | None:
        """The next item, blocking up to ``timeout``; ``None`` on none."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if self._items:
                return self._items.popleft()
            return None

    def pop_batch(
        self, limit: int, timeout: float | None = None
    ) -> list[Any]:
        """Up to ``limit`` items: block for the first, drain the rest.

        Bursty publishers (one request can finish several spans) cost
        one consumer wake-up instead of one per item.
        """
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            batch: list[Any] = []
            while self._items and len(batch) < limit:
                batch.append(self._items.popleft())
            return batch

    def close(self) -> None:
        """Detach from the hub and wake any blocked :meth:`pop`."""
        self._hub._unsubscribe(self)
        with self._cond:
            self.closed = True
            self._cond.notify_all()


class StreamHub:
    """Keyed fan-out: publishers push, per-key subscribers each get a copy.

    The service keeps two hubs — one for kernel/audit events, one for
    tracer spans — keyed by ``(tenant, session_id)``.  Publishing to a
    key nobody watches is one dict lookup; metrics hooks (``on_publish``
    / ``on_drop``) let the owner count streamed and dropped items.
    """

    def __init__(self, maxlen: int = 256) -> None:
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._subscribers: dict[Any, list[StreamSubscription]] = {}
        self.on_publish: Callable[[Any], None] | None = None

    def subscribe(self, key: Any) -> StreamSubscription:
        subscription = StreamSubscription(self, key, self.maxlen)
        with self._lock:
            self._subscribers.setdefault(key, []).append(subscription)
        return subscription

    def _unsubscribe(self, subscription: StreamSubscription) -> None:
        with self._lock:
            remaining = [
                existing
                for existing in self._subscribers.get(subscription.key, ())
                if existing is not subscription
            ]
            if remaining:
                self._subscribers[subscription.key] = remaining
            else:
                self._subscribers.pop(subscription.key, None)

    def publish(self, key: Any, item: Any) -> int:
        """Fan ``item`` out to the key's subscribers; returns how many."""
        with self._lock:
            targets = list(self._subscribers.get(key, ()))
        for subscription in targets:
            subscription._push(item)
        if targets and self.on_publish is not None:
            self.on_publish(key)
        return len(targets)

    def publish_many(self, key: Any, items: list[Any]) -> int:
        """Fan a burst out with one consumer wake-up per subscriber."""
        if not items:
            return 0
        with self._lock:
            targets = list(self._subscribers.get(key, ()))
        for subscription in targets:
            subscription._push_many(items)
        if targets and self.on_publish is not None:
            for _ in items:
                self.on_publish(key)
        return len(targets)

    def watched(self, key: Any) -> bool:
        """Cheap publisher pre-check: is anyone subscribed to ``key``?

        Lock-free on purpose — a stale answer only costs one skipped or
        wasted frame build, and publishers sit on hot paths.
        """
        return key in self._subscribers

    def any_watched(self) -> bool:
        """Lock-free check for *any* subscriber on *any* key."""
        return bool(self._subscribers)

    def watched_keys(self) -> tuple[Any, ...]:
        """Lock-free snapshot of the watched keys (may be stale)."""
        return tuple(self._subscribers)

    def subscriber_count(self, key: Any | None = None) -> int:
        with self._lock:
            if key is not None:
                return len(self._subscribers.get(key, ()))
            return sum(len(subs) for subs in self._subscribers.values())

    def dropped_total(self) -> int:
        with self._lock:
            return sum(
                subscription.dropped
                for subscribers in self._subscribers.values()
                for subscription in subscribers
            )


# ---------------------------------------------------------------------------
# Server-Sent Events framing
# ---------------------------------------------------------------------------


def sse_frame(
    data: dict[str, Any],
    *,
    event: str | None = None,
    event_id: int | str | None = None,
) -> bytes:
    """One ``text/event-stream`` frame: optional id/event + JSON data."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def sse_comment(text: str) -> bytes:
    return f": {text}\n\n".encode("utf-8")


def sse_stream(
    subscription: StreamSubscription,
    *,
    event: str,
    max_events: int | None = None,
    timeout_s: float | None = None,
    idle_s: float | None = None,
    heartbeat_s: float = 10.0,
    linger_s: float = 0.0,
    transform: Callable[[Any], dict[str, Any]] | None = None,
    on_close: Callable[[], None] | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[bytes]:
    """Turn a subscription into an SSE byte stream (a blocking generator).

    Each item popped from the subscription must be a JSON-ready dict
    carrying a ``seq`` key (used as the SSE ``id:``) — or, when
    ``transform`` is given, anything ``transform`` turns into such a
    dict.  The hook runs on the stream's pump thread, letting
    publishers enqueue cheap raw objects and defer serialisation to
    the consumer that asked for it.  The stream ends —
    with a final ``event: end`` frame summarizing delivery — when
    ``max_events`` items have been sent, ``timeout_s`` has elapsed, or no
    item arrived for ``idle_s`` seconds; with none of the three it runs
    until the client disconnects.  Heartbeat comments keep idle
    connections alive through proxies.  ``on_close`` runs exactly once,
    whether the stream ends normally or the consumer abandons it.

    ``linger_s`` trades latency for throughput: the stream switches the
    subscription to lazy polling — publishers stop waking the consumer
    (a wake-up would preempt the very request being traced), and the
    stream instead drains the ring every ``linger_s`` seconds, writing
    each window as one chunk.  Zero means wake per publish and write
    immediately.
    """
    sent = 0
    started = clock()
    last_item = started
    last_beat = started
    closed = False
    lazy = linger_s > 0
    if lazy:
        subscription.lazy = True

    def finish() -> None:
        nonlocal closed
        if not closed:
            closed = True
            subscription.close()
            if on_close is not None:
                on_close()

    try:
        yield sse_comment("stream open")
        while True:
            now = clock()
            if max_events is not None and sent >= max_events:
                break
            if timeout_s is not None and now - started >= timeout_s:
                break
            if idle_s is not None and now - last_item >= idle_s:
                break
            wait = heartbeat_s
            if timeout_s is not None:
                wait = min(wait, max(0.0, timeout_s - (now - started)))
            if idle_s is not None:
                wait = min(wait, max(0.0, idle_s - (now - last_item)))
            if lazy:
                # the timed poll IS the batching window: nobody
                # notifies, so the wait sleeps it out in full and the
                # drain below collects everything that accumulated
                wait = min(wait, linger_s)
            limit = 256
            if max_events is not None:
                limit = min(limit, max_events - sent)
            batch = subscription.pop_batch(limit, timeout=max(0.01, wait))
            if not batch:
                if not lazy:
                    yield sse_comment("keep-alive")
                elif now - last_beat >= heartbeat_s:
                    last_beat = now
                    yield sse_comment("keep-alive")
                continue
            last_item = clock()
            last_beat = last_item
            frames = []
            for item in batch:
                sent += 1
                if transform is not None:
                    item = transform(item)
                frames.append(
                    sse_frame(
                        item, event=event, event_id=item.get("seq", sent)
                    )
                )
            yield b"".join(frames)
        yield sse_frame(
            {"sent": sent, "dropped": subscription.dropped},
            event="end",
        )
    finally:
        finish()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: the content type Prometheus scrapers expect
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# label values are quoted strings and may contain any character
# (including ``}`` — route patterns like ``/v1/sessions/{sid}`` do), so
# the label block is matched as a sequence of key="value" pairs rather
# than a naive "anything up to the first closing brace"
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>"
    r'(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*'
    r")\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def labeled(name: str, **labels: Any) -> str:
    """Encode a labeled series as one registry metric name.

    The :class:`~repro.obs.metrics.MetricsRegistry` keys metrics by flat
    name; label sets ride inside the name in canonical (sorted) order so
    the same labels always address the same series::

        labeled("repro_http_requests_total", route="/v1/stats", code=200)
        -> 'repro_http_requests_total{code="200",route="/v1/stats"}'
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def split_series(series: str) -> tuple[str, str | None]:
    """``'name{labels}'`` → ``(name, labels-or-None)``."""
    if series.endswith("}") and "{" in series:
        name, _, inner = series.partition("{")
        return name, inner[:-1]
    return series, None


def metric_name(dotted: str) -> str:
    """A dotted internal metric name as a legal Prometheus name.

    ``federation.leg.ok`` → ``repro_federation_leg_ok`` — used when
    rendering metrics that were registered before the telemetry plane
    existed (the federation engine's counters, absorbed counter groups).
    Names already carrying the ``repro_`` prefix pass through untouched.
    """
    if dotted.startswith("repro_"):
        return dotted
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", dotted)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = f"m_{cleaned}" if cleaned else "m_unnamed"
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    registry: MetricsRegistry,
    *,
    timestamp: float | None = None,
) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    * counters render with a ``# TYPE … counter`` header (names are
      expected to end in ``_total``; legacy dotted names are sanitized
      via :func:`metric_name`),
    * gauges render as ``gauge``,
    * histograms render as ``histogram`` with **cumulative** ``_bucket``
      samples (``le`` inclusive upper bounds plus ``+Inf``), ``_sum`` and
      ``_count``, and
    * absorbed counter groups render as counters under their prefix.

    Series sharing a base name are grouped under one ``# TYPE`` line, as
    the format requires.
    """
    families: dict[str, tuple[str, list[tuple[str, float]]]] = {}

    def add(kind: str, series: str, value: float) -> None:
        base, labels = split_series(series)
        base = metric_name(base)
        family = families.get(base)
        if family is None:
            family = families[base] = (kind, [])
        sample = base if labels is None else f"{base}{{{labels}}}"
        family[1].append((sample, value))

    for series, counter in sorted(registry.counters().items()):
        add("counter", series, counter.value)
    for series, gauge in sorted(registry.gauges().items()):
        add("gauge", series, gauge.value)
    for prefix, group in sorted(registry.groups().items()):
        for field_name, value in group.snapshot().items():
            add("counter", f"{prefix}.{field_name}", value)

    lines: list[str] = []
    for base in sorted(families):
        kind, samples = families[base]
        lines.append(f"# TYPE {base} {kind}")
        for sample, value in samples:
            lines.append(f"{sample} {_format_value(value)}")

    histogram_families: dict[str, list[tuple[str | None, Any]]] = {}
    for series, histogram in sorted(registry.histograms().items()):
        base, labels = split_series(series)
        histogram_families.setdefault(metric_name(base), []).append(
            (labels, histogram)
        )
    for base in sorted(histogram_families):
        lines.append(f"# TYPE {base} histogram")
        for labels, histogram in histogram_families[base]:
            prefix = "" if labels is None else f"{labels},"
            cumulative = 0
            with histogram._lock:
                per_bucket = list(histogram.bucket_counts)
                bounds = histogram.buckets
                total = histogram.total
                count = histogram.count
            for bound, bucket_count in zip(bounds, per_bucket):
                cumulative += bucket_count
                lines.append(
                    f"{base}_bucket"
                    f'{{{prefix}le="{_format_value(float(bound))}"}}'
                    f" {cumulative}"
                )
            lines.append(f'{base}_bucket{{{prefix}le="+Inf"}} {count}')
            suffix = "" if labels is None else f"{{{labels}}}"
            lines.append(
                f"{base}_sum{suffix} {_format_value(float(total))}"
            )
            lines.append(f"{base}_count{suffix} {count}")

    body = "\n".join(lines)
    return body + "\n" if body else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Strictly parse exposition text back to ``{series: value}``.

    Raises :class:`ValueError` on anything malformed — unknown line
    shapes, bad metric/label names, unparsable values, a ``# TYPE``
    redeclaration, or samples appearing before their family's ``TYPE``
    line when one exists elsewhere.  The telemetry smoke gate and the
    endpoint tests call this to prove ``/v1/metrics`` emits valid
    Prometheus text format.
    """
    samples: dict[str, float] = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            _, _, name, kind = parts
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: bad metric type {kind!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP/comments
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name = match.group("name")
        label_text = match.group("labels")
        if label_text:
            consumed = _LABEL_PAIR_RE.sub("", label_text).replace(",", "")
            if consumed.strip():
                raise ValueError(
                    f"line {lineno}: malformed labels: {label_text!r}"
                )
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                if not _LABEL_RE.match(pair.group("key")):
                    raise ValueError(
                        f"line {lineno}: bad label name "
                        f"{pair.group('key')!r}"
                    )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value {value_text!r}"
                )
        series = line.rsplit(None, 1)[0]
        if series in samples:
            raise ValueError(f"line {lineno}: duplicate sample {series!r}")
        samples[series] = value
    return samples


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "RollingLatency",
    "StreamHub",
    "StreamSubscription",
    "accept_request_id",
    "current_request_id",
    "labeled",
    "metric_name",
    "new_request_id",
    "parse_prometheus",
    "render_prometheus",
    "set_request_id",
    "split_series",
    "sse_comment",
    "sse_frame",
    "sse_stream",
]
